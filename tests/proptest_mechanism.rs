//! Cross-crate property tests of the mechanism's invariants.

use mec_core::appro::{appro, ApproConfig};
use mec_core::game::{is_nash, rosenthal_potential, BestResponseDynamics, MoveOrder};
use mec_core::lcf::{lcf, LcfConfig};
use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_core::Profile;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandMarket {
    cloudlets: Vec<(f64, f64, f64, f64)>,
    providers: Vec<(f64, f64, f64, f64)>,
    update: f64,
}

fn rand_market() -> impl Strategy<Value = RandMarket> {
    let cloudlet = (10.0..40.0f64, 50.0..200.0f64, 0.0..1.0f64, 0.0..1.0f64);
    let provider = (0.5..4.0f64, 2.0..15.0f64, 0.2..1.5f64, 3.0..20.0f64);
    (
        proptest::collection::vec(cloudlet, 2..5),
        proptest::collection::vec(provider, 3..10),
        0.0..0.5f64,
    )
        .prop_map(|(cloudlets, providers, update)| RandMarket {
            cloudlets,
            providers,
            update,
        })
}

fn build(r: &RandMarket) -> Market {
    let mut b = Market::builder();
    for &(c, bw, a, be) in &r.cloudlets {
        b = b.cloudlet(CloudletSpec::new(c, bw, a, be));
    }
    for &(cd, bd, ic, rc) in &r.providers {
        b = b.provider(ProviderSpec::new(cd, bd, ic, rc));
    }
    b.uniform_update_cost(r.update).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn appro_always_feasible(r in rand_market()) {
        let m = build(&r);
        let sol = appro(&m, &ApproConfig::new()).unwrap();
        prop_assert!(sol.profile.is_feasible(&m));
        prop_assert!(sol.social_cost.is_finite());
    }

    #[test]
    fn lcf_reaches_stable_feasible_outcome(r in rand_market(), xi in 0.0..1.0f64) {
        let m = build(&r);
        let out = lcf(&m, &LcfConfig::new(xi)).unwrap();
        prop_assert!(out.profile.is_feasible(&m));
        prop_assert!(out.convergence.converged);
        let mut movable = vec![true; m.provider_count()];
        for l in &out.coordinated {
            movable[l.index()] = false;
        }
        prop_assert!(is_nash(&m, &out.profile, &movable));
        prop_assert!((out.coordinated_cost + out.selfish_cost - out.social_cost).abs() < 1e-6);
    }

    #[test]
    fn dynamics_always_converge_and_decrease_potential(r in rand_market()) {
        let m = build(&r);
        let n = m.provider_count();
        let mut profile = Profile::all_remote(n);
        let before = rosenthal_potential(&m, &profile);
        let movable = vec![true; n];
        let res = BestResponseDynamics::new(MoveOrder::RoundRobin)
            .run(&m, &mut profile, &movable);
        prop_assert!(res.converged);
        let after = rosenthal_potential(&m, &profile);
        prop_assert!(after <= before + 1e-9, "potential rose: {before} -> {after}");
        prop_assert!(profile.is_feasible(&m));
    }

    #[test]
    fn coordination_rarely_hurts_and_never_much(r in rand_market()) {
        // Full coordination pins everyone to the polished Appro solution —
        // a *local* optimum of the social cost. A Nash equilibrium reached
        // from a different starting basin can occasionally edge it out, so
        // dominance is not a theorem; what must hold is that coordination
        // never loses by more than a small constant factor.
        let m = build(&r);
        let full = lcf(&m, &LcfConfig::new(1.0)).unwrap().social_cost;
        let none = lcf(&m, &LcfConfig::new(0.0)).unwrap().social_cost;
        prop_assert!(
            full <= none * 1.10 + 1e-6,
            "coordination lost badly: {full} vs anarchy {none}"
        );
    }

    #[test]
    fn theorem1_bound_holds_empirically(r in rand_market()) {
        let m = build(&r);
        if m.provider_count() <= 8 {
            if let Ok(est) = mec_core::estimate_poa(&m, 10, 1) {
                let bound = mec_core::market_poa_bound(&m, 0.0);
                prop_assert!(est.poa <= bound + 1e-6,
                    "PoA {} exceeds Theorem 1 bound {}", est.poa, bound);
            }
        }
    }
}
