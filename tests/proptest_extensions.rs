//! Property tests for the extension modules: churn bookkeeping, the
//! weighted game, GAP swap improvement, and incentive accounting.

use mec_core::dynamics::{ChurnEvent, ChurnSimulation, ReplanStrategy};
use mec_core::incentives::incentive_report;
use mec_core::lcf::{lcf, LcfConfig};
use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_core::weighted::WeightedGame;
use mec_core::{approx_zero, Profile, ProviderId};
use mec_gap::{greedy, swap, GapInstance};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandMarket {
    cloudlets: Vec<(f64, f64, f64, f64)>,
    providers: Vec<(f64, f64, f64, f64)>,
}

fn rand_market() -> impl Strategy<Value = RandMarket> {
    (
        proptest::collection::vec(
            (15.0..35.0f64, 80.0..200.0f64, 0.1..1.0f64, 0.1..1.0f64),
            2..4,
        ),
        proptest::collection::vec(
            (0.5..4.0f64, 2.0..12.0f64, 0.3..1.5f64, 4.0..20.0f64),
            4..12,
        ),
    )
        .prop_map(|(cloudlets, providers)| RandMarket {
            cloudlets,
            providers,
        })
}

fn build(r: &RandMarket) -> Market {
    let mut b = Market::builder();
    for &(c, bw, a, be) in &r.cloudlets {
        b = b.cloudlet(CloudletSpec::new(c, bw, a, be));
    }
    for &(cd, bd, ic, rc) in &r.providers {
        b = b.provider(ProviderSpec::new(cd, bd, ic, rc));
    }
    b.uniform_update_cost(0.2).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn churn_bookkeeping_consistent(r in rand_market(), split in 1usize..4) {
        let m = build(&r);
        let n = m.provider_count();
        let first = n / split.max(1);
        let mut sim = ChurnSimulation::new(&m, ReplanStrategy::Incremental, LcfConfig::new(0.7));
        let ids = |range: std::ops::Range<usize>| range.map(ProviderId).collect::<Vec<_>>();
        let rep1 = sim.step(&ChurnEvent { arrivals: ids(0..first.max(1)), departures: vec![] }).unwrap();
        prop_assert!(rep1.evictions == 0);
        prop_assert!(rep1.instantiations == rep1.cached);
        if first.max(1) < n {
            let rep2 = sim.step(&ChurnEvent { arrivals: ids(first.max(1)..n), departures: vec![] }).unwrap();
            prop_assert!(sim.profile().is_feasible(&m));
            prop_assert!(rep2.social_cost >= 0.0);
        }
        // Drain everyone.
        let active = sim.active_providers();
        let rep3 = sim.step(&ChurnEvent { arrivals: vec![], departures: active }).unwrap();
        prop_assert_eq!(rep3.cached, 0);
        prop_assert!(rep3.social_cost.abs() < 1e-9);
    }

    #[test]
    fn weighted_game_always_converges(r in rand_market()) {
        let m = build(&r);
        let g = WeightedGame::new(&m);
        let mut p = Profile::all_remote(m.provider_count());
        prop_assert!(g.run_dynamics(&mut p, 10_000).is_some());
        prop_assert!(g.is_nash(&p));
        prop_assert!(p.is_feasible(&m));
    }

    #[test]
    fn swap_improvement_monotone_and_feasible(
        costs in proptest::collection::vec(0.5..10.0f64, 12),
        weights in proptest::collection::vec(0.5..1.5f64, 4),
    ) {
        let mut inst = GapInstance::new(4, 3);
        for i in 0..4 {
            for j in 0..3 {
                inst.set_cost(i, j, costs[i * 3 + j]);
            }
            inst.set_item_weight(i, weights[i]);
        }
        for j in 0..3 {
            inst.set_capacity(j, 3.0);
        }
        if let Ok(mut a) = greedy::solve(&inst) {
            let before_feasible = a.is_capacity_feasible(&inst);
            let res = swap::improve(&inst, &mut a, 100);
            prop_assert!(res.after <= res.before + 1e-9);
            prop_assert!((a.total_cost(&inst) - res.after).abs() < 1e-9);
            if before_feasible {
                prop_assert!(a.is_capacity_feasible(&inst));
            }
        }
    }

    #[test]
    fn incentive_discounts_never_exceed_costs(r in rand_market(), xi in 0.1..0.9f64) {
        let m = build(&r);
        let out = lcf(&m, &LcfConfig::new(xi)).unwrap();
        let rep = incentive_report(&m, &out).unwrap();
        for (_, current, deviation, discount) in &rep.discounts {
            prop_assert!(*discount >= -1e-12);
            prop_assert!(*deviation <= *current + 1e-9 || approx_zero(*discount, 0.0));
        }
        prop_assert!(rep.total_subsidy >= 0.0);
        prop_assert!(rep.coordination_saving >= 0.0);
    }
}
