//! Differential property tests: the incremental `GameState` must stay in
//! exact agreement with recomputation from scratch under arbitrary move
//! sequences, and every query answered from its maintained aggregates must
//! match the reference `Profile` path.

use mec_core::game::{best_response, BestResponseDynamics, MoveOrder};
use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_core::state::GameState;
use mec_core::{Placement, Profile, ProviderId};
use mec_topology::CloudletId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandMarket {
    cloudlets: Vec<(f64, f64, f64, f64)>,
    providers: Vec<(f64, f64, f64, f64)>,
    update: f64,
}

fn rand_market() -> impl Strategy<Value = RandMarket> {
    let cloudlet = (10.0..40.0f64, 50.0..200.0f64, 0.0..1.0f64, 0.0..1.0f64);
    let provider = (0.5..4.0f64, 2.0..15.0f64, 0.2..1.5f64, 3.0..25.0f64);
    (
        proptest::collection::vec(cloudlet, 2..5),
        proptest::collection::vec(provider, 3..12),
        0.0..0.5f64,
    )
        .prop_map(|(cloudlets, providers, update)| RandMarket {
            cloudlets,
            providers,
            update,
        })
}

fn build(r: &RandMarket) -> Market {
    let mut b = Market::builder();
    for &(c, bw, a, be) in &r.cloudlets {
        b = b.cloudlet(CloudletSpec::new(c, bw, a, be));
    }
    for &(cd, bd, ic, rc) in &r.providers {
        b = b.provider(ProviderSpec::new(cd, bd, ic, rc));
    }
    b.uniform_update_cost(r.update).build()
}

/// Decodes `(provider pick, cloudlet pick)` pairs into a move sequence:
/// pick == cloudlet count means Remote. Moves may be infeasible or no-ops —
/// the state must track bookkeeping regardless.
fn apply_script(state: &mut GameState<'_>, script: &[(usize, usize)]) {
    let n = state.len();
    let m = state.market().cloudlet_count();
    for &(lp, cp) in script {
        let l = ProviderId(lp % n);
        let to = match cp % (m + 1) {
            k if k == m => Placement::Remote,
            k => Placement::Cloudlet(CloudletId(k)),
        };
        let old = state.apply_move(l, to);
        let _ = old;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any apply_move sequence the maintained congestion, loads and
    /// residuals equal a from-scratch recomputation from the profile.
    #[test]
    fn state_matches_recompute_after_any_move_sequence(
        r in rand_market(),
        script in proptest::collection::vec((0usize..64, 0usize..8), 0..40),
    ) {
        let market = build(&r);
        let mut state = GameState::all_remote(&market);
        apply_script(&mut state, &script);
        prop_assert!(state.agrees_with_recompute(1e-9));

        let profile = state.profile().clone();
        let sigma = profile.congestion(&market);
        prop_assert_eq!(state.congestion_counts(), sigma.as_slice());
        for (i, want) in market.cloudlets().zip(profile.residual(&market)) {
            let got = state.residual(i);
            prop_assert!((got.0 - want.0).abs() <= 1e-9 && (got.1 - want.1).abs() <= 1e-9,
                "residual mismatch at {}: {:?} vs {:?}", i, got, want);
        }
    }

    /// Undoing a move with the returned old placement restores the exact
    /// previous aggregates (congestion is integral, so equality is exact).
    #[test]
    fn apply_move_undo_roundtrip(
        r in rand_market(),
        script in proptest::collection::vec((0usize..64, 0usize..8), 1..30),
        probe in (0usize..64, 0usize..8),
    ) {
        let market = build(&r);
        let mut state = GameState::all_remote(&market);
        apply_script(&mut state, &script);
        let l = ProviderId(probe.0 % state.len());
        let to = match probe.1 % (market.cloudlet_count() + 1) {
            k if k == market.cloudlet_count() => Placement::Remote,
            k => Placement::Cloudlet(CloudletId(k)),
        };
        let sigma_before = state.congestion_counts().to_vec();
        let profile_before = state.profile().clone();
        let old = state.apply_move(l, to);
        state.apply_move(l, old);
        prop_assert_eq!(state.congestion_counts(), sigma_before.as_slice());
        prop_assert_eq!(state.profile(), &profile_before);
    }

    /// Every per-provider and aggregate cost answered from the maintained
    /// counts equals the Profile recompute path. Congestion is integral, so
    /// costs are bit-identical, not merely close.
    #[test]
    fn costs_identical_via_both_paths(
        r in rand_market(),
        script in proptest::collection::vec((0usize..64, 0usize..8), 0..40),
    ) {
        let market = build(&r);
        let mut state = GameState::all_remote(&market);
        apply_script(&mut state, &script);
        let profile = state.profile().clone();
        for l in market.providers() {
            prop_assert_eq!(state.provider_cost(l), profile.provider_cost(&market, l));
        }
        prop_assert_eq!(state.social_cost(), profile.social_cost(&market));
        let evens: Vec<ProviderId> = market.providers().filter(|l| l.index() % 2 == 0).collect();
        prop_assert_eq!(
            state.subset_cost(evens.iter().copied()),
            profile.subset_cost(&market, evens.iter().copied())
        );
        prop_assert_eq!(state.is_feasible(), profile.is_feasible(&market));
    }

    /// best_response answered from the maintained aggregates is identical —
    /// same placement, same cost, same tie-breaks — to the recompute path.
    #[test]
    fn best_response_identical_via_both_paths(
        r in rand_market(),
        script in proptest::collection::vec((0usize..64, 0usize..8), 0..40),
    ) {
        let market = build(&r);
        let mut state = GameState::all_remote(&market);
        apply_script(&mut state, &script);
        let profile = state.profile().clone();
        for l in market.providers() {
            prop_assert_eq!(
                state.best_response(l),
                best_response(&market, &profile, l),
                "best response diverged for {}", l
            );
        }
    }

    /// The incremental dynamics make exactly the moves the seed recompute
    /// implementation makes: identical final profile and convergence stats,
    /// for both move orders.
    #[test]
    fn dynamics_match_reference_implementation(
        r in rand_market(),
        max_gain in proptest::bool::ANY,
        mask in proptest::collection::vec(proptest::bool::ANY, 12),
    ) {
        let market = build(&r);
        let n = market.provider_count();
        let movable: Vec<bool> = (0..n).map(|k| mask[k % mask.len()]).collect();
        let order = if max_gain { MoveOrder::MaxGain } else { MoveOrder::RoundRobin };
        let driver = BestResponseDynamics::new(order);
        let mut p_inc = Profile::all_remote(n);
        let mut p_ref = Profile::all_remote(n);
        let c_inc = driver.run(&market, &mut p_inc, &movable);
        let c_ref = driver.run_reference(&market, &mut p_ref, &movable);
        prop_assert_eq!(c_inc, c_ref);
        prop_assert_eq!(p_inc, p_ref);
        prop_assert_eq!(
            p_inc.social_cost(&market),
            p_ref.social_cost(&market)
        );
    }
}
