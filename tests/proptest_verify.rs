//! Property tests for the verification layer.
//!
//! The checkers in `mec_core::verify` recompute every invariant from first
//! principles, sharing no code with the algorithms they certify — so their
//! verdicts can be tested *differentially* against the independent
//! implementations:
//!
//! * the exhaustive Nash certificate agrees with `is_nash` (which runs on
//!   the incremental `GameState`) on arbitrary markets and profiles;
//! * converged best-response dynamics always earn an empty certificate;
//! * capacity certification agrees with `Profile::is_feasible`;
//! * cost reconstruction accepts the true social cost and rejects
//!   perturbations.

use mec_core::game::{is_nash, BestResponseDynamics, MoveOrder, IMPROVEMENT_TOL};
use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_core::state::GameState;
use mec_core::verify::{check_capacity, check_cost_reconstruction, check_nash, check_state};
use mec_core::{Placement, Profile, ProviderId};
use mec_topology::CloudletId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandMarket {
    cloudlets: Vec<(f64, f64, f64, f64)>,
    providers: Vec<(f64, f64, f64, f64)>,
    update: f64,
}

fn rand_market() -> impl Strategy<Value = RandMarket> {
    let cloudlet = (10.0..40.0f64, 50.0..200.0f64, 0.0..1.0f64, 0.0..1.0f64);
    let provider = (0.5..4.0f64, 2.0..15.0f64, 0.2..1.5f64, 3.0..25.0f64);
    (
        proptest::collection::vec(cloudlet, 2..5),
        proptest::collection::vec(provider, 3..12),
        0.0..0.5f64,
    )
        .prop_map(|(cloudlets, providers, update)| RandMarket {
            cloudlets,
            providers,
            update,
        })
}

fn build(r: &RandMarket) -> Market {
    let mut b = Market::builder();
    for &(c, bw, a, be) in &r.cloudlets {
        b = b.cloudlet(CloudletSpec::new(c, bw, a, be));
    }
    for &(cd, bd, ic, rc) in &r.providers {
        b = b.provider(ProviderSpec::new(cd, bd, ic, rc));
    }
    b.uniform_update_cost(r.update).build()
}

/// Decodes a script of `(provider pick, placement pick)` pairs into an
/// arbitrary reachable profile (pick == cloudlet count means Remote).
fn scripted_profile(market: &Market, script: &[(usize, usize)]) -> Profile {
    let n = market.provider_count();
    let m = market.cloudlet_count();
    let mut profile = Profile::all_remote(n);
    for &(lp, cp) in script {
        let l = ProviderId(lp % n);
        let to = match cp % (m + 1) {
            k if k == m => Placement::Remote,
            k => Placement::Cloudlet(CloudletId(k)),
        };
        profile.set(l, to);
    }
    profile
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The exhaustive first-principles Nash certificate and the
    /// GameState-based `is_nash` reach the same verdict on arbitrary
    /// markets, profiles and movable masks.
    #[test]
    fn nash_certificate_agrees_with_is_nash(
        r in rand_market(),
        script in proptest::collection::vec((0usize..64, 0usize..8), 0..40),
        mask in proptest::collection::vec(proptest::bool::ANY, 12),
    ) {
        let market = build(&r);
        let n = market.provider_count();
        let movable: Vec<bool> = (0..n).map(|k| mask[k % mask.len()]).collect();
        let profile = scripted_profile(&market, &script);
        let violations = check_nash(&market, &profile, &movable, IMPROVEMENT_TOL);
        let stable = is_nash(&market, &profile, &movable);
        prop_assert_eq!(
            violations.is_empty(),
            stable,
            "certificate ({:?}) disagrees with is_nash ({})",
            violations,
            stable
        );
    }

    /// A converged best-response run always earns an empty Nash
    /// certificate, and its final state passes the drift check.
    #[test]
    fn converged_dynamics_certify_clean(
        r in rand_market(),
        max_gain in proptest::bool::ANY,
    ) {
        let market = build(&r);
        let n = market.provider_count();
        let movable = vec![true; n];
        let order = if max_gain { MoveOrder::MaxGain } else { MoveOrder::RoundRobin };
        let mut state = GameState::all_remote(&market);
        let conv = BestResponseDynamics::new(order).run_state(&mut state, &movable);
        prop_assert!(conv.converged);
        prop_assert_eq!(check_state(&state, 1e-9), vec![]);
        prop_assert_eq!(
            check_nash(&market, state.profile(), &movable, IMPROVEMENT_TOL),
            vec![]
        );
    }

    /// Capacity certification agrees with `Profile::is_feasible` on
    /// arbitrary (possibly overloaded) profiles.
    #[test]
    fn capacity_certificate_agrees_with_is_feasible(
        r in rand_market(),
        script in proptest::collection::vec((0usize..64, 0usize..8), 0..40),
    ) {
        let market = build(&r);
        let profile = scripted_profile(&market, &script);
        prop_assert_eq!(
            check_capacity(&market, &profile).is_empty(),
            profile.is_feasible(&market)
        );
    }

    /// Cost reconstruction accepts the true social cost of any profile and
    /// rejects a visibly perturbed report.
    #[test]
    fn cost_reconstruction_accepts_truth_rejects_perturbation(
        r in rand_market(),
        script in proptest::collection::vec((0usize..64, 0usize..8), 0..40),
        bump in 0.5..5.0f64,
    ) {
        let market = build(&r);
        let profile = scripted_profile(&market, &script);
        let truth = profile.social_cost(&market);
        prop_assert_eq!(check_cost_reconstruction(&market, &profile, truth, 1e-9), vec![]);
        let off = truth + bump * (1.0 + truth.abs()) * 1e-3;
        prop_assert!(!check_cost_reconstruction(&market, &profile, off, 1e-9).is_empty());
    }
}
