//! Shape assertions for the paper's figures (quick single-seed versions of
//! what EXPERIMENTS.md records from the full runs).

use mec_core::lcf::{lcf, LcfConfig};
use mec_workload::{gtitm_scenario, Params};

/// Fig. 3(a): the LCF social cost grows as the selfish fraction grows.
#[test]
fn fig3_shape_social_cost_grows_with_selfish_fraction() {
    let s = gtitm_scenario(150, &Params::paper().with_providers(60), 42);
    let market = &s.generated.market;
    let costs: Vec<f64> = [0.0, 0.5, 1.0]
        .iter()
        .map(|&frac| {
            lcf(market, &LcfConfig::new(1.0 - frac))
                .unwrap()
                .social_cost
        })
        .collect();
    assert!(
        costs[0] <= costs[2] + 1e-6,
        "full coordination {} should beat full anarchy {}",
        costs[0],
        costs[2]
    );
    assert!(
        costs[0] <= costs[1] + 1e-6,
        "coordination monotonicity violated: {costs:?}"
    );
}

/// Fig. 6(d): a larger update-data volume means a higher total cost.
#[test]
fn fig6d_shape_cost_grows_with_update_volume() {
    let mut last = 0.0;
    for ratio in [0.05, 0.25, 0.5] {
        let params = Params::paper().with_providers(40).with_update_ratio(ratio);
        let s = gtitm_scenario(150, &params, 42);
        let cost = lcf(&s.generated.market, &LcfConfig::new(0.7))
            .unwrap()
            .social_cost;
        assert!(
            cost >= last - 1e-6,
            "cost {cost} dropped as update ratio rose to {ratio}"
        );
        last = cost;
    }
}

/// Fig. 6(c): more service-caching requests mean a higher total cost.
#[test]
fn fig6c_shape_cost_grows_with_requests() {
    let mut last = 0.0;
    for providers in [20, 60, 100] {
        let s = gtitm_scenario(150, &Params::paper().with_providers(providers), 42);
        let cost = lcf(&s.generated.market, &LcfConfig::new(0.7))
            .unwrap()
            .social_cost;
        assert!(
            cost > last,
            "cost {cost} did not grow with {providers} providers"
        );
        last = cost;
    }
}

/// Fig. 7(a): a larger `a_max` (fewer virtual cloudlets per cloudlet, Eq. 7)
/// pushes the cost up.
#[test]
fn fig7a_shape_cost_grows_with_a_max() {
    let lo = {
        let params = Params::paper().with_providers(60).with_max_service_vms(2.0);
        let s = gtitm_scenario(150, &params, 42);
        lcf(&s.generated.market, &LcfConfig::new(0.7))
            .unwrap()
            .social_cost
    };
    let hi = {
        let params = Params::paper()
            .with_providers(60)
            .with_max_service_vms(10.0);
        let s = gtitm_scenario(150, &params, 42);
        lcf(&s.generated.market, &LcfConfig::new(0.7))
            .unwrap()
            .social_cost
    };
    assert!(
        hi >= lo - 1e-6,
        "a_max=10 cost {hi} below a_max=2 cost {lo}"
    );
}

/// Eq. 7 sanity behind Fig. 7: growing `a_max` shrinks every `n_i`.
#[test]
fn fig7_mechanism_fewer_virtual_cloudlets_as_a_max_grows() {
    use mec_core::appro::virtual_cloudlet_counts;
    let small = gtitm_scenario(
        150,
        &Params::paper().with_providers(60).with_max_service_vms(2.0),
        42,
    );
    let large = gtitm_scenario(
        150,
        &Params::paper()
            .with_providers(60)
            .with_max_service_vms(10.0),
        42,
    );
    let n_small = virtual_cloudlet_counts(&small.generated.market);
    let n_large = virtual_cloudlet_counts(&large.generated.market);
    let sum_small: usize = n_small.iter().sum();
    let sum_large: usize = n_large.iter().sum();
    assert!(
        sum_large < sum_small,
        "virtual cloudlets did not shrink: {sum_small} -> {sum_large}"
    );
}
