//! Empirical validation of the paper's formal results on markets small
//! enough to compute the exact optimum.

use mec_core::appro::{appro, approximation_ratio_bound, ApproConfig};
use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_core::opt::social_optimum;

fn small_market(seed: u64, providers: usize) -> Market {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11);
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 1024) as f64 / 1024.0
    };
    let mut b = Market::builder();
    for _ in 0..3 {
        b = b.cloudlet(CloudletSpec::new(
            18.0 + 12.0 * next(),
            70.0 + 60.0 * next(),
            0.1 + 0.9 * next(),
            0.1 + 0.9 * next(),
        ));
    }
    for _ in 0..providers {
        b = b.provider(ProviderSpec::new(
            1.0 + 3.0 * next(),
            4.0 + 8.0 * next(),
            0.4 + next(),
            5.0 + 8.0 * next(),
        ));
    }
    b.uniform_update_cost(0.15 + 0.2 * next()).build()
}

/// Lemma 1: the (repaired) Appro solution is always capacity-feasible.
#[test]
fn lemma1_appro_feasibility() {
    for seed in 0..20 {
        let m = small_market(seed, 8);
        let sol = appro(&m, &ApproConfig::new()).unwrap();
        assert!(sol.profile.is_feasible(&m), "seed {seed}");
        let flat = appro(&m, &ApproConfig::paper_flat()).unwrap();
        assert!(flat.profile.is_feasible(&m), "flat, seed {seed}");
    }
}

/// Lemma 2: the paper-literal Appro stays within the `2δκ` factor of the
/// exact social optimum (the bound is loose — we also record how loose).
#[test]
fn lemma2_approximation_ratio_bound() {
    let mut worst_ratio = 1.0f64;
    for seed in 0..15 {
        let m = small_market(seed, 7);
        let opt = social_optimum(&m).unwrap();
        let sol = appro(&m, &ApproConfig::paper_flat()).unwrap();
        let ratio = sol.social_cost / opt.social_cost;
        let bound = approximation_ratio_bound(&m);
        assert!(
            ratio <= bound + 1e-6,
            "seed {seed}: ratio {ratio} exceeds 2δκ = {bound}"
        );
        worst_ratio = worst_ratio.max(ratio);
    }
    // Empirically the flat Appro lands far inside the guarantee.
    assert!(
        worst_ratio < 4.0,
        "flat Appro unusually bad: worst ratio {worst_ratio}"
    );
}

/// The default (marginal-pricing + polish) Appro should be near-optimal on
/// small markets — much tighter than the Lemma 2 guarantee.
#[test]
fn default_appro_is_near_optimal() {
    let mut worst = 1.0f64;
    for seed in 0..15 {
        let m = small_market(seed, 7);
        let opt = social_optimum(&m).unwrap();
        let sol = appro(&m, &ApproConfig::new()).unwrap();
        let ratio = sol.social_cost / opt.social_cost;
        assert!(ratio >= 1.0 - 1e-9, "beat the optimum?! seed {seed}");
        worst = worst.max(ratio);
    }
    assert!(worst <= 1.10, "default Appro ratio {worst} > 1.10");
}

/// The optimum never prefers congestion over an equal-price spread: at the
/// optimum, no single-provider move strictly reduces the social cost.
#[test]
fn optimum_is_locally_stable() {
    use mec_core::local_search::social_local_search;
    for seed in 0..10 {
        let m = small_market(seed, 6);
        let opt = social_optimum(&m).unwrap();
        let mut p = opt.profile.clone();
        let movable = vec![true; m.provider_count()];
        let res = social_local_search(&m, &mut p, &movable, 100);
        assert_eq!(
            res.moves, 0,
            "seed {seed}: optimum admitted an improving move"
        );
    }
}
