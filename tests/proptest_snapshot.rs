//! Snapshot round-trip property: `GameState` → snapshot text → restore
//! must reproduce the original market, profile and active mask exactly,
//! with congestion/loads/residuals recounted on the restored side.

use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_core::snapshot::{encode_snapshot, parse_snapshot};
use mec_core::state::GameState;
use mec_core::{Placement, Profile, ProviderId};
use mec_topology::CloudletId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandMarket {
    cloudlets: Vec<(f64, f64, f64, f64)>,
    providers: Vec<(f64, f64, f64, f64)>,
    update: f64,
}

fn rand_market() -> impl Strategy<Value = RandMarket> {
    let cloudlet = (10.0..40.0f64, 50.0..200.0f64, 0.0..1.0f64, 0.0..1.0f64);
    let provider = (0.5..4.0f64, 2.0..15.0f64, 0.2..1.5f64, 3.0..25.0f64);
    (
        proptest::collection::vec(cloudlet, 2..5),
        proptest::collection::vec(provider, 3..12),
        0.0..0.5f64,
    )
        .prop_map(|(cloudlets, providers, update)| RandMarket {
            cloudlets,
            providers,
            update,
        })
}

fn build(r: &RandMarket) -> Market {
    let mut b = Market::builder();
    for &(c, bw, a, be) in &r.cloudlets {
        b = b.cloudlet(CloudletSpec::new(c, bw, a, be));
    }
    for (k, &(cd, bd, ic, rc)) in r.providers.iter().enumerate() {
        // Sprinkle in remote-forbidden providers: INFINITY must survive
        // the trip through the file format.
        let rc = if k % 5 == 4 { f64::INFINITY } else { rc };
        b = b.provider(ProviderSpec::new(cd, bd, ic, rc));
    }
    b.uniform_update_cost(r.update).build()
}

fn decode_profile(market: &Market, picks: &[usize]) -> (Profile, Vec<bool>) {
    let n = market.provider_count();
    let m = market.cloudlet_count();
    let mut profile = Profile::all_remote(n);
    let mut active = vec![false; n];
    for (l, slot) in active.iter_mut().enumerate() {
        let pick = picks.get(l).copied().unwrap_or(0) % (m + 2);
        // pick == m → remote-but-active; pick == m+1 → inactive.
        if pick < m {
            profile.set(ProviderId(l), Placement::Cloudlet(CloudletId(pick)));
            *slot = true;
        } else {
            *slot = pick == m;
        }
    }
    (profile, active)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode → parse reproduces the market bit-for-bit (every spec field,
    /// every update cost), the profile, the active mask and the sequence
    /// number; a `GameState` rebuilt on the restored market recounts the
    /// same congestion and loads as the original.
    #[test]
    fn snapshot_round_trips_and_recounts(
        r in rand_market(),
        picks in proptest::collection::vec(0usize..16, 3..12),
        seq in 0u64..1_000_000,
    ) {
        let market = build(&r);
        let (profile, active) = decode_profile(&market, &picks);
        let text = encode_snapshot(seq, &market, &profile, &active);
        let snap = parse_snapshot(&text).unwrap();

        prop_assert_eq!(snap.seq, seq);
        prop_assert_eq!(&snap.profile, &profile);
        prop_assert_eq!(&snap.active, &active);
        prop_assert_eq!(snap.market.cloudlet_count(), market.cloudlet_count());
        prop_assert_eq!(snap.market.provider_count(), market.provider_count());
        for i in market.cloudlets() {
            let (a, b) = (market.cloudlet(i), snap.market.cloudlet(i));
            prop_assert_eq!(a.compute_capacity.to_bits(), b.compute_capacity.to_bits());
            prop_assert_eq!(a.bandwidth_capacity.to_bits(), b.bandwidth_capacity.to_bits());
            prop_assert_eq!(a.alpha.to_bits(), b.alpha.to_bits());
            prop_assert_eq!(a.beta.to_bits(), b.beta.to_bits());
        }
        for l in market.providers() {
            let (a, b) = (market.provider(l), snap.market.provider(l));
            prop_assert_eq!(a.compute_demand.to_bits(), b.compute_demand.to_bits());
            prop_assert_eq!(a.bandwidth_demand.to_bits(), b.bandwidth_demand.to_bits());
            prop_assert_eq!(a.instantiation_cost.to_bits(), b.instantiation_cost.to_bits());
            prop_assert_eq!(a.remote_cost.to_bits(), b.remote_cost.to_bits());
            for i in market.cloudlets() {
                prop_assert_eq!(
                    market.update_cost(l, i).to_bits(),
                    snap.market.update_cost(l, i).to_bits()
                );
            }
        }

        // The restored state's recounted aggregates agree with the
        // original's maintained ones.
        let original = GameState::new(&market, profile.clone());
        let restored = GameState::new(&snap.market, snap.profile.clone());
        prop_assert!(restored.agrees_with_recompute(0.0));
        for i in market.cloudlets() {
            prop_assert_eq!(original.congestion(i), restored.congestion(i));
            let (oa, ob) = original.load(i);
            let (ra, rb) = restored.load(i);
            prop_assert_eq!(oa.to_bits(), ra.to_bits());
            prop_assert_eq!(ob.to_bits(), rb.to_bits());
        }
    }

    /// A snapshot cut anywhere mid-file never parses successfully — the
    /// end-marker record count makes truncation visible.
    #[test]
    fn truncated_snapshots_are_rejected(
        r in rand_market(),
        picks in proptest::collection::vec(0usize..16, 3..12),
        frac in 0.0f64..1.0,
    ) {
        let market = build(&r);
        let (profile, active) = decode_profile(&market, &picks);
        let text = encode_snapshot(9, &market, &profile, &active);
        let lines: Vec<&str> = text.lines().collect();
        let keep = ((lines.len() as f64) * frac) as usize;
        if keep < lines.len() {
            let cut: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
            prop_assert!(parse_snapshot(&cut).is_err());
        }
    }
}
