//! Integration tests for the extension modules: generalized congestion
//! models, the weighted game, churn dynamics, failure drills, and the
//! trace/replication analytics — all driven through generated scenarios.

use mec_core::congestion::{CongestionModel, GeneralizedGame};
use mec_core::dynamics::{ChurnEvent, ChurnSimulation, ReplanStrategy};
use mec_core::lcf::{lcf, LcfConfig};
use mec_core::weighted::WeightedGame;
use mec_core::{cost_breakdown, load_balance, Profile, ProviderId};
use mec_sim::{replicate, simulate, SimConfig};
use mec_testbed::{drill_all, Overlay, Underlay};
use mec_workload::{gtitm_scenario, Params};

#[test]
fn generalized_models_converge_on_generated_markets() {
    let s = gtitm_scenario(100, &Params::paper().with_providers(30), 1);
    let market = &s.generated.market;
    for model in [
        CongestionModel::Linear,
        CongestionModel::Polynomial { degree: 2 },
        CongestionModel::Mm1 { capacity: 12 },
    ] {
        let g = GeneralizedGame::new(market, model);
        let mut p = Profile::all_remote(30);
        assert!(g.run_dynamics(&mut p, 10_000).is_some(), "{model:?}");
        assert!(g.is_nash(&p), "{model:?}");
        assert!(p.is_feasible(market), "{model:?}");
    }
}

#[test]
fn convexity_ordering_on_generated_markets() {
    // More convex pricing → flatter equilibrium load profiles.
    let s = gtitm_scenario(120, &Params::paper().with_providers(50), 2);
    let market = &s.generated.market;
    let max_sigma = |model| {
        let g = GeneralizedGame::new(market, model);
        let mut p = Profile::all_remote(50);
        g.run_dynamics(&mut p, 10_000).unwrap();
        *p.congestion(market).iter().max().unwrap()
    };
    let lin = max_sigma(CongestionModel::Linear);
    let cub = max_sigma(CongestionModel::Polynomial { degree: 3 });
    assert!(cub <= lin, "cubic {cub} > linear {lin}");
}

#[test]
fn weighted_game_converges_on_generated_markets() {
    let s = gtitm_scenario(100, &Params::paper().with_providers(40), 3);
    let market = &s.generated.market;
    let g = WeightedGame::new(market);
    let mut p = Profile::all_remote(40);
    assert!(g.run_dynamics(&mut p, 10_000).is_some());
    assert!(g.is_nash(&p));
    assert!(p.is_feasible(market));
}

#[test]
fn churn_simulation_stays_feasible_under_turnover() {
    let s = gtitm_scenario(120, &Params::paper().with_providers(40), 4);
    let market = &s.generated.market;
    for strategy in [ReplanStrategy::FullLcf, ReplanStrategy::Incremental] {
        let mut sim = ChurnSimulation::new(market, strategy, LcfConfig::new(0.7));
        let ids = |r: std::ops::Range<usize>| r.map(ProviderId).collect::<Vec<_>>();
        sim.step(&ChurnEvent {
            arrivals: ids(0..25),
            departures: vec![],
        })
        .unwrap();
        sim.step(&ChurnEvent {
            arrivals: ids(25..35),
            departures: ids(0..10),
        })
        .unwrap();
        let rep = sim
            .step(&ChurnEvent {
                arrivals: ids(0..5),
                departures: ids(30..35),
            })
            .unwrap();
        assert!(sim.profile().is_feasible(market), "{strategy:?}");
        assert!(rep.social_cost > 0.0);
    }
}

#[test]
fn breakdown_explains_lcf_advantage() {
    // LCF wins primarily by lower congestion charges — verify the
    // decomposition supports the EXPERIMENTS.md narrative.
    let s = gtitm_scenario(150, &Params::paper().with_providers(60), 5);
    let market = &s.generated.market;
    let lcf_out = lcf(market, &LcfConfig::new(0.7)).unwrap();
    let off = mec_baselines::offload_cache(&s.generated);
    let b_lcf = cost_breakdown(market, &lcf_out.profile);
    let b_off = cost_breakdown(market, &off.profile);
    assert!((b_lcf.total() - lcf_out.social_cost).abs() < 1e-9);
    assert!(
        b_lcf.congestion < b_off.congestion,
        "LCF congestion {} not below OffloadCache {}",
        b_lcf.congestion,
        b_off.congestion
    );
    // And its load profile is flatter.
    let lb_lcf = load_balance(market, &lcf_out.profile);
    let lb_off = load_balance(market, &off.profile);
    assert!(lb_lcf.max_congestion <= lb_off.max_congestion);
}

#[test]
fn trace_accounts_every_request() {
    let s = gtitm_scenario(100, &Params::paper().with_providers(15), 6);
    let out = lcf(&s.generated.market, &LcfConfig::new(0.7)).unwrap();
    let rep = simulate(
        &s.net,
        &s.generated,
        &out.profile,
        &SimConfig {
            record_trace: true,
            ..SimConfig::default()
        },
    );
    let trace = rep.trace.expect("trace requested");
    assert_eq!(trace.len() as u64, rep.completed);
    let per_cloudlet = trace.requests_per_cloudlet(s.generated.market.cloudlet_count());
    let cached_total: u64 = per_cloudlet.iter().sum();
    assert!(cached_total <= rep.completed);
    // Percentile consistency with the aggregate report.
    assert!((trace.latency_percentile_ms(0.95) - rep.p95_latency_ms).abs() < 1e-6);
}

#[test]
fn replication_confidence_interval_covers_single_runs() {
    let s = gtitm_scenario(100, &Params::paper().with_providers(12), 7);
    let out = lcf(&s.generated.market, &LcfConfig::new(0.7)).unwrap();
    let rep = replicate(
        &s.net,
        &s.generated,
        &out.profile,
        &SimConfig::default(),
        12,
    );
    // The spread should be modest for this workload.
    assert!(rep.avg_latency_ms.std_dev < rep.avg_latency_ms.mean);
    assert!(rep.total_cost.std_dev < 1e-9);
}

#[test]
fn failure_drill_and_vm_deployment_integrate() {
    let underlay = Underlay::paper_testbed();
    let overlay = Overlay::build(&underlay);
    let reports = drill_all(&underlay, &overlay);
    assert_eq!(reports.len(), 5);
    assert!(reports.iter().all(|r| r.fabric_survives));

    let tb = mec_testbed::Testbed::new(&Params::paper().with_providers(25), 8);
    let rep = tb
        .run(&mec_testbed::LcfApp {
            config: LcfConfig::new(0.7),
        })
        .unwrap();
    let cached = rep.flow_rules; // one rule per provider
    assert_eq!(cached, 25);
    assert!(rep.vm_count <= 25);
    assert!(rep.max_oversubscription.is_finite());
}
