//! End-to-end integration: topology → workload → mechanism → simulator.

use mec_baselines::{jo_offload_cache, offload_cache, JoConfig};
use mec_core::game::is_nash;
use mec_core::lcf::{lcf, LcfConfig};
use mec_sim::{simulate, SimConfig};
use mec_workload::{as1755_scenario, gtitm_scenario, Params};

#[test]
fn full_pipeline_gtitm() {
    let s = gtitm_scenario(150, &Params::paper().with_providers(50), 11);
    let market = &s.generated.market;

    let out = lcf(market, &LcfConfig::new(0.7)).unwrap();
    assert!(out.profile.is_feasible(market));
    assert!(out.convergence.converged);

    // Deployed placement survives a request-level replay.
    let rep = simulate(&s.net, &s.generated, &out.profile, &SimConfig::default());
    let want: u64 = s
        .generated
        .providers
        .iter()
        .map(|m| m.requests as u64)
        .sum();
    assert_eq!(rep.completed, want);
    assert!(rep.avg_latency_ms > 0.0);
}

#[test]
fn lcf_dominates_baselines_across_seeds_and_topologies() {
    // The headline result (Figs. 2a / 5a): LCF's social cost is the lowest.
    let mut lcf_wins = 0;
    let mut total = 0;
    for seed in 0..4 {
        for scenario in [
            gtitm_scenario(100, &Params::paper().with_providers(40), seed),
            as1755_scenario(&Params::paper().with_providers(40), seed),
        ] {
            let market = &scenario.generated.market;
            let l = lcf(market, &LcfConfig::new(0.7)).unwrap().social_cost;
            let j = jo_offload_cache(&scenario.generated, &JoConfig::default()).social_cost;
            let o = offload_cache(&scenario.generated).social_cost;
            total += 1;
            if l <= j + 1e-9 && l <= o + 1e-9 {
                lcf_wins += 1;
            }
        }
    }
    assert!(
        lcf_wins * 10 >= total * 9,
        "LCF won only {lcf_wins}/{total} scenario runs"
    );
}

#[test]
fn lcf_equilibrium_is_stable() {
    // Market stability: no selfish provider wants to deviate (Lemma 3).
    let s = gtitm_scenario(120, &Params::paper().with_providers(60), 5);
    let market = &s.generated.market;
    let out = lcf(market, &LcfConfig::new(0.5)).unwrap();
    let mut movable = vec![true; market.provider_count()];
    for l in &out.coordinated {
        movable[l.index()] = false;
    }
    assert!(is_nash(market, &out.profile, &movable));
}

#[test]
fn analytic_and_simulated_costs_agree() {
    // The simulator prices with Eq. (3)/(6), so the replayed total must
    // reproduce the closed-form social cost for any profile.
    let s = gtitm_scenario(100, &Params::paper().with_providers(40), 9);
    let market = &s.generated.market;
    let l = lcf(market, &LcfConfig::new(0.7)).unwrap();
    let o = offload_cache(&s.generated);
    for (analytic, profile) in [(l.social_cost, &l.profile), (o.social_cost, &o.profile)] {
        let sim = simulate(&s.net, &s.generated, profile, &SimConfig::default());
        assert!(
            (sim.total_cost - analytic).abs() < 1e-6,
            "replayed {} != analytic {}",
            sim.total_cost,
            analytic
        );
    }
}

#[test]
fn remote_forbidden_still_works_when_capacity_allows() {
    let mut params = Params::paper().with_providers(20);
    params.allow_remote = false;
    let s = gtitm_scenario(150, &params, 3);
    let market = &s.generated.market;
    let out = lcf(market, &LcfConfig::new(0.7)).unwrap();
    assert!(out.profile.is_feasible(market));
    for (_, p) in out.profile.iter() {
        assert!(matches!(p, mec_core::Placement::Cloudlet(_)));
    }
}
