//! Where should the infrastructure provider add capacity?
//!
//! The dual values of the GAP relaxation's capacity constraints are shadow
//! prices: the marginal social-cost saving per extra virtual-cloudlet slot.
//! This example prices every cloudlet of a generated market under rising
//! demand and shows the prices concentrating on the cheapest, most
//! contended cloudlets — actionable capacity-planning signal the paper's
//! mechanism computes for free.
//!
//! ```sh
//! cargo run --release --example capacity_pricing
//! ```

use mec_core::appro::{cloudlet_capacity_values, virtual_cloudlet_counts};
use mec_workload::{gtitm_scenario, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for providers in [40usize, 80, 160] {
        let scenario = gtitm_scenario(100, &Params::paper().with_providers(providers), 42);
        let market = &scenario.generated.market;
        let values = cloudlet_capacity_values(market)?;
        let counts = virtual_cloudlet_counts(market);

        let mut priced: Vec<(usize, f64)> = values
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, v)| *v > 1e-9)
            .collect();
        priced.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        println!(
            "\n{} providers -> {} of {} cloudlets have a positive capacity price",
            providers,
            priced.len(),
            market.cloudlet_count()
        );
        for (i, v) in priced.iter().take(5) {
            let cl = market.cloudlet(mec_topology::CloudletId(*i));
            println!(
                "  CL{i}: ${v:.3}/slot  (n_i = {}, α+β = {:.2})",
                counts[*i],
                cl.congestion_price()
            );
        }
        if priced.is_empty() {
            println!("  (capacity is slack everywhere — no expansion pays off)");
        }
    }
    println!("\nPrices rise with demand and concentrate on cheap, contended");
    println!("cloudlets — exactly where an operator should add VMs first.");
    Ok(())
}
