//! Failure drill: fail each hardware switch of the testbed underlay in
//! turn and measure what the AS1755 overlay suffers — the resilience
//! property the paper's wiring ("each switch is connected to at least two
//! other switches") is designed to provide.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use mec_testbed::{drill_all, Overlay, SwitchId, Underlay};

fn main() {
    let underlay = Underlay::paper_testbed();
    let overlay = Overlay::build(&underlay);

    println!(
        "Underlay: {} switches / {} servers; overlay: {} OVS nodes, {} VXLAN tunnels\n",
        underlay.switch_count(),
        underlay.server_count(),
        overlay.topology().graph.node_count(),
        overlay.tunnels().len()
    );
    println!(
        "{:<30}{:>10}{:>10}{:>12}{:>12}{:>11}",
        "failed switch", "survives", "migrated", "rerouted", "lat before", "lat after"
    );
    for report in drill_all(&underlay, &overlay) {
        let model = underlay.switch(SwitchId(report.failed.0));
        println!(
            "{:<30}{:>10}{:>10}{:>12}{:>11.3}ms{:>10.3}ms",
            model.label(),
            if report.fabric_survives { "yes" } else { "NO" },
            report.migrated_nodes,
            report.rerouted_tunnels,
            report.mean_tunnel_ms_before,
            report.mean_tunnel_ms_after,
        );
        assert!(
            report.fabric_survives,
            "testbed has a single point of failure!"
        );
    }
    println!("\nEvery single-switch failure is survivable; orphaned OVS nodes are");
    println!("migrated and the VXLAN mesh re-routes with microsecond-scale inflation.");
}
