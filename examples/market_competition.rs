//! Market competition on a GT-ITM network: the LCF Stackelberg mechanism
//! against the two baselines, with equilibrium diagnostics.
//!
//! ```sh
//! cargo run --release --example market_competition [network-size] [providers]
//! ```

use mec_baselines::{jo_offload_cache, offload_cache, JoConfig};
use mec_core::game::is_nash;
use mec_core::lcf::{lcf, LcfConfig};
use mec_core::Placement;
use mec_workload::{gtitm_scenario, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let size: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(250);
    let providers: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(100);

    println!("Generating GT-ITM network of size {size} with {providers} providers...");
    let scenario = gtitm_scenario(size, &Params::paper().with_providers(providers), 42);
    let market = &scenario.generated.market;
    println!(
        "  {} cloudlets, {} data centers, δ={:.2}, κ={:.2}",
        market.cloudlet_count(),
        scenario.net.data_center_count(),
        market.delta(),
        market.kappa()
    );

    // The paper's default: 30 % of providers behave selfishly.
    let outcome = lcf(market, &LcfConfig::new(0.7))?;
    let jo = jo_offload_cache(&scenario.generated, &JoConfig::default());
    let off = offload_cache(&scenario.generated);

    let cached = |p: &mec_core::Profile| {
        p.iter()
            .filter(|(_, x)| matches!(x, Placement::Cloudlet(_)))
            .count()
    };
    println!(
        "\n{:<16}{:>14}{:>10}{:>10}",
        "algorithm", "social cost", "cached", "remote"
    );
    for (name, cost, profile) in [
        ("LCF", outcome.social_cost, &outcome.profile),
        ("JoOffloadCache", jo.social_cost, &jo.profile),
        ("OffloadCache", off.social_cost, &off.profile),
    ] {
        println!(
            "{:<16}{:>14.2}{:>10}{:>10}",
            name,
            cost,
            cached(profile),
            providers - cached(profile)
        );
    }

    // Stability: no selfish player can gain by deviating.
    let mut movable = vec![true; providers];
    for l in &outcome.coordinated {
        movable[l.index()] = false;
    }
    println!(
        "\nLCF equilibrium is a Nash equilibrium of the selfish subgame: {}",
        is_nash(market, &outcome.profile, &movable)
    );
    println!(
        "Best-response dynamics: {} moves over {} rounds",
        outcome.convergence.moves, outcome.convergence.rounds
    );
    println!(
        "Savings vs OffloadCache: {:.1}%",
        100.0 * (off.social_cost - outcome.social_cost) / off.social_cost
    );

    // Are the bulk-lease contracts viable? Price the coordinated
    // providers' obedience and compare with what coordination saves.
    let incentives = mec_core::incentive_report(market, &outcome)?;
    println!(
        "\nBulk-lease viability: {} of {} coordinated providers envy a deviation;",
        incentives.envious_count(),
        outcome.coordinated.len()
    );
    println!(
        "required subsidy ${:.2} vs coordination saving ${:.2} -> budget-feasible: {}",
        incentives.total_subsidy,
        incentives.coordination_saving,
        incentives.budget_feasible()
    );
    Ok(())
}
