//! Replays the paper's testbed experiment (Section IV-C): the AS1755
//! overlay on the five-switch underlay, all three algorithms deployed as
//! controller applications, with request-level latency measurements.
//!
//! ```sh
//! cargo run --release --example testbed_emulation
//! ```

use mec_core::lcf::LcfConfig;
use mec_testbed::{ControllerApp, JoOffloadCacheApp, LcfApp, OffloadCacheApp, Testbed};
use mec_workload::Params;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tb = Testbed::new(&Params::paper().with_providers(60), 7);

    println!(
        "Underlay: {} hardware switches",
        tb.underlay().switch_count()
    );
    for k in 0..tb.underlay().switch_count() {
        let model = tb.underlay().switch(mec_testbed::SwitchId(k));
        println!(
            "  [{}] {:<28} {:>5.1} µs/pkt  {:>6.0} Gbps",
            k,
            model.label(),
            model.forwarding_latency_us(),
            model.throughput_gbps()
        );
    }
    println!(
        "Overlay: AS1755, {} OVS nodes, {} VXLAN tunnels (mean VXLAN overhead {:.3} ms)",
        tb.overlay().topology().graph.node_count(),
        tb.overlay().tunnels().len(),
        tb.overlay().mean_vxlan_overhead_ms()
    );

    let apps: Vec<Box<dyn ControllerApp>> = vec![
        Box::new(LcfApp {
            config: LcfConfig::new(0.7),
        }),
        Box::new(JoOffloadCacheApp::default()),
        Box::new(OffloadCacheApp),
    ];

    println!(
        "\n{:<16}{:>12}{:>12}{:>10}{:>14}{:>14}",
        "algorithm", "social $", "time (ms)", "rules", "avg lat (ms)", "p95 lat (ms)"
    );
    for app in &apps {
        let rep = tb.run(app.as_ref())?;
        println!(
            "{:<16}{:>12.2}{:>12.2}{:>10}{:>14.2}{:>14.2}",
            rep.algorithm,
            rep.social_cost,
            rep.running_time.as_secs_f64() * 1000.0,
            rep.flow_rules,
            rep.sim.avg_latency_ms,
            rep.sim.p95_latency_ms,
        );
    }
    Ok(())
}
