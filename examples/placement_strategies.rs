//! Does cloudlet placement matter? The paper drops cloudlets on random
//! edge nodes; this example compares that against degree-weighted and
//! greedy k-median placement, measuring both user coverage and the social
//! cost the LCF mechanism achieves on the resulting market.
//!
//! ```sh
//! cargo run --release --example placement_strategies
//! ```

use mec_core::lcf::{lcf, LcfConfig};
use mec_topology::gtitm::{generate, GtItmConfig};
use mec_topology::{coverage_cost, MecNetwork, PlacementConfig, PlacementStrategy};
use mec_workload::{generator, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::paper().with_providers(80);
    println!(
        "{:<18}{:>16}{:>16}{:>14}",
        "strategy", "coverage (ms)", "social cost", "cached"
    );
    for (name, strategy) in [
        ("random (paper)", PlacementStrategy::Random),
        ("degree-weighted", PlacementStrategy::DegreeWeighted),
        ("k-median", PlacementStrategy::KMedian),
    ] {
        let mut coverage = 0.0;
        let mut social = 0.0;
        let mut cached = 0usize;
        let seeds = [1u64, 2, 3];
        for &seed in &seeds {
            let topo = generate(&GtItmConfig::for_size(200, seed));
            let net = MecNetwork::place_with_strategy(
                topo,
                &PlacementConfig {
                    seed,
                    ..PlacementConfig::default()
                },
                strategy,
            );
            let sites: Vec<_> = net.cloudlets().map(|c| net.cloudlet_site(c)).collect();
            coverage += coverage_cost(net.topology(), net.distances(), &sites) / seeds.len() as f64;
            let gen = generator::generate(&net, &params, seed + 100);
            let out = lcf(&gen.market, &LcfConfig::new(0.7))?;
            social += out.social_cost / seeds.len() as f64;
            cached += out
                .profile
                .iter()
                .filter(|(_, p)| matches!(p, mec_core::Placement::Cloudlet(_)))
                .count();
        }
        println!(
            "{:<18}{:>16.2}{:>16.2}{:>14}",
            name,
            coverage,
            social,
            cached / seeds.len()
        );
    }
    println!("\nBetter coverage shortens user paths (offload/latency), while the");
    println!("market's social cost is dominated by congestion + update pricing —");
    println!("placement matters most for the baselines that chase offload cost.");
    Ok(())
}
