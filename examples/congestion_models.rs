//! Beyond the proportional model: equilibria under the generalized
//! congestion curves the paper's derivation allows ("relies only on the
//! non-decreasing of cost with congestion levels").
//!
//! Compares the pure-Nash equilibria of the linear (paper), quadratic,
//! cubic and M/M/1 pricing curves, plus the load-weighted game, on the
//! same generated market.
//!
//! ```sh
//! cargo run --release --example congestion_models
//! ```

use mec_core::congestion::{CongestionModel, GeneralizedGame};
use mec_core::weighted::WeightedGame;
use mec_core::{load_balance, Placement, Profile};
use mec_workload::{gtitm_scenario, Params};

fn main() {
    let scenario = gtitm_scenario(150, &Params::paper().with_providers(60), 42);
    let market = &scenario.generated.market;
    let n = market.provider_count();

    println!(
        "{:<22}{:>12}{:>10}{:>10}{:>10}{:>8}",
        "congestion model", "social $", "cached", "max σ", "Jain", "moves"
    );

    for (name, model) in [
        ("linear (paper)", CongestionModel::Linear),
        ("quadratic", CongestionModel::Polynomial { degree: 2 }),
        ("cubic", CongestionModel::Polynomial { degree: 3 }),
        ("M/M/1 (cap 6)", CongestionModel::Mm1 { capacity: 6 }),
    ] {
        let game = GeneralizedGame::new(market, model);
        let mut profile = Profile::all_remote(n);
        let moves = game
            .run_dynamics(&mut profile, 10_000)
            .expect("potential game converges");
        let lb = load_balance(market, &profile);
        let cached = profile
            .iter()
            .filter(|(_, p)| matches!(p, Placement::Cloudlet(_)))
            .count();
        println!(
            "{:<22}{:>12.2}{:>10}{:>10}{:>10.3}{:>8}",
            name,
            game.social_cost(&profile),
            cached,
            lb.max_congestion,
            lb.jain_index,
            moves
        );
    }

    // The weighted game prices congestion by resource load instead of
    // instance count.
    let weighted = WeightedGame::new(market);
    let mut profile = Profile::all_remote(n);
    let moves = weighted
        .run_dynamics(&mut profile, 10_000)
        .expect("weighted affine game converges");
    let lb = load_balance(market, &profile);
    let cached = profile
        .iter()
        .filter(|(_, p)| matches!(p, Placement::Cloudlet(_)))
        .count();
    println!(
        "{:<22}{:>12.2}{:>10}{:>10}{:>10.3}{:>8}",
        "weighted (by load)",
        weighted.social_cost(&profile),
        cached,
        lb.max_congestion,
        lb.jain_index,
        moves
    );

    println!("\nConvexer curves flatten the equilibrium (higher Jain index, lower");
    println!("max congestion) and push marginal services back to the remote cloud;");
    println!("the M/M/1 wall additionally caps every cloudlet at its service rate.");
}
