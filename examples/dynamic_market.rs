//! Dynamic service market: caching is temporary. Providers arrive and
//! depart over 20 epochs; compare full-LCF replanning against incremental
//! best-response on cost and churn (instantiations / evictions /
//! migrations).
//!
//! ```sh
//! cargo run --release --example dynamic_market
//! ```

use mec_core::dynamics::{ChurnSimulation, ReplanStrategy};
use mec_core::lcf::LcfConfig;
use mec_workload::{generate_script, gtitm_scenario, ChurnConfig, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universe = 80;
    let scenario = gtitm_scenario(200, &Params::paper().with_providers(universe), 42);
    let market = &scenario.generated.market;

    // Scripted churn: launch ramp, then diurnal steady-state turnover.
    let script = generate_script(
        universe,
        &ChurnConfig {
            epochs: 20,
            ramp_epochs: 5,
            ramp_arrivals: 10,
            steady_turnover: 4,
            diurnal_period: Some(8),
            seed: 7,
        },
    );

    for (name, strategy) in [
        ("full LCF replan", ReplanStrategy::FullLcf),
        ("incremental", ReplanStrategy::Incremental),
    ] {
        let mut sim = ChurnSimulation::new(market, strategy, LcfConfig::new(0.7));
        let mut total_cost = 0.0;
        let mut total_reloc = 0;
        let mut total_inst = 0;
        let mut total_evict = 0;
        println!("\n=== {name} ===");
        println!(
            "{:>6}{:>10}{:>9}{:>8}{:>8}{:>8}{:>8}",
            "epoch", "active", "cost", "cached", "moves", "new", "evict"
        );
        for (epoch, event) in script.iter().enumerate() {
            let rep = sim.step(event)?;
            total_cost += rep.social_cost;
            total_reloc += rep.relocations;
            total_inst += rep.instantiations;
            total_evict += rep.evictions;
            if epoch % 4 == 0 || epoch == script.len() - 1 {
                println!(
                    "{:>6}{:>10}{:>9.1}{:>8}{:>8}{:>8}{:>8}",
                    epoch,
                    sim.active_providers().len(),
                    rep.social_cost,
                    rep.cached,
                    rep.relocations,
                    rep.instantiations,
                    rep.evictions
                );
            }
        }
        println!(
            "TOTAL  cost {total_cost:.1}  migrations {total_reloc}  instantiations {total_inst}  evictions {total_evict}"
        );
    }
    println!("\nFull replanning buys lower epoch cost; incremental replanning");
    println!("keeps the market stable (far fewer service migrations).");
    Ok(())
}
