//! Quickstart: build a small service-caching market by hand, run the LCF
//! Stackelberg mechanism, and inspect the outcome.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mec_core::lcf::{lcf, LcfConfig};
use mec_core::model::{CloudletSpec, Market, ProviderSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-tiered MEC with three cloudlets of different congestion prices.
    let mut builder = Market::builder()
        .cloudlet(CloudletSpec::new(20.0, 100.0, 0.8, 0.7)) // pricey
        .cloudlet(CloudletSpec::new(25.0, 120.0, 0.4, 0.3)) // mid
        .cloudlet(CloudletSpec::new(15.0, 90.0, 0.1, 0.2)); // cheap but small

    // Ten providers wanting to cache one service each; serving from the
    // remote cloud stays possible at a distance-priced cost.
    for k in 0..10 {
        builder = builder.provider(ProviderSpec::new(
            1.0 + (k % 3) as f64,       // compute demand (VM units)
            5.0 + (k % 4) as f64 * 2.0, // bandwidth demand (Mbps)
            0.8,                        // instantiation + processing cost
            6.0 + (k % 5) as f64,       // remote-serving cost
        ));
    }
    let market = builder.uniform_update_cost(0.25).build();

    // Coordinate 70 % of the providers (ξ = 0.7); the rest play selfishly.
    let outcome = lcf(&market, &LcfConfig::new(0.7))?;

    println!("LCF outcome");
    println!("  social cost       : {:.3}", outcome.social_cost);
    println!("  coordinated cost  : {:.3}", outcome.coordinated_cost);
    println!("  selfish cost      : {:.3}", outcome.selfish_cost);
    println!(
        "  equilibrium       : {} (after {} improving moves)",
        if outcome.convergence.converged {
            "reached"
        } else {
            "budget exhausted"
        },
        outcome.convergence.moves
    );
    println!("  placements:");
    for (l, p) in outcome.profile.iter() {
        let tag = if outcome.coordinated.contains(&l) {
            "coordinated"
        } else {
            "selfish"
        };
        println!(
            "    {l} -> {p:<7} [{tag}] cost {:.3}",
            outcome.profile.provider_cost(&market, l)
        );
    }
    println!(
        "\nTheorem 1 PoA bound at ξ=0.7: {:.2}",
        mec_core::market_poa_bound(&market, 0.7)
    );
    Ok(())
}
