//! Price-of-Anarchy study: empirical anarchy on small markets against
//! Theorem 1's bound, sweeping the coordination fraction ξ.
//!
//! ```sh
//! cargo run --release --example poa_study
//! ```

use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_core::{estimate_poa, market_poa_bound};

fn small_market(seed: u64) -> Market {
    // Deterministic pseudo-random small market (≤ 10 providers so the
    // exact optimum is computable).
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 1000) as f64 / 1000.0
    };
    let mut b = Market::builder();
    for _ in 0..3 {
        b = b.cloudlet(CloudletSpec::new(
            20.0 + 10.0 * next(),
            80.0 + 40.0 * next(),
            0.2 + 0.8 * next(),
            0.2 + 0.8 * next(),
        ));
    }
    for _ in 0..8 {
        b = b.provider(ProviderSpec::new(
            1.0 + 2.0 * next(),
            4.0 + 6.0 * next(),
            0.5 + next(),
            6.0 + 6.0 * next(),
        ));
    }
    b.uniform_update_cost(0.2).build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Empirical PoA (worst Nash / optimum) over random small markets\n");
    println!(
        "{:>6}{:>14}{:>14}{:>12}{:>12}{:>16}",
        "seed", "worst NE", "optimum", "PoA", "PoS", "Theorem 1 (ξ=0)"
    );
    let mut max_poa: f64 = 1.0;
    for seed in 1..=8u64 {
        let market = small_market(seed);
        let est = estimate_poa(&market, 40, seed)?;
        let bound = market_poa_bound(&market, 0.0);
        max_poa = max_poa.max(est.poa);
        println!(
            "{:>6}{:>14.3}{:>14.3}{:>12.4}{:>12.4}{:>16.1}",
            seed, est.worst_nash_cost, est.optimum_cost, est.poa, est.pos, bound
        );
        assert!(est.poa <= bound, "Theorem 1 violated!");
    }
    println!("\nLargest empirical PoA observed: {max_poa:.4}");
    println!("Affine congestion games stay far below the worst-case bound —");
    println!("the Stackelberg coordination mainly buys stability, not raw cost.");

    println!("\nTheorem 1 bound as coordination grows (δ=κ=2):");
    for xi in [0.0, 0.25, 0.5, 0.75, 0.9] {
        println!(
            "  ξ = {xi:.2} -> PoA ≤ {:.2}",
            mec_core::best_poa_bound(2.0, 2.0, xi)
        );
    }
    Ok(())
}
