//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `proptest!`, `Strategy` with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `Just`, `proptest::collection::vec`,
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!` —
//! as plain seeded random testing. There is **no shrinking**: a failing
//! case reports the case index and seed instead of a minimized input. The
//! failure message includes the inputs (all strategies require
//! `Debug`-able values in upstream proptest too, via `fmt::Debug` bounds
//! on the macro side).
//!
//! Determinism: each `proptest!`-generated test derives its RNG seed from
//! the test function's name, so runs are reproducible and independent of
//! test execution order.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

pub mod prelude {
    //! Everything the `proptest::prelude::*` glob is expected to bring in.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Stable 64-bit FNV-1a hash, used to derive per-test RNG seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests over strategy-drawn inputs.
///
/// Supported grammar (the subset upstream proptest documents and this
/// workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0.0..1.0f64, v in proptest::collection::vec(0u32..9, 3..7)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let run = std::panic::AssertUnwindSafe(|| { $body });
                    if let Err(payload) = std::panic::catch_unwind(run) {
                        eprintln!(
                            "proptest case {case}/{} failed (seed {seed:#x}): {inputs}",
                            cfg.cases
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 1.5..9.5f64, n in 2usize..7) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((2..7).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u64..100, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_threads_dependent_values(
            pair in (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(0.0..1.0f64, n)))
        ) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (0.0..1.0f64, 0usize..100).prop_map(|(a, b)| (a, b));
        let a = strat.generate(&mut TestRng::for_case(7, 3));
        let b = strat.generate(&mut TestRng::for_case(7, 3));
        assert_eq!(a, b);
        let c = strat.generate(&mut TestRng::for_case(7, 4));
        assert_ne!(a, c);
    }
}
