//! Collection strategies (`proptest::collection` stand-in).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// Length specification for [`vec()`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy generating vectors of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.random_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
