//! Test-runner configuration and the RNG handed to strategies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many random cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to generate (upstream default: 256).
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// RNG handed to strategies; deterministic per `(test, case)` pair.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one case of one test: mixes the test seed with the case id.
    pub fn for_case(test_seed: u64, case: u32) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(
                test_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
