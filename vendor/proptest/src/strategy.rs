//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::RngExt;

/// Generates random values of an associated type from an RNG.
///
/// Mirrors proptest's `Strategy` but produces values directly instead of
/// shrinkable value trees.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
