//! Offline stand-in for `loom`.
//!
//! The real loom exhaustively model-checks every interleaving of a
//! concurrent closure by running it under a controlled scheduler. This
//! stand-in keeps loom's API shape ([`model`], [`sync::atomic`],
//! [`thread`]) but replaces exhaustive exploration with **seeded schedule
//! perturbation**: [`model`] re-runs the closure many times, and every
//! loom-wrapped atomic operation decides pseudo-randomly — from a
//! per-iteration seed mixed with the thread identity — whether to yield
//! the OS scheduler first. Distinct seeds push the threads through
//! different interleavings, so races of the "two workers claim the same
//! index" kind get many chances to fire while the run stays fully
//! deterministic in its *verdicts* (assertions inside the closure).
//!
//! This is a stress model, not a proof: it explores a random sample of
//! schedules, where real loom explores all of them. It needs no
//! dependencies, runs on stable, and slots into the same
//! `--features loom-model` build the CI concurrency job drives (alongside
//! ThreadSanitizer, which watches the same tests for data races at the
//! memory-access level).
//!
//! Iteration count: 64 by default, overridable via the
//! `LOOM_MODEL_ITERS` environment variable.

use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};

static SCHEDULE_SEED: AtomicU64 = AtomicU64::new(0);

/// Runs `f` repeatedly under perturbed schedules (see the crate docs).
///
/// # Panics
///
/// Propagates any panic from `f` (a failed assertion aborts the model
/// run, like loom).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_MODEL_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    for i in 0..iters {
        // SplitMix64-style spread so consecutive iterations land far apart.
        SCHEDULE_SEED.store(
            (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            StdOrdering::SeqCst,
        );
        f();
    }
}

/// Pseudo-randomly yields the OS scheduler, driven by the current model
/// iteration's seed mixed with the calling thread's identity.
fn maybe_yield() {
    use std::cell::Cell;
    use std::hash::{Hash, Hasher};
    thread_local! {
        static RNG: Cell<u64> = const { Cell::new(0) };
    }
    RNG.with(|r| {
        let mut x = r.get();
        if x == 0 {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            x = (SCHEDULE_SEED.load(StdOrdering::Relaxed) ^ h.finish()) | 1;
        }
        // xorshift64
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        r.set(x);
        if x & 0b11 == 0 {
            std::thread::yield_now();
        }
    });
}

/// Explicit schedule-perturbation point for code under test.
///
/// The wrapped atomics inject yields at every loom-visible operation,
/// but a protocol whose hazard window sits *between* two plain-std
/// operations (a buffer push and the flag swap that publishes it, say)
/// needs a hook the instrumented crate can call at exactly that spot.
/// Compiles to this pseudo-random yield under `--features loom-model`;
/// instrumented crates gate their call sites so production builds carry
/// no trace of it.
pub fn fuzz_yield() {
    maybe_yield();
}

/// Loom-shaped synchronization primitives.
pub mod sync {
    /// Schedule-perturbing atomics (wrap `std::sync::atomic`).
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// `std::sync::atomic::AtomicUsize` with yield injection around
        /// every operation.
        #[derive(Debug, Default)]
        pub struct AtomicUsize {
            inner: std::sync::atomic::AtomicUsize,
        }

        impl AtomicUsize {
            /// Creates a new atomic.
            pub fn new(v: usize) -> Self {
                AtomicUsize {
                    inner: std::sync::atomic::AtomicUsize::new(v),
                }
            }

            /// Loads the value, possibly yielding first.
            pub fn load(&self, order: Ordering) -> usize {
                super::super::maybe_yield();
                self.inner.load(order)
            }

            /// Stores a value, possibly yielding first.
            pub fn store(&self, v: usize, order: Ordering) {
                super::super::maybe_yield();
                self.inner.store(v, order);
            }

            /// Atomic add; yields around the RMW so competing threads get
            /// a chance to interleave on either side.
            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                super::super::maybe_yield();
                let out = self.inner.fetch_add(v, order);
                super::super::maybe_yield();
                out
            }

            /// Atomic compare-exchange with yield injection.
            ///
            /// # Errors
            ///
            /// Returns the actual value if it differed from `current`.
            pub fn compare_exchange(
                &self,
                current: usize,
                new: usize,
                success: Ordering,
                failure: Ordering,
            ) -> Result<usize, usize> {
                super::super::maybe_yield();
                let out = self.inner.compare_exchange(current, new, success, failure);
                super::super::maybe_yield();
                out
            }

            /// Consumes the atomic and returns the value.
            pub fn into_inner(self) -> usize {
                self.inner.into_inner()
            }
        }

        /// `std::sync::atomic::AtomicBool` with yield injection around
        /// every operation — enough surface for flag/latch protocols
        /// like the serve event loop's wake-dedup bit.
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Creates a new atomic flag.
            pub fn new(v: bool) -> Self {
                AtomicBool {
                    inner: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Loads the flag, possibly yielding first.
            pub fn load(&self, order: Ordering) -> bool {
                super::super::maybe_yield();
                self.inner.load(order)
            }

            /// Stores the flag, possibly yielding first.
            pub fn store(&self, v: bool, order: Ordering) {
                super::super::maybe_yield();
                self.inner.store(v, order);
            }

            /// Atomic swap; yields around the RMW so competing threads
            /// get a chance to interleave on either side.
            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                super::super::maybe_yield();
                let out = self.inner.swap(v, order);
                super::super::maybe_yield();
                out
            }

            /// Consumes the atomic and returns the value.
            pub fn into_inner(self) -> bool {
                self.inner.into_inner()
            }
        }
    }
}

/// Loom-shaped thread API.
pub mod thread {
    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread; propagates its panic payload.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Spawns a thread that participates in the perturbed schedule.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle {
            inner: std::thread::spawn(move || {
                super::maybe_yield();
                f()
            }),
        }
    }

    /// Yields the scheduler (loom's explicit preemption point).
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn swap_claims_a_flag_exactly_once_across_threads() {
        super::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let wins = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let f = Arc::clone(&flag);
                    let w = Arc::clone(&wins);
                    super::thread::spawn(move || {
                        super::fuzz_yield();
                        if !f.swap(true, Ordering::AcqRel) {
                            w.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(wins.load(Ordering::SeqCst), 1);
        });
    }

    #[test]
    fn model_runs_many_iterations() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        super::model(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert!(count.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn fetch_add_is_still_atomic_under_perturbation() {
        super::model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = counter.clone();
                    super::thread::spawn(move || {
                        for _ in 0..25 {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 100);
        });
    }
}
