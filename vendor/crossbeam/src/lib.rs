//! Offline stand-in for `crossbeam`.
//!
//! Only the `crossbeam::thread::scope` API the workspace uses is provided,
//! implemented on `std::thread::scope` (stable since Rust 1.63, which
//! postdates crossbeam's scoped threads and made them redundant upstream
//! too). Semantics match the call sites' expectations: spawned closures
//! receive a `&Scope` so nested spawns work, handles `join()` to a
//! `thread::Result`, and a panic that escapes the scope closure itself
//! propagates as a panic rather than an `Err`.

pub mod thread {
    use std::any::Any;

    /// Result of joining a scoped thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope for spawning borrowing threads (wraps [`std::thread::Scope`]).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its value, or the panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// again so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope; all threads spawned in it are joined before
    /// this returns. Mirrors `crossbeam::thread::scope`'s signature — with
    /// `std::thread::scope` underneath the closure's own panic propagates
    /// directly, so the `Result` here is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_borrows_and_joins() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn join_surfaces_child_panic() {
        let caught = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("child died") });
            h.join()
        })
        .unwrap();
        assert!(caught.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
