//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types and
//! uses them as trait bounds (e.g. `T: Serialize + DeserializeOwned` static
//! assertions); nothing actually serializes bytes today — result tables are
//! plain text and BENCH json files are written by hand. This crate keeps
//! those bounds compiling without network access: the traits are markers
//! and the derives (re-exported from `serde_derive`) emit empty impls.
//!
//! If a future PR needs real serialization, replace this vendored crate
//! with upstream serde; every `#[derive(serde::Serialize)]` in the tree is
//! already written against the upstream-compatible paths.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Deserializer-side helpers (`serde::de`).
pub mod de {
    /// Marker standing in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
