//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The real derives generate visitor plumbing; here the traits are markers,
//! so the derives only have to name the type (including its generics, if
//! any) and emit an empty impl. Parsing is done directly on the token
//! stream — no `syn`/`quote`, which keeps the crate dependency-free.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The type name and its generic parameter list (identifiers only).
struct Target {
    name: String,
    /// Generic parameter names, e.g. `["T", "U"]` for `struct Foo<T, U: Ord>`.
    generics: Vec<String>,
}

/// Extracts the deriving type's name and generic parameters.
fn parse_target(input: TokenStream) -> Target {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`# [...]`), visibility and doc comments until the
    // `struct`/`enum`/`union` keyword.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after struct/enum keyword, got {other:?}"),
    };

    // Optional `<...>` parameter list: collect parameter names, which are
    // the identifiers that directly follow `<` or `,` at depth 1 (skipping
    // lifetimes and const params' `const` keyword).
    let mut generics = Vec::new();
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        let mut at_param_start = true;
        let mut in_bound = false;
        while depth > 0 {
            match tokens.next().expect("unclosed generic parameter list") {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => {
                        at_param_start = true;
                        in_bound = false;
                    }
                    ':' if depth == 1 => in_bound = true,
                    '\'' => {
                        // Lifetime tick: the next ident is the lifetime
                        // name, also a valid generic parameter.
                    }
                    _ => {}
                },
                TokenTree::Ident(id) if depth == 1 && at_param_start && !in_bound => {
                    let s = id.to_string();
                    if s == "const" {
                        continue; // next ident is the const param name
                    }
                    generics.push(s);
                    at_param_start = false;
                }
                _ => {}
            }
        }
    }
    Target { name, generics }
}

fn impl_for(target: &Target, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let mut params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        params.push(lt.to_string());
    }
    params.extend(target.generics.iter().cloned());
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let ty_generics = if target.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", target.generics.join(", "))
    };
    format!(
        "impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}",
        name = target.name
    )
    .parse()
    .expect("generated impl must tokenize")
}

/// Emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let target = parse_target(strip_outer_groups(input));
    impl_for(&target, "::serde::Serialize", None)
}

/// Emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = parse_target(strip_outer_groups(input));
    impl_for(&target, "::serde::Deserialize<'de>", Some("'de"))
}

/// Flattens `None`-delimited groups the compiler may wrap items in.
fn strip_outer_groups(input: TokenStream) -> TokenStream {
    input
        .into_iter()
        .flat_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::None => {
                g.stream().into_iter().collect::<Vec<_>>()
            }
            other => vec![other],
        })
        .collect()
}
