//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API surface the workspace actually uses with the
//! same names as `rand` 0.10: [`rngs::StdRng`], [`SeedableRng`], the
//! [`Rng`]/[`RngExt`] traits with `random_range`/`random_bool`, and
//! [`seq::SliceRandom`] with `shuffle`/`choose`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the experiment harness requires
//! (reproducible sweeps), and statistically strong enough for workload
//! generation. It is NOT the same stream as upstream `rand`'s `StdRng`, so
//! seeded outputs differ from runs against the real crate; within this
//! repository they are stable.

pub mod rngs;
pub mod seq;

/// A source of random `u64`s.
pub trait Rng {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply reduction (bias < 2^-64, irrelevant here).
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform draw from `range` (`a..b` or `a..=b`, integer or float).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..=4usize);
            assert!(w <= 4);
            let f = rng.random_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }
}
