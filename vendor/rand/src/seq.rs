//! Slice sampling helpers (`rand::seq` stand-in).

use crate::{Rng, RngExt};

/// Shuffling and choosing on slices.
pub trait SliceRandom {
    /// Element type of the collection.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }

    #[test]
    fn choose_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
