//! Offline stand-in for a readiness-polling crate.
//!
//! The `mec-serve` event loop needs exactly one OS facility that `std`
//! does not expose: *readiness multiplexing* — "block until any of these
//! sockets can make progress". This crate provides it as a thin, safe
//! wrapper over the POSIX `poll(2)` syscall, bound directly against the
//! C library symbol that `std` already links on every unix target (no
//! `libc` crate, no build script, no registry access).
//!
//! The API is the syscall, dressed minimally:
//!
//! ```ignore
//! let mut fds = [PollFd::new(listener_fd, POLLIN), PollFd::new(conn_fd, POLLIN | POLLOUT)];
//! let ready = polling::poll(&mut fds, Some(Duration::from_millis(50)))?;
//! if fds[1].readable() { /* read until WouldBlock */ }
//! ```
//!
//! Level-triggered semantics, exactly as `poll(2)` defines them: a fd
//! stays ready until drained, so a loop that processes every readiness
//! report until `WouldBlock` never misses an edge. `EINTR` is retried
//! internally (with the timeout re-armed against a deadline), so callers
//! never observe spurious interrupted-syscall errors.
//!
//! This is the single home of `unsafe` in the workspace; the event loop
//! in `crates/serve` stays `#![forbid(unsafe_code)]` by depending on it.

#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::time::{Duration, Instant};

/// Readable data is available (or a peer closed with data pending).
pub const POLLIN: i16 = 0x001;
/// Writing now will not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Fd not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Watches `fd` for the `events` mask (`POLLIN` / `POLLOUT` / both).
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The watched file descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Replaces the interest mask for the next [`poll`] call.
    pub fn set_events(&mut self, events: i16) {
        self.events = events;
    }

    /// The readiness mask reported by the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// `true` if the fd is readable — or in an error/hangup state, which
    /// a reader must also observe (the subsequent `read` reports it).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// `true` if the fd is writable — or errored, which a writer must
    /// observe the same way.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

mod sys {
    // Bound against the libc `poll` symbol std already links; `nfds_t` is
    // `unsigned long` on every supported unix.
    extern "C" {
        pub fn poll(fds: *mut super::PollFd, nfds: std::ffi::c_ulong, timeout: i32) -> i32;
    }
}

/// Blocks until at least one fd in `fds` is ready, the timeout elapses
/// (`Ok(0)`), or an error occurs. `None` waits forever. Retries `EINTR`
/// against a fixed deadline, so a signal never surfaces as an error.
///
/// # Errors
///
/// Any `poll(2)` failure other than `EINTR` (e.g. `ENOMEM`), as
/// [`io::Error::last_os_error`].
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let deadline = timeout.map(|t| Instant::now() + t);
    loop {
        let wait_ms: i32 = match deadline {
            None => -1,
            Some(d) => {
                let left = d.saturating_duration_since(Instant::now());
                // Round up so a 100µs remainder does not spin at 0ms.
                i32::try_from(left.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX)
                    + i32::from(left.subsec_nanos() % 1_000_000 != 0)
            }
        };
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel writes only the
        // `revents` field of the first `fds.len()` entries.
        let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, wait_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Ok(0);
            }
            continue;
        }
        return Err(err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn timeout_with_nothing_ready_returns_zero() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn readable_after_peer_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(served.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        let mut buf = [0u8; 1];
        served.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
    }

    #[test]
    fn writable_socket_reports_pollout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _served = listener.accept().unwrap();
        let mut fds = [PollFd::new(client.as_raw_fd(), POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn hangup_reports_readable_so_readers_observe_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (served, _) = listener.accept().unwrap();
        drop(client);
        let mut fds = [PollFd::new(served.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "revents {:#x}", fds[0].revents());
    }
}
