//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a small wall-clock harness: per benchmark it warms up, picks
//! an iteration count targeting a fixed measurement window, runs
//! `sample_size` samples, and prints min/mean/median nanoseconds per
//! iteration. No statistics beyond that, no HTML reports, no comparison
//! against saved baselines.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE_TARGET: Duration = Duration::from_millis(400);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 20, |b| f(b));
        self
    }
}

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` (no extra input).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Either a `&str` or a [`BenchmarkId`] (what group `bench_function` takes).
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warm-up and iteration-count calibration: run single iterations until
    // the warm-up window is spent, tracking the observed cost.
    let mut one = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    // Per-iteration cost estimate: minimum over the warm-up observations.
    // Seeded from the first run — a constant seed would pin the `min` and
    // mis-calibrate `iters` for anything slower than the seed.
    let mut per_iter = Duration::MAX;
    let mut warm_runs = 0u32;
    while warm_start.elapsed() < WARMUP || warm_runs == 0 {
        f(&mut one);
        per_iter = per_iter.min(one.elapsed.max(Duration::from_nanos(1)));
        warm_runs += 1;
        if one.elapsed * 2 > WARMUP {
            break; // expensive benchmark: stop warming early
        }
    }

    let budget_per_sample = MEASURE_TARGET / samples.max(1) as u32;
    let iters =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut results_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        results_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    results_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = results_ns.first().copied().unwrap_or(0.0);
    let median = results_ns[results_ns.len() / 2];
    let mean = results_ns.iter().sum::<f64>() / results_ns.len() as f64;
    println!(
        "bench {label}: min {min:.0} ns/iter, median {median:.0} ns/iter, mean {mean:.0} ns/iter ({samples} samples x {iters} iters)"
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
