//! `cargo xtask` — repository automation.
//!
//! ```text
//! cargo xtask lint                  three-rule lint pass (exit 1 on findings)
//! cargo xtask lint --self-test      prove the lint rules flag seeded violations
//! cargo xtask analyze               full token-aware analysis: concurrency,
//!                                   unsafe audit, growth, probe registry + lint
//! cargo xtask analyze --self-test   run every rule against its seeded fixtures
//! cargo xtask tailgate <report.json> [--op join] [--max-ratio 20]
//!                                   fail if an op's p99/p50 exceeds the bound
//! cargo xtask tailgate scale <base.json> <sharded.json> [--min-ratio 2]
//!                                   fail if the sharded drain bench is not
//!                                   at least min-ratio times the base
//! cargo xtask tailgate scenarios <bench.json>
//!                                   fail if the game placement's social cost
//!                                   exceeds any eviction baseline's on any
//!                                   trace of the scenarios bench artifact
//! cargo xtask metrics-doc           regenerate docs/METRICS.md from the
//!                                   probe registry (obsreport --catalog)
//! ```
//!
//! See [`analyze`] for the engine and the rule registry, [`lint`] for
//! the legacy three-rule subset and the `// lint: allow(<rule>)` escape
//! hatch, and [`tailgate`] for the tail-latency gate CI applies to the
//! marketload smoke report.

#![forbid(unsafe_code)]

mod analyze;
mod lint;
mod tailgate;

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(args.iter().any(|a| a == "--self-test")),
        Some("analyze") => cmd_analyze(args.iter().any(|a| a == "--self-test")),
        Some("tailgate") => cmd_tailgate(&args[1..]),
        Some("metrics-doc") => cmd_metrics_doc(),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--self-test] | analyze [--self-test] | tailgate <report.json> [--op OP] [--max-ratio N] | metrics-doc>"
            );
            std::process::exit(2);
        }
    }
}

fn cmd_tailgate(args: &[String]) {
    if args.first().map(String::as_str) == Some("scale") {
        return cmd_tailgate_scale(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("scenarios") {
        let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
            eprintln!("usage: cargo xtask tailgate scenarios <bench.json>");
            std::process::exit(2);
        };
        std::process::exit(tailgate::run_scenarios(&PathBuf::from(path)));
    }
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: cargo xtask tailgate <report.json> [--op OP] [--max-ratio N]");
        eprintln!("       cargo xtask tailgate scale <base.json> <sharded.json> [--min-ratio N]");
        eprintln!("       cargo xtask tailgate scenarios <bench.json>");
        std::process::exit(2);
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let op = flag("--op").unwrap_or_else(|| "join".to_string());
    let max_ratio: f64 = match flag("--max-ratio").as_deref().unwrap_or("20").parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid --max-ratio (expected a number)");
            std::process::exit(2);
        }
    };
    std::process::exit(tailgate::run(&PathBuf::from(path), &op, max_ratio));
}

fn cmd_tailgate_scale(args: &[String]) {
    let mut paths = args.iter().filter(|a| !a.starts_with("--"));
    let (Some(base), Some(sharded)) = (paths.next(), paths.next()) else {
        eprintln!("usage: cargo xtask tailgate scale <base.json> <sharded.json> [--min-ratio N]");
        std::process::exit(2);
    };
    let min_ratio: f64 = match args
        .iter()
        .position(|a| a == "--min-ratio")
        .and_then(|i| args.get(i + 1))
        .map_or("2", String::as_str)
        .parse()
    {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid --min-ratio (expected a number)");
            std::process::exit(2);
        }
    };
    std::process::exit(tailgate::run_scale(
        &PathBuf::from(base),
        &PathBuf::from(sharded),
        min_ratio,
    ));
}

/// Regenerates `docs/METRICS.md` from `mec_obs::probes::REGISTRY` by
/// shelling out to `obsreport --catalog` (the registry lives in mec-obs;
/// xtask itself stays dependency-free).
fn cmd_metrics_doc() {
    let root = repo_root();
    let out = std::process::Command::new(env!("CARGO"))
        .args([
            "run",
            "-q",
            "-p",
            "mec-obs",
            "--bin",
            "obsreport",
            "--",
            "--catalog",
        ])
        .current_dir(&root)
        .output();
    let out = match out {
        Ok(o) if o.status.success() && !o.stdout.is_empty() => o.stdout,
        Ok(o) => {
            eprintln!(
                "xtask metrics-doc: obsreport --catalog failed:\n{}",
                String::from_utf8_lossy(&o.stderr)
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("xtask metrics-doc: cannot run cargo: {e}");
            std::process::exit(1);
        }
    };
    let path = root.join("docs/METRICS.md");
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("xtask metrics-doc: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("xtask metrics-doc: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "xtask metrics-doc: wrote {} ({} bytes)",
        path.display(),
        out.len()
    );
}

fn repo_root() -> PathBuf {
    // xtask lives at <repo>/xtask, so the parent of its manifest dir is
    // the repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level below the repo root")
        .to_path_buf()
}

fn cmd_lint(self_test: bool) {
    if self_test {
        match lint::self_test() {
            Ok(()) => println!("xtask lint self-test: all seeded violations flagged"),
            Err(e) => {
                eprintln!("xtask lint self-test FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let root = repo_root();
    match lint::lint_tree(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!(
                "xtask lint: {} finding(s). Fix them or suppress a justified \
                 site with `// lint: allow(<rule>)`.",
                findings.len()
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("xtask lint: I/O error: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_analyze(self_test: bool) {
    if self_test {
        match analyze::self_test() {
            Ok(()) => {
                println!("xtask analyze self-test: every rule fires on its seeded fixtures")
            }
            Err(e) => {
                eprintln!("xtask analyze self-test FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let root = repo_root();
    let ws = match analyze::Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xtask analyze: I/O error loading workspace: {e}");
            std::process::exit(1);
        }
    };
    let findings = analyze::run_all(&ws);
    if findings.is_empty() {
        println!(
            "xtask analyze: clean ({} files, {} rules)",
            ws.files.len(),
            analyze::registry().len()
        );
        return;
    }
    for f in &findings {
        eprintln!("{f}");
    }
    eprintln!(
        "xtask analyze: {} finding(s). Fix them or suppress a justified \
         site with `// lint: allow(<rule>)`.",
        findings.len()
    );
    std::process::exit(1);
}
