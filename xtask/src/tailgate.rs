//! `cargo xtask tailgate` — performance gates over marketload reports.
//!
//! Three modes:
//!
//! * **tail gate** (default): reads the flat JSON emitted by
//!   `marketload --out` and fails when an op's tail amplification
//!   (`<op>_p99_p50`, i.e. p99 latency over p50) exceeds a bound. CI
//!   runs this against the smoke run's report so a regression that
//!   re-introduces a convoy — one slow client or one long maintenance
//!   sweep stalling everyone's tail — fails the build instead of only
//!   skewing a checked-in benchmark number months later.
//! * **scale gate** (`tailgate scale <base.json> <sharded.json>`):
//!   compares two `marketload --direct` drain reports and fails when
//!   the sharded run's `write_ops_per_sec` is less than `--min-ratio`
//!   (default 2.0) times the base run's. CI runs this on the 1-shard vs
//!   4-shard drain bench, so a change that silently serializes the
//!   shards — a global lock, a chatty cross-shard protocol — fails the
//!   build even on a single-core runner.
//! * **scenario gate** (`tailgate scenarios <bench.json>`): reads the
//!   checked-in `BENCH_scenarios.json` (the `sweepbench scenarios`
//!   artifact) and fails unless, on every dynamic trace, the game
//!   placement's social cost is ≤ each eviction baseline's (LRU, LFU,
//!   GDSF). A vacuous comparison — missing traces, missing policies,
//!   zero-request rows — fails loudly, matching the scale gate.
//!
//! The parser is deliberately minimal: each report is one flat JSON
//! object written by `LoadReport::to_json` / `DrainReport::to_json`, so
//! scanning for `"key":` and reading the number after it is exact, not
//! heuristic. xtask stays dependency-free.

use std::path::Path;

/// Reads `"<key>": <number>` out of a flat JSON object.
fn extract_number(json: &str, key: &str) -> Result<f64, String> {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .ok_or_else(|| format!("no \"{key}\" field in report"))?;
    let rest = &json[at + needle.len()..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated value for \"{key}\""))?;
    let raw = rest[..end].trim();
    raw.parse::<f64>()
        .map_err(|_| format!("\"{key}\" is not a number: {raw:?}"))
}

/// The gate verdict for one op.
pub struct Verdict {
    /// Which op was gated (`join`, `leave`, `update`, `query`).
    pub op: String,
    /// Measured p99/p50 amplification.
    pub ratio: f64,
    /// Requests of this op in the run (a gate over 0 ops is vacuous and
    /// fails loudly instead of passing silently).
    pub count: u64,
    /// Bound the ratio was checked against.
    pub max_ratio: f64,
}

impl Verdict {
    /// Whether the run passes this gate.
    pub fn pass(&self) -> bool {
        self.count > 0 && self.ratio <= self.max_ratio
    }
}

/// Evaluates the gate for `op` against a report's JSON text.
///
/// # Errors
///
/// Fails when the report lacks the op's fields or they do not parse.
pub fn check(json: &str, op: &str, max_ratio: f64) -> Result<Verdict, String> {
    let ratio = extract_number(json, &format!("{op}_p99_p50"))?;
    let count = extract_number(json, &format!("{op}_count"))? as u64;
    Ok(Verdict {
        op: op.to_string(),
        ratio,
        count,
        max_ratio,
    })
}

/// Runs the gate against a report file; returns the process exit code.
pub fn run(path: &Path, op: &str, max_ratio: f64) -> i32 {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tailgate: cannot read {}: {e}", path.display());
            return 1;
        }
    };
    match check(&json, op, max_ratio) {
        Ok(v) => {
            println!(
                "tailgate: {} p99/p50 = {:.2} over {} ops (bound {:.1})",
                v.op, v.ratio, v.count, v.max_ratio
            );
            if v.pass() {
                0
            } else if v.count == 0 {
                eprintln!(
                    "tailgate: FAIL — no {} ops in the report, gate is vacuous",
                    v.op
                );
                1
            } else {
                eprintln!(
                    "tailgate: FAIL — {} tail amplification {:.2} exceeds {:.1}",
                    v.op, v.ratio, v.max_ratio
                );
                1
            }
        }
        Err(e) => {
            eprintln!("tailgate: {e}");
            1
        }
    }
}

/// The scale-gate verdict comparing two drain reports.
pub struct ScaleVerdict {
    /// Shard counts of the (base, sharded) reports.
    pub shards: (u64, u64),
    /// Write throughputs of the (base, sharded) reports.
    pub ops: (f64, f64),
    /// Required sharded/base throughput ratio.
    pub min_ratio: f64,
}

impl ScaleVerdict {
    /// Measured sharded/base throughput ratio.
    pub fn ratio(&self) -> f64 {
        if self.ops.0 > 0.0 {
            self.ops.1 / self.ops.0
        } else {
            0.0
        }
    }

    /// Whether the pair passes the gate. A degenerate comparison — zero
    /// base throughput, or a "sharded" report with no more shards than
    /// the base — fails loudly instead of passing vacuously.
    pub fn pass(&self) -> bool {
        self.ops.0 > 0.0 && self.shards.1 > self.shards.0 && self.ratio() >= self.min_ratio
    }
}

/// Evaluates the scale gate over two drain-report JSON texts.
///
/// # Errors
///
/// Fails when either report lacks `shards`/`write_ops_per_sec` or they
/// do not parse.
pub fn check_scale(base: &str, sharded: &str, min_ratio: f64) -> Result<ScaleVerdict, String> {
    Ok(ScaleVerdict {
        shards: (
            extract_number(base, "shards")? as u64,
            extract_number(sharded, "shards")? as u64,
        ),
        ops: (
            extract_number(base, "write_ops_per_sec")?,
            extract_number(sharded, "write_ops_per_sec")?,
        ),
        min_ratio,
    })
}

/// Runs the scale gate against two report files; returns the exit code.
pub fn run_scale(base: &Path, sharded: &Path, min_ratio: f64) -> i32 {
    let read = |p: &Path| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    let verdict = read(base)
        .and_then(|b| read(sharded).map(|s| (b, s)))
        .and_then(|(b, s)| check_scale(&b, &s, min_ratio));
    match verdict {
        Ok(v) => {
            println!(
                "tailgate scale: {} shard(s) at {:.0} ops/s vs {} shard(s) at {:.0} ops/s — {:.2}x (need {:.1}x)",
                v.shards.0,
                v.ops.0,
                v.shards.1,
                v.ops.1,
                v.ratio(),
                v.min_ratio
            );
            if v.pass() {
                0
            } else if v.shards.1 <= v.shards.0 {
                eprintln!(
                    "tailgate scale: FAIL — sharded report has {} shard(s), base has {}; gate is vacuous",
                    v.shards.1, v.shards.0
                );
                1
            } else {
                eprintln!(
                    "tailgate scale: FAIL — sharded throughput is only {:.2}x the base (need {:.1}x)",
                    v.ratio(),
                    v.min_ratio
                );
                1
            }
        }
        Err(e) => {
            eprintln!("tailgate scale: {e}");
            1
        }
    }
}

/// One parsed row of the `sweepbench scenarios` artifact.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Trace label (`zipf_diurnal`, `flash_crowd`, ...).
    pub trace: String,
    /// Policy name (`game`, `lru`, `lfu`, `gdsf`).
    pub policy: String,
    /// Requests replayed in this cell.
    pub requests: u64,
    /// Mean per-epoch social cost (Eq. 6) of this cell.
    pub social_cost: f64,
}

/// Reads `"<key>": "<string>"` out of a flat JSON object.
fn extract_string(json: &str, key: &str) -> Result<String, String> {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .ok_or_else(|| format!("no \"{key}\" field in row"))?;
    let rest = json[at + needle.len()..].trim_start();
    let inner = rest
        .strip_prefix('"')
        .ok_or_else(|| format!("\"{key}\" is not a string"))?;
    let end = inner
        .find('"')
        .ok_or_else(|| format!("unterminated string for \"{key}\""))?;
    Ok(inner[..end].to_string())
}

/// Splits the artifact's `"results": [ {...}, {...} ]` array into its
/// row objects. Rows are flat (no nested braces), so scanning brace
/// pairs after the `"results"` key is exact, matching the shape
/// `sweepbench scenarios` writes.
fn scenario_rows(json: &str) -> Result<Vec<ScenarioRow>, String> {
    let at = json
        .find("\"results\"")
        .ok_or("no \"results\" array in bench file")?;
    let mut rest = &json[at..];
    let mut rows = Vec::new();
    while let Some(open) = rest.find('{') {
        let body = &rest[open + 1..];
        let close = body.find('}').ok_or("unterminated row object")?;
        let row = &body[..close];
        rows.push(ScenarioRow {
            trace: extract_string(row, "trace")?,
            policy: extract_string(row, "policy")?,
            requests: extract_number(row, "requests")? as u64,
            social_cost: extract_number(row, "social_cost")?,
        });
        rest = &body[close + 1..];
    }
    Ok(rows)
}

/// The eviction baselines every trace must be compared against.
const SCENARIO_BASELINES: [&str; 3] = ["lru", "lfu", "gdsf"];

/// Evaluates the scenario gate over the bench-file JSON text. Returns
/// the list of human-readable verdict lines (one per trace × baseline)
/// on success.
///
/// # Errors
///
/// Fails — loudly, never vacuously — when the file has fewer than 3
/// traces, any trace lacks the `game` row or a baseline row, any row
/// replayed zero requests, or the game's social cost exceeds any
/// baseline's on any trace.
pub fn check_scenarios(json: &str) -> Result<Vec<String>, String> {
    let rows = scenario_rows(json)?;
    let mut traces: Vec<&str> = Vec::new();
    for r in &rows {
        if !traces.contains(&r.trace.as_str()) {
            traces.push(&r.trace);
        }
        if r.requests == 0 {
            return Err(format!(
                "row {}/{} replayed 0 requests — comparison is vacuous",
                r.trace, r.policy
            ));
        }
    }
    if traces.len() < 3 {
        return Err(format!(
            "only {} trace(s) in the bench file, need >= 3 dynamic traces",
            traces.len()
        ));
    }
    let cell = |trace: &str, policy: &str| {
        rows.iter()
            .find(|r| r.trace == trace && r.policy == policy)
            .ok_or_else(|| format!("trace {trace} has no \"{policy}\" row"))
    };
    let mut lines = Vec::new();
    for trace in &traces {
        let game = cell(trace, "game")?;
        for baseline in SCENARIO_BASELINES {
            let b = cell(trace, baseline)?;
            if game.social_cost > b.social_cost {
                return Err(format!(
                    "trace {trace}: game social cost {:.3} exceeds {baseline}'s {:.3}",
                    game.social_cost, b.social_cost
                ));
            }
            lines.push(format!(
                "tailgate scenarios: {trace}: game {:.3} <= {baseline} {:.3}",
                game.social_cost, b.social_cost
            ));
        }
    }
    Ok(lines)
}

/// Runs the scenario gate against a bench file; returns the exit code.
pub fn run_scenarios(path: &Path) -> i32 {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tailgate scenarios: cannot read {}: {e}", path.display());
            return 1;
        }
    };
    match check_scenarios(&json) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
            0
        }
        Err(e) => {
            eprintln!("tailgate scenarios: FAIL — {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{"benchmark":"serve","join_count":100,"join_p99_p50":2.5,"query_count":0,"query_p99_p50":0}"#;

    const DRAIN_1: &str = r#"{"benchmark":"serve-drain","shards":1,"commands":100000,"write_ops_per_sec":300000,"s0_writes":100000}"#;
    const DRAIN_4: &str = r#"{"benchmark":"serve-drain","shards":4,"commands":100000,"write_ops_per_sec":750000,"s0_writes":25000}"#;

    #[test]
    fn passes_under_bound_fails_over() {
        let v = check(REPORT, "join", 5.0).unwrap();
        assert!(v.pass());
        let v = check(REPORT, "join", 2.0).unwrap();
        assert!(!v.pass());
    }

    #[test]
    fn zero_ops_is_a_vacuous_gate_and_fails() {
        let v = check(REPORT, "query", 5.0).unwrap();
        assert!(!v.pass());
    }

    #[test]
    fn missing_field_is_an_error() {
        assert!(check(REPORT, "leave", 5.0).is_err());
        assert!(extract_number(REPORT, "nope").is_err());
    }

    #[test]
    fn extracts_trailing_field_before_brace() {
        let json = r#"{"a":1,"b_p99_p50":3.25}"#;
        let x = extract_number(json, "b_p99_p50").unwrap();
        assert!((x - 3.25).abs() < 1e-12);
    }

    #[test]
    fn scale_gate_passes_at_ratio_and_fails_below() {
        let v = check_scale(DRAIN_1, DRAIN_4, 2.0).unwrap();
        assert!((v.ratio() - 2.5).abs() < 1e-12);
        assert!(v.pass());
        let v = check_scale(DRAIN_1, DRAIN_4, 3.0).unwrap();
        assert!(!v.pass(), "2.5x must not pass a 3x bound");
    }

    /// Builds a minimal scenarios artifact from (trace, policy, requests,
    /// social_cost) rows.
    fn scenarios_json(rows: &[(&str, &str, u64, f64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(t, p, req, cost)| {
                format!(
                    "    {{ \"trace\": \"{t}\", \"policy\": \"{p}\", \"requests\": {req}, \
                     \"hits\": 1, \"hit_rate\": 0.5, \"social_cost\": {cost:.6}, \"recaches\": 1 }}"
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"scenario_policy_sweep\",\n  \"seed\": 42,\n  \"results\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        )
    }

    /// A full 3-trace × 4-policy grid where game dominates everywhere.
    fn winning_grid() -> String {
        let mut rows = Vec::new();
        for t in ["zipf_diurnal", "flash_crowd", "popularity_drift"] {
            rows.push((t, "game", 1000, 100.0));
            rows.push((t, "lru", 1000, 300.0));
            rows.push((t, "lfu", 1000, 250.0));
            rows.push((t, "gdsf", 1000, 200.0));
        }
        scenarios_json(&rows)
    }

    #[test]
    fn scenario_gate_passes_when_game_dominates() {
        let lines = check_scenarios(&winning_grid()).unwrap();
        // One verdict line per trace × baseline.
        assert_eq!(lines.len(), 9);
    }

    #[test]
    fn scenario_gate_fails_when_a_baseline_beats_the_game() {
        let json = winning_grid().replace("100.000000", "400.000000");
        let err = check_scenarios(&json).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn scenario_gate_fails_loudly_on_vacuous_comparisons() {
        // Fewer than 3 traces.
        let json = scenarios_json(&[
            ("a", "game", 10, 1.0),
            ("a", "lru", 10, 2.0),
            ("a", "lfu", 10, 2.0),
            ("a", "gdsf", 10, 2.0),
        ]);
        assert!(check_scenarios(&json).unwrap_err().contains(">= 3"));
        // A missing baseline row.
        let json = winning_grid().replace("\"policy\": \"gdsf\"", "\"policy\": \"fifo\"");
        assert!(check_scenarios(&json)
            .unwrap_err()
            .contains("no \"gdsf\" row"));
        // A zero-request row.
        let json = winning_grid().replace("\"requests\": 1000", "\"requests\": 0");
        assert!(check_scenarios(&json).unwrap_err().contains("0 requests"));
        // A missing game row.
        let json = winning_grid().replace("\"policy\": \"game\"", "\"policy\": \"lcf\"");
        assert!(check_scenarios(&json)
            .unwrap_err()
            .contains("no \"game\" row"));
        // No results array at all.
        assert!(check_scenarios("{}").is_err());
    }

    #[test]
    fn scale_gate_rejects_degenerate_comparisons() {
        // Same shard count on both sides: vacuous, fails.
        let v = check_scale(DRAIN_1, DRAIN_1, 0.5).unwrap();
        assert!(!v.pass());
        // Zero base throughput: fails rather than dividing to infinity.
        let zero = r#"{"shards":1,"write_ops_per_sec":0}"#;
        let v = check_scale(zero, DRAIN_4, 2.0).unwrap();
        assert!(!v.pass());
        // Missing fields are errors, not passes.
        assert!(check_scale(REPORT, DRAIN_4, 2.0).is_err());
    }
}
