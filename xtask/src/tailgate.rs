//! `cargo xtask tailgate` — performance gates over marketload reports.
//!
//! Two modes:
//!
//! * **tail gate** (default): reads the flat JSON emitted by
//!   `marketload --out` and fails when an op's tail amplification
//!   (`<op>_p99_p50`, i.e. p99 latency over p50) exceeds a bound. CI
//!   runs this against the smoke run's report so a regression that
//!   re-introduces a convoy — one slow client or one long maintenance
//!   sweep stalling everyone's tail — fails the build instead of only
//!   skewing a checked-in benchmark number months later.
//! * **scale gate** (`tailgate scale <base.json> <sharded.json>`):
//!   compares two `marketload --direct` drain reports and fails when
//!   the sharded run's `write_ops_per_sec` is less than `--min-ratio`
//!   (default 2.0) times the base run's. CI runs this on the 1-shard vs
//!   4-shard drain bench, so a change that silently serializes the
//!   shards — a global lock, a chatty cross-shard protocol — fails the
//!   build even on a single-core runner.
//!
//! The parser is deliberately minimal: each report is one flat JSON
//! object written by `LoadReport::to_json` / `DrainReport::to_json`, so
//! scanning for `"key":` and reading the number after it is exact, not
//! heuristic. xtask stays dependency-free.

use std::path::Path;

/// Reads `"<key>": <number>` out of a flat JSON object.
fn extract_number(json: &str, key: &str) -> Result<f64, String> {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .ok_or_else(|| format!("no \"{key}\" field in report"))?;
    let rest = &json[at + needle.len()..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated value for \"{key}\""))?;
    let raw = rest[..end].trim();
    raw.parse::<f64>()
        .map_err(|_| format!("\"{key}\" is not a number: {raw:?}"))
}

/// The gate verdict for one op.
pub struct Verdict {
    /// Which op was gated (`join`, `leave`, `update`, `query`).
    pub op: String,
    /// Measured p99/p50 amplification.
    pub ratio: f64,
    /// Requests of this op in the run (a gate over 0 ops is vacuous and
    /// fails loudly instead of passing silently).
    pub count: u64,
    /// Bound the ratio was checked against.
    pub max_ratio: f64,
}

impl Verdict {
    /// Whether the run passes this gate.
    pub fn pass(&self) -> bool {
        self.count > 0 && self.ratio <= self.max_ratio
    }
}

/// Evaluates the gate for `op` against a report's JSON text.
///
/// # Errors
///
/// Fails when the report lacks the op's fields or they do not parse.
pub fn check(json: &str, op: &str, max_ratio: f64) -> Result<Verdict, String> {
    let ratio = extract_number(json, &format!("{op}_p99_p50"))?;
    let count = extract_number(json, &format!("{op}_count"))? as u64;
    Ok(Verdict {
        op: op.to_string(),
        ratio,
        count,
        max_ratio,
    })
}

/// Runs the gate against a report file; returns the process exit code.
pub fn run(path: &Path, op: &str, max_ratio: f64) -> i32 {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tailgate: cannot read {}: {e}", path.display());
            return 1;
        }
    };
    match check(&json, op, max_ratio) {
        Ok(v) => {
            println!(
                "tailgate: {} p99/p50 = {:.2} over {} ops (bound {:.1})",
                v.op, v.ratio, v.count, v.max_ratio
            );
            if v.pass() {
                0
            } else if v.count == 0 {
                eprintln!(
                    "tailgate: FAIL — no {} ops in the report, gate is vacuous",
                    v.op
                );
                1
            } else {
                eprintln!(
                    "tailgate: FAIL — {} tail amplification {:.2} exceeds {:.1}",
                    v.op, v.ratio, v.max_ratio
                );
                1
            }
        }
        Err(e) => {
            eprintln!("tailgate: {e}");
            1
        }
    }
}

/// The scale-gate verdict comparing two drain reports.
pub struct ScaleVerdict {
    /// Shard counts of the (base, sharded) reports.
    pub shards: (u64, u64),
    /// Write throughputs of the (base, sharded) reports.
    pub ops: (f64, f64),
    /// Required sharded/base throughput ratio.
    pub min_ratio: f64,
}

impl ScaleVerdict {
    /// Measured sharded/base throughput ratio.
    pub fn ratio(&self) -> f64 {
        if self.ops.0 > 0.0 {
            self.ops.1 / self.ops.0
        } else {
            0.0
        }
    }

    /// Whether the pair passes the gate. A degenerate comparison — zero
    /// base throughput, or a "sharded" report with no more shards than
    /// the base — fails loudly instead of passing vacuously.
    pub fn pass(&self) -> bool {
        self.ops.0 > 0.0 && self.shards.1 > self.shards.0 && self.ratio() >= self.min_ratio
    }
}

/// Evaluates the scale gate over two drain-report JSON texts.
///
/// # Errors
///
/// Fails when either report lacks `shards`/`write_ops_per_sec` or they
/// do not parse.
pub fn check_scale(base: &str, sharded: &str, min_ratio: f64) -> Result<ScaleVerdict, String> {
    Ok(ScaleVerdict {
        shards: (
            extract_number(base, "shards")? as u64,
            extract_number(sharded, "shards")? as u64,
        ),
        ops: (
            extract_number(base, "write_ops_per_sec")?,
            extract_number(sharded, "write_ops_per_sec")?,
        ),
        min_ratio,
    })
}

/// Runs the scale gate against two report files; returns the exit code.
pub fn run_scale(base: &Path, sharded: &Path, min_ratio: f64) -> i32 {
    let read = |p: &Path| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    let verdict = read(base)
        .and_then(|b| read(sharded).map(|s| (b, s)))
        .and_then(|(b, s)| check_scale(&b, &s, min_ratio));
    match verdict {
        Ok(v) => {
            println!(
                "tailgate scale: {} shard(s) at {:.0} ops/s vs {} shard(s) at {:.0} ops/s — {:.2}x (need {:.1}x)",
                v.shards.0,
                v.ops.0,
                v.shards.1,
                v.ops.1,
                v.ratio(),
                v.min_ratio
            );
            if v.pass() {
                0
            } else if v.shards.1 <= v.shards.0 {
                eprintln!(
                    "tailgate scale: FAIL — sharded report has {} shard(s), base has {}; gate is vacuous",
                    v.shards.1, v.shards.0
                );
                1
            } else {
                eprintln!(
                    "tailgate scale: FAIL — sharded throughput is only {:.2}x the base (need {:.1}x)",
                    v.ratio(),
                    v.min_ratio
                );
                1
            }
        }
        Err(e) => {
            eprintln!("tailgate scale: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{"benchmark":"serve","join_count":100,"join_p99_p50":2.5,"query_count":0,"query_p99_p50":0}"#;

    const DRAIN_1: &str = r#"{"benchmark":"serve-drain","shards":1,"commands":100000,"write_ops_per_sec":300000,"s0_writes":100000}"#;
    const DRAIN_4: &str = r#"{"benchmark":"serve-drain","shards":4,"commands":100000,"write_ops_per_sec":750000,"s0_writes":25000}"#;

    #[test]
    fn passes_under_bound_fails_over() {
        let v = check(REPORT, "join", 5.0).unwrap();
        assert!(v.pass());
        let v = check(REPORT, "join", 2.0).unwrap();
        assert!(!v.pass());
    }

    #[test]
    fn zero_ops_is_a_vacuous_gate_and_fails() {
        let v = check(REPORT, "query", 5.0).unwrap();
        assert!(!v.pass());
    }

    #[test]
    fn missing_field_is_an_error() {
        assert!(check(REPORT, "leave", 5.0).is_err());
        assert!(extract_number(REPORT, "nope").is_err());
    }

    #[test]
    fn extracts_trailing_field_before_brace() {
        let json = r#"{"a":1,"b_p99_p50":3.25}"#;
        let x = extract_number(json, "b_p99_p50").unwrap();
        assert!((x - 3.25).abs() < 1e-12);
    }

    #[test]
    fn scale_gate_passes_at_ratio_and_fails_below() {
        let v = check_scale(DRAIN_1, DRAIN_4, 2.0).unwrap();
        assert!((v.ratio() - 2.5).abs() < 1e-12);
        assert!(v.pass());
        let v = check_scale(DRAIN_1, DRAIN_4, 3.0).unwrap();
        assert!(!v.pass(), "2.5x must not pass a 3x bound");
    }

    #[test]
    fn scale_gate_rejects_degenerate_comparisons() {
        // Same shard count on both sides: vacuous, fails.
        let v = check_scale(DRAIN_1, DRAIN_1, 0.5).unwrap();
        assert!(!v.pass());
        // Zero base throughput: fails rather than dividing to infinity.
        let zero = r#"{"shards":1,"write_ops_per_sec":0}"#;
        let v = check_scale(zero, DRAIN_4, 2.0).unwrap();
        assert!(!v.pass());
        // Missing fields are errors, not passes.
        assert!(check_scale(REPORT, DRAIN_4, 2.0).is_err());
    }
}
