//! `cargo xtask tailgate` — tail-latency gate over a marketload report.
//!
//! Reads the flat JSON emitted by `marketload --out` and fails when an
//! op's tail amplification (`<op>_p99_p50`, i.e. p99 latency over p50)
//! exceeds a bound. CI runs this against the smoke run's report so a
//! regression that re-introduces a convoy — one slow client or one long
//! maintenance sweep stalling everyone's tail — fails the build instead
//! of only skewing a checked-in benchmark number months later.
//!
//! The parser is deliberately minimal: the report is one flat JSON
//! object written by `LoadReport::to_json`, so scanning for `"key":`
//! and reading the number after it is exact, not heuristic. xtask stays
//! dependency-free.

use std::path::Path;

/// Reads `"<key>": <number>` out of a flat JSON object.
fn extract_number(json: &str, key: &str) -> Result<f64, String> {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .ok_or_else(|| format!("no \"{key}\" field in report"))?;
    let rest = &json[at + needle.len()..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated value for \"{key}\""))?;
    let raw = rest[..end].trim();
    raw.parse::<f64>()
        .map_err(|_| format!("\"{key}\" is not a number: {raw:?}"))
}

/// The gate verdict for one op.
pub struct Verdict {
    /// Which op was gated (`join`, `leave`, `update`, `query`).
    pub op: String,
    /// Measured p99/p50 amplification.
    pub ratio: f64,
    /// Requests of this op in the run (a gate over 0 ops is vacuous and
    /// fails loudly instead of passing silently).
    pub count: u64,
    /// Bound the ratio was checked against.
    pub max_ratio: f64,
}

impl Verdict {
    /// Whether the run passes this gate.
    pub fn pass(&self) -> bool {
        self.count > 0 && self.ratio <= self.max_ratio
    }
}

/// Evaluates the gate for `op` against a report's JSON text.
///
/// # Errors
///
/// Fails when the report lacks the op's fields or they do not parse.
pub fn check(json: &str, op: &str, max_ratio: f64) -> Result<Verdict, String> {
    let ratio = extract_number(json, &format!("{op}_p99_p50"))?;
    let count = extract_number(json, &format!("{op}_count"))? as u64;
    Ok(Verdict {
        op: op.to_string(),
        ratio,
        count,
        max_ratio,
    })
}

/// Runs the gate against a report file; returns the process exit code.
pub fn run(path: &Path, op: &str, max_ratio: f64) -> i32 {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tailgate: cannot read {}: {e}", path.display());
            return 1;
        }
    };
    match check(&json, op, max_ratio) {
        Ok(v) => {
            println!(
                "tailgate: {} p99/p50 = {:.2} over {} ops (bound {:.1})",
                v.op, v.ratio, v.count, v.max_ratio
            );
            if v.pass() {
                0
            } else if v.count == 0 {
                eprintln!(
                    "tailgate: FAIL — no {} ops in the report, gate is vacuous",
                    v.op
                );
                1
            } else {
                eprintln!(
                    "tailgate: FAIL — {} tail amplification {:.2} exceeds {:.1}",
                    v.op, v.ratio, v.max_ratio
                );
                1
            }
        }
        Err(e) => {
            eprintln!("tailgate: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{"benchmark":"serve","join_count":100,"join_p99_p50":2.5,"query_count":0,"query_p99_p50":0}"#;

    #[test]
    fn passes_under_bound_fails_over() {
        let v = check(REPORT, "join", 5.0).unwrap();
        assert!(v.pass());
        let v = check(REPORT, "join", 2.0).unwrap();
        assert!(!v.pass());
    }

    #[test]
    fn zero_ops_is_a_vacuous_gate_and_fails() {
        let v = check(REPORT, "query", 5.0).unwrap();
        assert!(!v.pass());
    }

    #[test]
    fn missing_field_is_an_error() {
        assert!(check(REPORT, "leave", 5.0).is_err());
        assert!(extract_number(REPORT, "nope").is_err());
    }

    #[test]
    fn extracts_trailing_field_before_brace() {
        let json = r#"{"a":1,"b_p99_p50":3.25}"#;
        let x = extract_number(json, "b_p99_p50").unwrap();
        assert!((x - 3.25).abs() < 1e-12);
    }
}
