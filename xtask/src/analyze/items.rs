//! Brace-matched item model over the token stream.
//!
//! The lexer ([`super::lexer`]) gives token identity; this module gives
//! *scope*. It walks the significant tokens of one file and recovers a
//! shallow tree of items — `fn`, `mod`, `impl`, `trait` — each with its
//! attributes, name, and the byte extent of its brace-matched body.
//!
//! The payoff is exact `#[cfg(test)]` resolution. The old line scanner
//! exempted everything from the *first* `#[cfg(test)]` to end-of-file,
//! which both mis-exempted non-test code after an inline test module
//! and could not see `#[cfg(all(test, …))]` forms. Here an item is
//! test-only iff one of its attributes is a `cfg(…)` whose argument
//! list contains the bare ident `test` (so `cfg(all(test, feature =
//! "loom-model"))` counts, `cfg(feature = "test")` does not — that
//! `test` is a string literal, not an ident), or the item is a
//! `#[test]`/`#[bench]` function. Test scope is then precisely the
//! item's brace extent, and [`FileItems::in_test_code`] answers byte
//! lookups against those extents.
//!
//! The model is deliberately shallow: bodies of `mod`/`impl`/`trait`
//! are recursed (they contain more items), bodies of `fn` are not
//! (rules scan function bodies as token runs, not trees). Items the
//! rules never ask about (`struct`, `enum`, `use`, …) are skipped by
//! the brace/semicolon skipper without being modeled.

use super::lexer::{Kind, Tok};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(…) { … }` — body not recursed.
    Fn,
    /// `mod name { … }` (inline only; `mod name;` has no extent here).
    Mod,
    /// `impl Type { … }` / `impl Trait for Type { … }`.
    Impl,
    /// `trait Name { … }`.
    Trait,
}

/// One modeled item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Declared name; for `impl`, the last path ident before the brace
    /// (the self type's final segment).
    pub name: String,
    /// Index range into the file's *significant-token* list (the
    /// output of [`super::lexer::significant`]) of the brace-matched
    /// body, excluding the braces themselves.
    pub body_toks: (usize, usize),
    /// Byte range of the whole item, first attribute through closing
    /// brace.
    pub bytes: (usize, usize),
    /// This item (not an ancestor) carries `#[cfg(test)]`-like gating
    /// or is a `#[test]` fn.
    pub test_attr: bool,
    /// This item is inside test scope: `test_attr` on itself or any
    /// ancestor.
    pub in_test: bool,
    /// Children (for `Mod`/`Impl`/`Trait`; always empty for `Fn`).
    pub children: Vec<Item>,
}

/// The item tree of one file plus derived test-extent lookup data.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Byte ranges covered by test-only scope, sorted, non-overlapping
    /// (outermost extent wins).
    test_ranges: Vec<(usize, usize)>,
}

impl FileItems {
    /// `true` if byte offset `at` lies inside a `#[cfg(test)]`-gated item
    /// or a `#[test]` function.
    pub fn in_test_code(&self, at: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| at >= s && at < e)
    }

    /// Depth-first iteration over every modeled item.
    pub fn walk(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        fn rec<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
            for it in items {
                out.push(it);
                rec(&it.children, out);
            }
        }
        rec(&self.items, &mut out);
        out
    }

    /// All functions (any nesting), with their test-scope flag resolved.
    pub fn fns(&self) -> Vec<&Item> {
        self.walk()
            .into_iter()
            .filter(|it| it.kind == ItemKind::Fn)
            .collect()
    }
}

/// Builds the item model for one file.
pub fn build(src: &str, toks: &[Tok]) -> FileItems {
    let sig = super::lexer::significant(toks);
    let mut items = Vec::new();
    parse_items(src, toks, &sig, 0, sig.len(), false, &mut items);
    let mut test_ranges = Vec::new();
    collect_test_ranges(&items, &mut test_ranges);
    test_ranges.sort_unstable();
    FileItems { items, test_ranges }
}

fn collect_test_ranges(items: &[Item], out: &mut Vec<(usize, usize)>) {
    for it in items {
        if it.test_attr {
            // Outermost gated extent covers all children; no need to
            // recurse below it.
            out.push(it.bytes);
        } else {
            collect_test_ranges(&it.children, out);
        }
    }
}

/// Parses the significant-token window `sig[lo..hi]` into items.
/// `parent_test` marks that an enclosing item is test-gated.
fn parse_items(
    src: &str,
    toks: &[Tok],
    sig: &[usize],
    mut lo: usize,
    hi: usize,
    parent_test: bool,
    out: &mut Vec<Item>,
) {
    while lo < hi {
        let (attrs_start, attr_test, next) = eat_attrs(src, toks, sig, lo, hi);
        lo = next;
        if lo >= hi {
            break;
        }
        let t = &toks[sig[lo]];
        let word = if t.kind == Kind::Ident {
            t.text(src)
        } else {
            ""
        };
        match word {
            // Visibility / qualifiers in front of an item header: step
            // over and keep the attribute context for the real keyword.
            "pub" | "unsafe" | "async" | "const" | "extern" | "default" => {
                // `pub(crate)` — skip a parenthesized visibility scope.
                if word == "pub" && sig.get(lo + 1).is_some_and(|&k| toks[k].text(src) == "(") {
                    let close = match_open(src, toks, sig, lo + 1, hi, "(", ")");
                    lo = close + 1;
                } else {
                    lo += 1;
                }
                // Re-run the loop body with the same attribute info by
                // handling the next keyword inline below; simplest is to
                // rewind: stash attrs via recursion-free trick — handle
                // by falling through using a small loop.
                let (kw_lo, kw) = skip_qualifiers(src, toks, sig, lo, hi);
                lo = kw_lo;
                if lo >= hi {
                    break;
                }
                handle_keyword(
                    src,
                    toks,
                    sig,
                    &mut lo,
                    hi,
                    kw,
                    attrs_start,
                    attr_test,
                    parent_test,
                    out,
                );
            }
            "fn" | "mod" | "impl" | "trait" => {
                handle_keyword(
                    src,
                    toks,
                    sig,
                    &mut lo,
                    hi,
                    word.to_string(),
                    attrs_start,
                    attr_test,
                    parent_test,
                    out,
                );
            }
            _ => {
                // Not an item we model: skip to the end of this item —
                // the next top-level `;` or past a brace-matched block.
                lo = skip_unmodeled(src, toks, sig, lo, hi);
            }
        }
    }
}

/// Steps over `pub`/`unsafe`/`async`/`const`/`extern "C"`/`default`
/// qualifier idents, returning the index of the first non-qualifier
/// significant token and its text (empty if not an ident).
fn skip_qualifiers(
    src: &str,
    toks: &[Tok],
    sig: &[usize],
    mut lo: usize,
    hi: usize,
) -> (usize, String) {
    while lo < hi {
        let t = &toks[sig[lo]];
        if t.kind == Kind::Ident {
            match t.text(src) {
                "pub" => {
                    if sig.get(lo + 1).is_some_and(|&k| toks[k].text(src) == "(") {
                        let close = match_open(src, toks, sig, lo + 1, hi, "(", ")");
                        lo = close + 1;
                    } else {
                        lo += 1;
                    }
                }
                "unsafe" | "async" | "const" | "default" => lo += 1,
                "extern" => {
                    lo += 1;
                    // Optional ABI string.
                    if lo < hi && matches!(toks[sig[lo]].kind, Kind::Str | Kind::RawStr) {
                        lo += 1;
                    }
                }
                other => return (lo, other.to_string()),
            }
        } else {
            return (lo, String::new());
        }
    }
    (lo, String::new())
}

/// Handles one `fn`/`mod`/`impl`/`trait` keyword at `*lo`, appending the
/// parsed item (when it has a brace body) and advancing `*lo` past it.
#[allow(clippy::too_many_arguments)]
fn handle_keyword(
    src: &str,
    toks: &[Tok],
    sig: &[usize],
    lo: &mut usize,
    hi: usize,
    kw: String,
    attrs_start: usize,
    attr_test: bool,
    parent_test: bool,
    out: &mut Vec<Item>,
) {
    let kind = match kw.as_str() {
        "fn" => ItemKind::Fn,
        "mod" => ItemKind::Mod,
        "impl" => ItemKind::Impl,
        "trait" => ItemKind::Trait,
        _ => {
            *lo = skip_unmodeled(src, toks, sig, *lo, hi);
            return;
        }
    };
    let header_tok = &toks[sig[*lo]];
    let attr_tok = &toks[sig[attrs_start.min(sig.len() - 1)]];
    let byte_start = attr_tok.start.min(header_tok.start);
    *lo += 1; // past keyword

    // Find the body `{` or a terminating `;` (fn decl in trait, `mod x;`).
    // Skip over parenthesized/bracketed groups (params, generics, where
    // bounds with braces don't occur before the body in valid Rust —
    // `where` clauses end at `{`).
    let mut name = String::new();
    let mut k = *lo;
    let mut body_open = None;
    while k < hi {
        let t = &toks[sig[k]];
        let txt = t.text(src);
        match txt {
            "{" => {
                body_open = Some(k);
                break;
            }
            ";" => break,
            "(" | "[" => {
                let close = match_open(src, toks, sig, k, hi, txt, matching(txt));
                k = close + 1;
                continue;
            }
            "<" => {
                // Generic params: match angle brackets by depth, bailing
                // at `{`/`;` (comparison `<` never appears in headers).
                let mut depth = 1i32;
                k += 1;
                while k < hi && depth > 0 {
                    match toks[sig[k]].text(src) {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        "{" | ";" => break,
                        _ => {}
                    }
                    if depth > 0 {
                        k += 1;
                    }
                }
                k += 1;
                continue;
            }
            _ => {
                if t.kind == Kind::Ident && name.is_empty() && kind != ItemKind::Impl {
                    name = txt.to_string();
                }
                if t.kind == Kind::Ident && kind == ItemKind::Impl {
                    // Last ident before the brace — the self type's
                    // final path segment (`for` resets are fine: the
                    // type after `for` is the self type).
                    name = txt.to_string();
                }
                k += 1;
            }
        }
    }

    let Some(open) = body_open else {
        // `mod x;`, trait-method decl, etc.: no body to model.
        *lo = k.saturating_add(1).min(hi);
        return;
    };
    let close = match_open(src, toks, sig, open, hi, "{", "}");
    let is_test = attr_test || parent_test;
    let mut item = Item {
        kind,
        name,
        body_toks: (open + 1, close),
        bytes: (byte_start, toks[sig[close.min(sig.len() - 1)]].end),
        test_attr: attr_test,
        in_test: is_test,
        children: Vec::new(),
    };
    if kind != ItemKind::Fn {
        parse_items(src, toks, sig, open + 1, close, is_test, &mut item.children);
    }
    out.push(item);
    *lo = close + 1;
}

fn matching(open: &str) -> &'static str {
    match open {
        "(" => ")",
        "[" => "]",
        _ => "}",
    }
}

/// Given `sig[at]` == `open`, returns the index in `sig` of the matching
/// `close` (or `hi - 1` if unbalanced — never past the window).
fn match_open(
    src: &str,
    toks: &[Tok],
    sig: &[usize],
    at: usize,
    hi: usize,
    open: &str,
    close: &str,
) -> usize {
    let mut depth = 0i64;
    let mut k = at;
    while k < hi {
        let txt = toks[sig[k]].text(src);
        if txt == open {
            depth += 1;
        } else if txt == close {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    hi.saturating_sub(1)
}

/// Consumes leading `#[…]` attributes at `sig[lo..]`. Returns
/// `(attrs_start_sig_index, any_attr_is_test_gate, next_index)`.
fn eat_attrs(src: &str, toks: &[Tok], sig: &[usize], lo: usize, hi: usize) -> (usize, bool, usize) {
    let mut k = lo;
    let mut test = false;
    while k + 1 < hi && toks[sig[k]].text(src) == "#" {
        if toks[sig[k + 1]].text(src) == "[" {
            let close = match_open(src, toks, sig, k + 1, hi, "[", "]");
            test |= attr_is_test_gate(src, toks, sig, k + 2, close);
            k = close + 1;
        } else if k + 2 < hi
            && toks[sig[k + 1]].text(src) == "!"
            && toks[sig[k + 2]].text(src) == "["
        {
            // Inner attribute (`#![forbid(unsafe_code)]`): consume, never
            // a test gate for a following item.
            let close = match_open(src, toks, sig, k + 2, hi, "[", "]");
            k = close + 1;
        } else {
            break;
        }
    }
    (lo, test, k)
}

/// `true` for `#[test]`, `#[bench]`, and any `#[cfg(…)]` whose argument
/// tokens contain the bare ident `test` (`cfg(test)`,
/// `cfg(all(test, feature = "x"))`). A `"test"` string literal — as in
/// `cfg(feature = "test")` — is a [`Kind::Str`] token and does not match.
fn attr_is_test_gate(src: &str, toks: &[Tok], sig: &[usize], lo: usize, hi: usize) -> bool {
    if lo >= hi {
        return false;
    }
    let head = toks[sig[lo]].text(src);
    if head == "test" || head == "bench" {
        return true;
    }
    if head != "cfg" {
        return false;
    }
    (lo + 1..hi).any(|k| {
        let t = &toks[sig[k]];
        t.kind == Kind::Ident && t.text(src) == "test"
    })
}

/// Skips one unmodeled item: advances past the next top-level `;`, or
/// past a brace block if one opens first (e.g. `struct S { … }`,
/// `static X: T = { … };` is still ended by the `;`). Always advances.
fn skip_unmodeled(src: &str, toks: &[Tok], sig: &[usize], lo: usize, hi: usize) -> usize {
    let mut k = lo;
    let mut depth = 0i64;
    while k < hi {
        match toks[sig[k]].text(src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth <= 0 {
                    return k + 1;
                }
            }
            ";" if depth == 0 => return k + 1,
            "=" if depth == 0 => {
                // `static X: [u8; 2] = [..];` — from here only the `;`
                // ends the item; braces belong to the initializer.
                let mut j = k + 1;
                let mut d2 = 0i64;
                while j < hi {
                    match toks[sig[j]].text(src) {
                        "{" | "(" | "[" => d2 += 1,
                        "}" | ")" | "]" => d2 -= 1,
                        ";" if d2 == 0 => return j + 1,
                        _ => {}
                    }
                    j += 1;
                }
                return hi;
            }
            _ => {}
        }
        k += 1;
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::super::lexer;
    use super::*;

    fn model(src: &str) -> FileItems {
        build(src, &lexer::lex(src))
    }

    #[test]
    fn finds_fns_mods_impls() {
        let src = r#"
            pub fn alpha() { beta(); }
            mod inner {
                fn beta() {}
                impl Thing { fn gamma(&self) {} }
            }
            trait T { fn decl(&self); fn with_body(&self) {} }
        "#;
        let m = model(src);
        let names: Vec<&str> = m.fns().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma", "with_body"]);
        let mods: Vec<&str> = m
            .walk()
            .iter()
            .filter(|i| i.kind == ItemKind::Mod)
            .map(|i| i.name.as_str())
            .collect();
        assert_eq!(mods, vec!["inner"]);
    }

    #[test]
    fn cfg_test_scoped_to_module_extent() {
        // The regression this model exists to fix: code AFTER an inline
        // test module must not be exempt.
        let src = r#"
            fn before() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { assert!(true); }
            }
            fn after() { value.unwrap(); }
        "#;
        let m = model(src);
        let after = m
            .fns()
            .into_iter()
            .find(|f| f.name == "after")
            .expect("after modeled");
        assert!(!after.in_test, "code after a test mod is NOT test code");
        let t = m.fns().into_iter().find(|f| f.name == "t").expect("t");
        assert!(t.in_test);
        // Byte-level lookup agrees.
        let unwrap_at = src.find(".unwrap").expect("unwrap");
        assert!(!m.in_test_code(unwrap_at));
        let assert_at = src.find("assert!").expect("assert");
        assert!(m.in_test_code(assert_at));
    }

    #[test]
    fn cfg_all_test_counts_but_feature_string_does_not() {
        let src = r#"
            #[cfg(all(test, feature = "loom-model"))]
            mod loom_tests { fn a() {} }
            #[cfg(feature = "test")]
            mod not_tests { fn b() {} }
        "#;
        let m = model(src);
        let a = m.fns().into_iter().find(|f| f.name == "a").expect("a");
        assert!(a.in_test, "cfg(all(test, ...)) is a test gate");
        let b = m.fns().into_iter().find(|f| f.name == "b").expect("b");
        assert!(!b.in_test, "cfg(feature = \"test\") is NOT a test gate");
    }

    #[test]
    fn test_attr_fn_is_test_scope() {
        let src = "#[test]\nfn check() { x.unwrap(); }\nfn prod() {}";
        let m = model(src);
        assert!(m.in_test_code(src.find(".unwrap").expect("site")));
        let prod = m
            .fns()
            .into_iter()
            .find(|f| f.name == "prod")
            .expect("prod");
        assert!(!prod.in_test);
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_body_detection() {
        let src = r#"
            fn generic<T: Into<Vec<u8>>>(x: T) -> Option<u8> where T: Clone { None }
            struct S<T> { inner: Vec<T> }
            fn after_struct() {}
        "#;
        let m = model(src);
        let names: Vec<&str> = m.fns().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["generic", "after_struct"]);
    }

    #[test]
    fn impl_name_is_self_type_segment() {
        let src = "impl<T> Display for Wrapper<T> { fn fmt(&self) {} }";
        let m = model(src);
        let imp = m
            .walk()
            .into_iter()
            .find(|i| i.kind == ItemKind::Impl)
            .expect("impl");
        assert_eq!(imp.name, "Wrapper");
    }

    #[test]
    fn fn_bodies_are_not_recursed() {
        // A closure's braces inside a fn body must not produce items.
        let src = "fn outer() { let f = |x| { x + 1 }; mod_like(); }";
        let m = model(src);
        assert_eq!(m.fns().len(), 1);
        assert!(m.fns()[0].children.is_empty());
    }

    #[test]
    fn statics_with_brace_initializers_do_not_derail() {
        let src = r#"
            static TABLE: [u8; 2] = [1, 2];
            const BLOCK: fn() = { || {} };
            fn tail() {}
        "#;
        let m = model(src);
        assert!(m.fns().iter().any(|f| f.name == "tail"));
    }
}
