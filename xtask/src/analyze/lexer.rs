//! A hand-rolled, dependency-free Rust lexer.
//!
//! The line scanner this module replaces could not see three things the
//! analysis rules need: *string context* (an operator inside a string
//! literal is not code), *comment context* (`/* … */` can span lines and
//! nest), and *token identity* (`.unwrap_or_else(` must not match a rule
//! looking for `.unwrap(`). This lexer recovers all three with a single
//! left-to-right pass and no dependencies.
//!
//! Design constraints, in order:
//!
//! 1. **Lossless.** Every byte of the input lands in exactly one token,
//!    in order — concatenating the token slices reproduces the file
//!    byte-for-byte. The proptests pin this; it is what makes the item
//!    model's byte ranges trustworthy.
//! 2. **Context-exact for the constructs rules care about**: strings
//!    (plain, raw with any `#` count, byte), char literals vs.
//!    lifetimes, line comments, and *nested* block comments.
//! 3. **Approximate elsewhere.** Multi-character operators come out as
//!    single-character [`Kind::Punct`] tokens; rules that need `==` check
//!    adjacency of two `=` tokens. Numeric literals keep enough shape to
//!    classify float literals (`1.0`, `1e-9`, `2.5E3`, `0.5f64`) without
//!    a full grammar.
//!
//! Everything downstream (the item model in [`super::items`], every rule
//! in [`super::rules`]) works on `&[Tok]` plus the original source.

/// Token classification. `Ws`, `LineComment`, and `BlockComment` are the
/// "insignificant" kinds; rules iterate past them via
/// [`significant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Whitespace run (spaces, tabs, newlines).
    Ws,
    /// `// …` to end of line (newline excluded), including `///` and `//!`.
    LineComment,
    /// `/* … */`, nesting tracked; unterminated runs to end of file.
    BlockComment,
    /// `"…"` or `b"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` — any hash count.
    RawStr,
    /// `'x'`, `'\n'`, `b'\t'`, `'\u{1F600}'`.
    Char,
    /// `'ident` not closed by a quote — `'a`, `'static`, `'_`.
    Lifetime,
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// Numeric literal, including `.`/exponent/suffix shapes.
    Num,
    /// Everything else, one character at a time.
    Punct,
}

/// One token: a classification over a byte range of the source, plus the
/// 1-based line its first byte sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// What the bytes are.
    pub kind: Kind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Tok {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// `true` for whitespace and comments.
    pub fn insignificant(&self) -> bool {
        matches!(self.kind, Kind::Ws | Kind::LineComment | Kind::BlockComment)
    }
}

/// Indices of the significant (non-whitespace, non-comment) tokens, in
/// order. Rules match on this sequence so comments and layout never
/// break a pattern.
pub fn significant(toks: &[Tok]) -> Vec<usize> {
    toks.iter()
        .enumerate()
        .filter(|(_, t)| !t.insignificant())
        .map(|(k, _)| k)
        .collect()
}

/// Lexes `src` completely. Never fails: malformed input (unterminated
/// string, stray byte) degrades to best-effort tokens that still cover
/// every byte exactly once.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        full: src,
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    full: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.out.push(Tok {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Advances `n` bytes.
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn next_kind(&mut self) -> Kind {
        let c = self.src[self.pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    self.bump();
                }
                Kind::Ws
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|b| b != b'\n') {
                    self.bump();
                }
                Kind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' if self.raw_or_byte_prefix().is_some() => {
                // Dispatch recomputed inside; the guard only confirms a
                // literal prefix actually follows the `r`/`b`.
                let k = self.raw_or_byte_prefix();
                match k {
                    Some(Prefix::RawStr(hashes)) => self.raw_string(hashes),
                    Some(Prefix::ByteStr) => {
                        self.bump(); // b
                        self.string()
                    }
                    Some(Prefix::ByteChar) => {
                        self.bump(); // b
                        self.char_or_lifetime()
                    }
                    Some(Prefix::RawIdent) => {
                        self.bump_n(2); // r#
                        self.ident()
                    }
                    None => unreachable!("guard checked the prefix"), // lint: allow(panics)
                }
            }
            c if c.is_ascii_digit() => self.number(),
            c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(),
            _ => {
                self.bump();
                Kind::Punct
            }
        }
    }

    fn block_comment(&mut self) -> Kind {
        self.bump_n(2); // /*
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.src.len() {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        Kind::BlockComment
    }

    fn string(&mut self) -> Kind {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        Kind::Str
    }

    fn raw_string(&mut self, hashes: usize) -> Kind {
        // Consume `r`/`br`, the hashes, and the opening quote.
        let prefix = if self.src[self.pos] == b'b' { 2 } else { 1 };
        self.bump_n(prefix + hashes + 1);
        'scan: while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                // A close candidate: `"` followed by `hashes` hash marks.
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        self.bump();
                        continue 'scan;
                    }
                }
                self.bump_n(1 + hashes);
                break;
            }
            self.bump();
        }
        Kind::RawStr
    }

    /// Distinguishes `'a'` (char) from `'a` / `'static` (lifetime): after
    /// the quote, an identifier run that is *followed by* a closing quote
    /// is a char literal; otherwise it is a lifetime. Escapes (`'\n'`)
    /// are always char literals.
    fn char_or_lifetime(&mut self) -> Kind {
        self.bump(); // '
        match self.peek(0) {
            Some(b'\\') => {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump(); // the escaped char (u of \u{..} included below)
                }
                // `\u{…}` payload.
                while self.peek(0).is_some_and(|b| b != b'\'') {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                Kind::Char
            }
            Some(c) if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                let mut k = 0usize;
                while self
                    .peek(k)
                    .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
                {
                    k += 1;
                }
                if self.peek(k) == Some(b'\'') {
                    self.bump_n(k + 1);
                    Kind::Char
                } else {
                    self.bump_n(k);
                    Kind::Lifetime
                }
            }
            Some(_) => {
                // `'('`-style single char literal (or a stray quote).
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                Kind::Char
            }
            None => Kind::Char,
        }
    }

    fn ident(&mut self) -> Kind {
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            self.bump();
        }
        Kind::Ident
    }

    fn number(&mut self) -> Kind {
        // Digits plus alphanumerics and underscores cover hex/oct/bin
        // bodies, exponent letters, and type suffixes in one sweep.
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
        {
            let was_exp = matches!(self.src[self.pos], b'e' | b'E')
                && !self.full[..self.pos].ends_with(['x', 'X']);
            self.bump();
            // Exponent sign: `1e-9`, `2.5E+3`.
            if was_exp
                && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                && self.peek(1).is_some_and(|b| b.is_ascii_digit())
                && !self.is_hex_body()
            {
                self.bump();
            }
        }
        // Fractional part: a `.` followed by a digit (so `0..2` and
        // `1.max(2)` stay ranges/method calls).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump(); // .
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                let was_exp = matches!(self.src[self.pos], b'e' | b'E');
                self.bump();
                if was_exp
                    && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                    && self.peek(1).is_some_and(|b| b.is_ascii_digit())
                {
                    self.bump();
                }
            }
        } else if self.peek(0) == Some(b'.')
            && self
                .peek(1)
                .is_none_or(|b| !(b == b'.' || b == b'_' || b.is_ascii_alphabetic() || b >= 0x80))
        {
            // Trailing-dot float: `1.` (but not `0..` or `1.abs()`).
            self.bump();
        }
        Kind::Num
    }

    /// `true` if the current number token started with `0x`/`0X` (the
    /// exponent-sign rule must not fire inside hex bodies).
    fn is_hex_body(&self) -> bool {
        let tail = &self.full[..self.pos];
        let start = tail
            .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '+' || c == '-'))
            .map_or(0, |k| k + 1);
        tail[start..].starts_with("0x") || tail[start..].starts_with("0X")
    }

    /// Looks ahead from an `r` or `b` for a literal prefix. Returns
    /// `None` when the letter is just the start of an ordinary ident.
    fn raw_or_byte_prefix(&self) -> Option<Prefix> {
        match self.src[self.pos] {
            b'r' => {
                let mut k = 1usize;
                while self.peek(k) == Some(b'#') {
                    k += 1;
                }
                match (k - 1, self.peek(k)) {
                    (hashes, Some(b'"')) => Some(Prefix::RawStr(hashes)),
                    (0, _) => None,
                    // `r#ident` — exactly one hash, then ident start.
                    (1, Some(c)) if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                        Some(Prefix::RawIdent)
                    }
                    _ => None,
                }
            }
            b'b' => match self.peek(1) {
                Some(b'"') => Some(Prefix::ByteStr),
                Some(b'\'') => Some(Prefix::ByteChar),
                Some(b'r') => {
                    let mut k = 2usize;
                    while self.peek(k) == Some(b'#') {
                        k += 1;
                    }
                    (self.peek(k) == Some(b'"')).then_some(Prefix::RawStr(k - 2))
                }
                _ => None,
            },
            _ => None,
        }
    }
}

enum Prefix {
    RawStr(usize),
    ByteStr,
    ByteChar,
    RawIdent,
}

/// `true` if a [`Kind::Num`] token's text is a float literal: it has a
/// decimal point, an exponent, or an `f32`/`f64` suffix (and is not a
/// hex/octal/binary literal, where `e` is a digit).
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    let t = text
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .replace('_', "");
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    t.contains('.') || t.contains('e') || t.contains('E')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.insignificant())
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lossless round-trip failed");
        // Tokens must tile the input exactly.
        let mut at = 0;
        for t in &toks {
            assert_eq!(t.start, at, "gap/overlap at byte {at}");
            assert!(t.end > t.start, "empty token at {at}");
            at = t.end;
        }
        assert_eq!(at, src.len());
    }

    #[test]
    fn strings_hide_operators() {
        let ks = kinds(r#"let s = "a == 1.0 and panic!(";"#);
        assert!(ks.iter().any(|(k, t)| *k == Kind::Str && t.contains("==")));
        assert!(!ks.iter().any(|(k, t)| *k == Kind::Ident && *t == "panic"));
        roundtrip(r#"let s = "a == 1.0 and panic!(";"#);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"quote " inside"#; let t = r##"x"# still"##;"####;
        let ks = kinds(src);
        let raws: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == Kind::RawStr)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(raws.len(), 2, "{ks:?}");
        assert!(raws[0].contains("quote"));
        assert!(raws[1].contains("still"));
        roundtrip(src);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let ks = kinds(src);
        assert_eq!(
            ks.iter()
                .filter(|(k, _)| *k == Kind::Ident)
                .map(|(_, t)| *t)
                .collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        roundtrip(src);
    }

    #[test]
    fn char_vs_lifetime() {
        let src =
            "fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let s: &'static str = \"\"; }";
        let ks = kinds(src);
        let lifetimes: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == Kind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        let chars: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == Kind::Char)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
        roundtrip(src);
    }

    #[test]
    fn numbers_classify_floats() {
        for (lit, is_float) in [
            ("1.0", true),
            ("0.5f64", true),
            ("1_000.25", true),
            ("1e-9", true),
            ("2.5E3", true),
            ("3", false),
            ("0x2e", false),
            ("1_000", false),
            ("42u64", false),
        ] {
            let src = format!("let x = {lit};");
            let ks = kinds(&src);
            let num = ks
                .iter()
                .find(|(k, _)| *k == Kind::Num)
                .unwrap_or_else(|| panic!("no Num in {src}: {ks:?}"));
            assert_eq!(num.1, lit, "number mis-lexed in {src}");
            assert_eq!(is_float_literal(num.1), is_float, "{lit}");
            roundtrip(&src);
        }
    }

    #[test]
    fn ranges_are_not_floats() {
        let ks = kinds("for i in 0..2 { x[1..=3]; }");
        let nums: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == Kind::Num)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(nums, vec!["0", "2", "1", "3"]);
        assert!(nums.iter().all(|n| !is_float_literal(n)));
    }

    #[test]
    fn method_on_int_is_not_float() {
        let ks = kinds("let y = 1.max(2);");
        let nums: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == Kind::Num)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(nums, vec!["1", "2"]);
    }

    #[test]
    fn raw_idents_and_byte_literals() {
        let src = "let r#match = b\"bytes\"; let c = b'x'; let br = br#\"raw\"#;";
        let ks = kinds(src);
        assert!(ks.iter().any(|(k, t)| *k == Kind::Ident && *t == "r#match"));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == Kind::Str && *t == "b\"bytes\""));
        assert!(ks.iter().any(|(k, t)| *k == Kind::Char && *t == "b'x'"));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == Kind::RawStr && *t == "br#\"raw\"#"));
        roundtrip(src);
    }

    #[test]
    fn line_numbers_track_newlines_and_multiline_constructs() {
        let src = "a\n/* two\nlines */\n\"str\nacross\"\nz";
        let toks = lex(src);
        let z = toks
            .iter()
            .find(|t| t.kind == Kind::Ident && t.text(src) == "z")
            .unwrap();
        assert_eq!(z.line, 6);
        roundtrip(src);
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"never closed", "/* never closed", "r#\"never", "'", "b'"] {
            roundtrip(src);
        }
    }

    #[test]
    fn escaped_quotes_stay_in_string() {
        let src = r#"let s = "he said \"hi\" loudly"; let t = 1;"#;
        let ks = kinds(src);
        let strs: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == Kind::Str)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].contains("hi"));
        roundtrip(src);
    }
}

/// Property tests: the lexer must tile ANY input losslessly — including
/// adversarial soups of the constructs it special-cases — and its line
/// numbering must agree with an independent newline scan. Run by
/// `cargo test -p xtask`; the vendored proptest stand-in is seeded
/// random testing, deterministic per test name.
#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// The tricky vocabulary: every construct with lexer special-casing,
    /// plus prefix/suffix shards whose concatenation forms new ones
    /// (`r` + `"x"` fuses into a raw string, `b` + `'a'` into a byte
    /// char — the round-trip must hold either way).
    const FRAGMENTS: &[&str] = &[
        "ident",
        "r#raw_ident",
        "self",
        "'a",
        "'static",
        "'x'",
        "'\\''",
        "'\\n'",
        "b'z'",
        "\"plain\"",
        "\"esc \\\" quote\"",
        "\"multi\nline\"",
        "r\"raw\"",
        "r#\"quote \" inside\"#",
        "r##\"x\"# still\"##",
        "br#\"bytes\"#",
        "b\"bytes\"",
        "// line comment",
        "/* block */",
        "/* nested /* inner */ outer */",
        "/*! inner doc */",
        "/// doc comment",
        "0.4f64",
        "1e-9",
        "0x_ffu32",
        "42",
        "1_000.5",
        "..=",
        "=>",
        "::<",
        ">>=",
        "==",
        "!=",
        "&&",
        "#![allow()]",
        "#[cfg(test)]",
        "{",
        "}",
        "(",
        ")",
        ";",
        ",",
        ".",
        "r",
        "b",
        "br",
        "#",
        "\"",
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn lex_tiles_arbitrary_fragment_soup(
            picks in vec((0usize..FRAGMENTS.len(), 0usize..3), 0..40)
        ) {
            let mut src = String::new();
            for &(f, sep) in &picks {
                src.push_str(FRAGMENTS[f]);
                src.push_str(["", " ", "\n"][sep]);
            }
            let toks = lex(&src);
            let mut at = 0;
            for t in &toks {
                prop_assert_eq!(t.start, at, "gap/overlap at byte {} of {:?}", at, src);
                prop_assert!(t.end > t.start, "empty token in {:?}", src);
                at = t.end;
            }
            prop_assert_eq!(at, src.len(), "input not fully consumed: {:?}", src);
            let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
            prop_assert_eq!(rebuilt, src);
        }

        #[test]
        fn line_numbers_agree_with_newline_scan(
            picks in vec((0usize..FRAGMENTS.len(), 0usize..3), 0..40)
        ) {
            let mut src = String::new();
            for &(f, sep) in &picks {
                src.push_str(FRAGMENTS[f]);
                src.push_str(["", " ", "\n"][sep]);
            }
            for t in lex(&src) {
                let want = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
                prop_assert_eq!(t.line, want, "line mismatch at byte {} of {:?}", t.start, src);
            }
        }
    }
}
