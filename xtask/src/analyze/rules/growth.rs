//! `growth` — connection-scoped buffers must not grow unchecked.
//!
//! A slow or malicious client must never be able to make the daemon
//! allocate without bound: every buffer a connection can pump bytes or
//! commands into needs a visible capacity check. This rule covers the
//! serve files where such buffers live —
//! `crates/serve/src/eventloop.rs` (per-connection out-buffers,
//! pending-response queues, read backlogs), `chan.rs` (the bounded
//! command queue), `proto.rs` (frame reassembly), and `admin.rs` (the
//! HTTP admin surface's request head/body buffers) — and flags any
//! growing call in non-test code:
//!
//! `.push(` `.push_back(` `.push_front(` `.extend(`
//! `.extend_from_slice(` `.insert(`
//!
//! unless one of these holds:
//!
//! * the *enclosing function body* mentions a capacity name — an
//!   ALL-CAPS const containing `MAX`/`CAP`/`LIMIT`/`HIGH_WATER`/`PAUSE`
//!   or a lowercase ident spelled `cap`/`max`/`capacity`/`limit` — the
//!   syntactic shadow of an actual bound check;
//! * the call is `.push(<literal>)` with a single char/str/number
//!   literal argument (building a fixed-size string or tag, not
//!   buffering client data);
//! * the site carries `// lint: allow(growth)` with its justification
//!   (the escape hatch for buffers bounded elsewhere — e.g. a drain
//!   whose source is already capacity-checked).
//!
//! The rule is a heuristic, and an honest one: it cannot prove the
//! mentioned capacity is *the* bound for *this* buffer. What it does
//! guarantee is that an unbounded push cannot land in these files
//! without either sitting next to a named bound or carrying a written
//! justification — the review trigger the PR-6 backpressure design
//! needs to stay true.

use super::super::lexer::Kind;
use super::super::{Finding, SrcFile, Workspace};
use super::{enclosing_fn, method_call};

const FILES: &[&str] = &[
    "crates/serve/src/eventloop.rs",
    "crates/serve/src/chan.rs",
    "crates/serve/src/proto.rs",
    "crates/serve/src/admin.rs",
];

const GROWERS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "extend",
    "extend_from_slice",
    "insert",
];

/// Runs the rule over the workspace. See the module docs.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !FILES.iter().any(|p| f.path.ends_with(p)) {
            continue;
        }
        for k in 0..f.sig.len() {
            let Some((name_k, method)) = method_call(f, k) else {
                continue;
            };
            if !GROWERS.contains(&method) {
                continue;
            }
            let at = f.tok(name_k).start;
            if f.items.in_test_code(at) {
                continue;
            }
            if method == "push" && single_literal_arg(f, name_k + 1) {
                continue;
            }
            let Some(func) = enclosing_fn(&f.items.items, at) else {
                continue;
            };
            if fn_mentions_capacity(f, func.body_toks) {
                continue;
            }
            let mut fd = f.finding_at(name_k, "growth");
            fd.excerpt = format!(
                "unchecked .{method}( in fn {} (no capacity bound in scope): {}",
                func.name, fd.excerpt
            );
            out.push(fd);
        }
    }
    out
}

/// `.push('x')` / `.push("tag")` / `.push(7)` — a single literal arg.
fn single_literal_arg(f: &SrcFile, open_k: usize) -> bool {
    let arg = open_k + 1;
    arg + 1 < f.sig.len()
        && matches!(
            f.tok(arg).kind,
            Kind::Char | Kind::Str | Kind::RawStr | Kind::Num
        )
        && f.txt(arg + 1) == ")"
}

/// Does the function body mention a capacity-ish name anywhere?
fn fn_mentions_capacity(f: &SrcFile, (lo, hi): (usize, usize)) -> bool {
    (lo..hi).any(|k| {
        let t = f.tok(k);
        t.kind == Kind::Ident && is_capacity_name(t.text(&f.text))
    })
}

fn is_capacity_name(name: &str) -> bool {
    if matches!(name, "cap" | "max" | "capacity" | "limit") {
        return true;
    }
    let all_caps = name.chars().any(|c| c.is_ascii_uppercase())
        && !name.chars().any(|c| c.is_ascii_lowercase());
    all_caps
        && ["MAX", "CAP", "LIMIT", "HIGH_WATER", "PAUSE"]
            .iter()
            .any(|m| name.contains(m))
}
