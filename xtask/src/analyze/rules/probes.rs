//! `probes` — obs probe names must come from the declared registry.
//!
//! mec-obs keys every counter, histogram, and span by a string name.
//! A typo'd name at an instrumentation site doesn't fail anything — it
//! silently forks a second series (`serve.join.admited`) that no
//! dashboard, no `obsreport` reader, and no tailgate bound is looking
//! at. This rule closes that hole: `crates/obs/src/probes.rs` declares
//! the registry of blessed probe names, and every *literal* probe name
//! at a call site must appear in it.
//!
//! Checked call shapes (first argument a string literal):
//!
//! * `mec_obs::counter_add("…", …)`, `mec_obs::record("…", …)`,
//!   `mec_obs::record_many("…", …)`, `mec_obs::span("…")`,
//!   `mec_obs::gauge("…", …)`;
//! * the macro forms `obs_counter!("…", …)` and `obs_span!("…")`.
//!
//! Sites whose name is computed (a variable, a `format!`) are out of
//! static reach and are skipped — the registry check is for the 95% of
//! sites that are literals. The obs crate itself and vendored code are
//! exempt (the registry file would otherwise flag its own doc
//! examples).
//!
//! Registry shape: `crates/obs/src/probes.rs` declares
//! `pub const REGISTRY: &[Probe]` where each entry is a
//! `Probe { name: "…", kind: …, help: "…" }` literal. A declared name
//! is exactly a string literal in non-test code sitting in `name:`
//! field position — which keeps the `help` text (free prose that may
//! mention probe-like words) out of the extracted set.

use super::super::lexer::Kind;
use super::super::{Finding, Workspace};
use std::collections::BTreeSet;

const REGISTRY_FILE: &str = "crates/obs/src/probes.rs";

const FNS: &[&str] = &["counter_add", "record", "record_many", "span", "gauge"];
const MACROS: &[&str] = &["obs_counter", "obs_span"];

/// Runs the rule over the workspace. See the module docs.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let Some(reg_file) = ws.files.iter().find(|f| f.path.ends_with(REGISTRY_FILE)) else {
        // No registry declared — nothing to check against. The workspace
        // ships one; fixtures that omit it opt out of this rule.
        return Vec::new();
    };
    let mut registry: BTreeSet<String> = BTreeSet::new();
    for k in 0..reg_file.sig.len() {
        let t = reg_file.tok(k);
        // Only literals in `name: "…"` field position declare a probe;
        // `help:` strings and doc examples stay out of the set.
        let named = t.kind == Kind::Str
            && k >= 2
            && reg_file.txt(k - 1) == ":"
            && reg_file.txt(k - 2) == "name"
            && !reg_file.items.in_test_code(t.start);
        if named {
            if let Some(name) = unquote(t.text(&reg_file.text)) {
                registry.insert(name.to_string());
            }
        }
    }

    let mut out = Vec::new();
    for f in &ws.files {
        if f.path.starts_with("vendor/")
            || f.path.starts_with("target/")
            || f.path.starts_with("crates/obs/")
        {
            continue;
        }
        for k in 0..f.sig.len() {
            let t = f.tok(k);
            if t.kind != Kind::Ident {
                continue;
            }
            let txt = t.text(&f.text);
            // `mec_obs::<fn>("name"` — k at the fn ident.
            let fn_site = FNS.contains(&txt)
                && k >= 3
                && f.txt(k - 1) == ":"
                && f.txt(k - 2) == ":"
                && f.txt(k - 3) == "mec_obs"
                && k + 2 < f.sig.len()
                && f.txt(k + 1) == "(";
            // `obs_counter!("name"` / `obs_span!("name"`.
            let macro_site = MACROS.contains(&txt)
                && k + 3 < f.sig.len()
                && f.txt(k + 1) == "!"
                && f.txt(k + 2) == "(";
            let arg_k = if fn_site {
                k + 2
            } else if macro_site {
                k + 3
            } else {
                continue;
            };
            let arg = f.tok(arg_k);
            if arg.kind != Kind::Str {
                continue; // computed name: out of static reach
            }
            let Some(name) = unquote(arg.text(&f.text)) else {
                continue;
            };
            if !registry.contains(name) {
                let line = arg.line as usize;
                out.push(Finding {
                    file: f.path.clone(),
                    line,
                    rule: "probes",
                    excerpt: format!(
                        "probe name \"{name}\" not in {REGISTRY_FILE} registry: {}",
                        f.line_text(line)
                    ),
                });
            }
        }
    }
    out
}

/// Strips the quotes off a plain string literal token (`"x"` → `x`);
/// `None` for byte strings or literals with escapes (those are never
/// valid probe names anyway).
fn unquote(lit: &str) -> Option<&str> {
    let inner = lit.strip_prefix('"')?.strip_suffix('"')?;
    (!inner.contains('\\')).then_some(inner)
}
