//! Seeded self-test fixtures: one tiny in-memory workspace per case,
//! each proving a rule fires on a violation or stays quiet on the
//! compliant twin. `cargo xtask analyze --self-test` (and the unit
//! tests) run every case through the full engine — registry, rule,
//! and suppression — so a regression in any layer shows up here.

/// One self-test case.
pub struct Fixture {
    /// Rule under test (finding counts for other rules are ignored).
    pub rule: &'static str,
    /// Human-readable case name for failure messages.
    pub title: &'static str,
    /// `(repo-relative path, contents)` pairs forming the workspace.
    pub files: &'static [(&'static str, &'static str)],
    /// Expected number of findings for `rule` after suppression.
    pub expect: usize,
}

/// Every seeded case. Each registry rule must appear with at least one
/// firing (`expect > 0`) and one quiet (`expect == 0`) case — enforced
/// by [`super::super::self_test`].
pub const ALL: &[Fixture] = &[
    // ---------------------------------------------------------- io-blocking
    Fixture {
        rule: "io-blocking",
        title: "lock + sleep reachable from run_io fire; unreachable fn is quiet",
        files: &[(
            "crates/serve/src/eventloop.rs",
            r#"
pub fn run_io(s: &Shared) {
    loop { poll_once(s); }
}
fn poll_once(s: &Shared) {
    let queue = s.inbox.lock();
    std::thread::sleep(s.tick);
    drop(queue);
}
fn market_only(s: &Shared) {
    let g = s.state.lock();
    drop(g);
}
"#,
        )],
        expect: 2,
    },
    Fixture {
        rule: "io-blocking",
        title: "marker suppresses a justified brief lock",
        files: &[(
            "crates/serve/src/eventloop.rs",
            r#"
pub fn run_io(s: &Shared) {
    // The inbox lock covers a two-element pointer swap only; the
    // acceptor never holds it across a syscall.
    // lint: allow(io-blocking)
    let queue = s.inbox.lock();
    drop(queue);
}
"#,
        )],
        expect: 0,
    },
    Fixture {
        rule: "io-blocking",
        title: "blocking calls in fns unreachable from run_io are quiet",
        files: &[(
            "crates/serve/src/eventloop.rs",
            r#"
pub fn run_io(s: &Shared) {
    loop { poll_once(s); }
}
fn poll_once(_s: &Shared) {}
fn market_only(s: &Shared) {
    let g = s.state.lock();
    s.cv.wait(g);
}
"#,
        )],
        expect: 0,
    },
    // ----------------------------------------------------------- lock-order
    Fixture {
        rule: "lock-order",
        title: "opposite acquisition orders in two fns form a cycle",
        files: &[(
            "crates/serve/src/demo.rs",
            r#"
fn ab(s: &S) {
    let a = s.alpha.lock().expect("a"); // lint: allow(panics)
    let b = s.beta.lock().expect("b"); // lint: allow(panics)
    drop(b);
    drop(a);
}
fn ba(s: &S) {
    let b = s.beta.lock().expect("b"); // lint: allow(panics)
    let a = s.alpha.lock().expect("a"); // lint: allow(panics)
    drop(a);
    drop(b);
}
"#,
        )],
        expect: 1,
    },
    Fixture {
        rule: "lock-order",
        title: "consistent order everywhere is acyclic",
        files: &[(
            "crates/serve/src/demo.rs",
            r#"
fn ab(s: &S) {
    let a = s.alpha.lock().expect("a"); // lint: allow(panics)
    let b = s.beta.lock().expect("b"); // lint: allow(panics)
    drop(b);
    drop(a);
}
fn ab_again(s: &S) {
    let a = s.alpha.lock().expect("a"); // lint: allow(panics)
    let b = s.beta.lock().expect("b"); // lint: allow(panics)
    drop(b);
    drop(a);
}
"#,
        )],
        expect: 0,
    },
    Fixture {
        rule: "lock-order",
        title: "two shards taking each other's reply locks in opposite order cycle",
        files: &[(
            "crates/serve/src/handoff.rs",
            r#"
fn migrate_east(a: &Shard, b: &Shard) {
    let src = a.east.reply.lock().expect("east"); // lint: allow(panics)
    let dst = b.west.reply.lock().expect("west"); // lint: allow(panics)
    drop(dst);
    drop(src);
}
fn migrate_west(a: &Shard, b: &Shard) {
    let dst = b.west.reply.lock().expect("west"); // lint: allow(panics)
    let src = a.east.reply.lock().expect("east"); // lint: allow(panics)
    drop(src);
    drop(dst);
}
"#,
        )],
        expect: 1,
    },
    Fixture {
        rule: "lock-order",
        title: "reply locks ranked by shard id acquire in one global order",
        files: &[(
            "crates/serve/src/handoff.rs",
            r#"
fn migrate_east(a: &Shard, b: &Shard) {
    let src = a.east.reply.lock().expect("east"); // lint: allow(panics)
    let dst = b.west.reply.lock().expect("west"); // lint: allow(panics)
    drop(dst);
    drop(src);
}
fn migrate_west(a: &Shard, b: &Shard) {
    let src = a.east.reply.lock().expect("east"); // lint: allow(panics)
    let dst = b.west.reply.lock().expect("west"); // lint: allow(panics)
    drop(dst);
    drop(src);
}
"#,
        )],
        expect: 0,
    },
    Fixture {
        rule: "lock-order",
        title: "drop() before the second acquisition breaks the edge",
        files: &[(
            "crates/serve/src/demo.rs",
            r#"
fn ab(s: &S) {
    let a = s.alpha.lock().expect("a"); // lint: allow(panics)
    drop(a);
    let b = s.beta.lock().expect("b"); // lint: allow(panics)
    drop(b);
}
fn ba(s: &S) {
    let b = s.beta.lock().expect("b"); // lint: allow(panics)
    let a = s.alpha.lock().expect("a"); // lint: allow(panics)
    drop(a);
    drop(b);
}
"#,
        )],
        expect: 0,
    },
    Fixture {
        rule: "lock-order",
        title: "temporary guard dies at its statement; no edge to later locks",
        files: &[(
            "crates/serve/src/demo.rs",
            r#"
fn ab(s: &S) {
    s.alpha.lock().expect("a").step(); // lint: allow(panics)
    let b = s.beta.lock().expect("b"); // lint: allow(panics)
    drop(b);
}
fn ba(s: &S) {
    s.beta.lock().expect("b").step(); // lint: allow(panics)
    let a = s.alpha.lock().expect("a"); // lint: allow(panics)
    drop(a);
}
"#,
        )],
        expect: 0,
    },
    // --------------------------------------------------------- unsafe-audit
    Fixture {
        rule: "unsafe-audit",
        title: "unsafe in vendor/polling without SAFETY comment fires",
        files: &[(
            "vendor/polling/src/lib.rs",
            r#"
pub fn poll_once(fds: &mut [PollFd]) -> i32 {
    unsafe { sys_poll(fds.as_mut_ptr(), fds.len() as u64, 0) }
}
"#,
        )],
        expect: 1,
    },
    Fixture {
        rule: "unsafe-audit",
        title: "SAFETY comment block above the unsafe satisfies the audit",
        files: &[(
            "vendor/polling/src/lib.rs",
            r#"
pub fn poll_once(fds: &mut [PollFd]) -> i32 {
    // SAFETY: `fds` is a live, exclusively borrowed slice; the kernel
    // writes only within its length for the duration of the call.
    unsafe { sys_poll(fds.as_mut_ptr(), fds.len() as u64, 0) }
}
"#,
        )],
        expect: 0,
    },
    Fixture {
        rule: "unsafe-audit",
        title: "first-party crate root missing forbid(unsafe_code) fires",
        files: &[(
            "crates/demo/src/lib.rs",
            "//! Demo crate.\npub fn f() {}\n",
        )],
        expect: 1,
    },
    Fixture {
        rule: "unsafe-audit",
        title: "crate root declaring forbid(unsafe_code) is compliant",
        files: &[(
            "crates/demo/src/lib.rs",
            "//! Demo crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        )],
        expect: 0,
    },
    // --------------------------------------------------------------- growth
    Fixture {
        rule: "growth",
        title: "extend_from_slice with no capacity in scope fires",
        files: &[(
            "crates/serve/src/proto.rs",
            r#"
pub struct Dec { buf: Vec<u8> }
impl Dec {
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}
"#,
        )],
        expect: 1,
    },
    Fixture {
        rule: "growth",
        title: "a named capacity bound in the enclosing fn satisfies the rule",
        files: &[(
            "crates/serve/src/proto.rs",
            r#"
pub struct Dec { buf: Vec<u8> }
impl Dec {
    pub fn extend(&mut self, bytes: &[u8]) -> bool {
        if self.buf.len() + bytes.len() > MAX_FRAME {
            return false;
        }
        self.buf.extend_from_slice(bytes);
        true
    }
}
"#,
        )],
        expect: 0,
    },
    Fixture {
        rule: "growth",
        title: "literal pushes, markers, and test code are all exempt",
        files: &[(
            "crates/serve/src/chan.rs",
            r#"
pub struct Q { buf: Vec<u8> }
impl Q {
    pub fn tag(&mut self) {
        self.buf.push(7);
    }
    pub fn carry(&mut self, b: u8) {
        // Bounded by the sender's checked queue depth (cap enforced in
        // Sender::send before the value ever reaches this buffer).
        // lint: allow(growth)
        self.buf.push(b);
    }
}
#[cfg(test)]
mod tests {
    fn grow(v: &mut Vec<u8>, b: u8) { v.push(b); }
}
"#,
        )],
        expect: 0,
    },
    // --------------------------------------------------------------- probes
    Fixture {
        rule: "probes",
        title: "typo'd probe name not in the registry fires",
        files: &[
            (
                "crates/obs/src/probes.rs",
                "//! Probe registry.\npub const REGISTRY: &[Probe] = &[Probe {\n    name: \"serve.join.admitted\",\n    kind: ProbeKind::Counter,\n    help: \"Admitted joins; mentions serve.join.admited on purpose.\",\n}];\n",
            ),
            (
                "crates/serve/src/market.rs",
                "pub fn admit() {\n    mec_obs::counter_add(\"serve.join.admited\", 1);\n}\n",
            ),
        ],
        expect: 1,
    },
    Fixture {
        rule: "probes",
        title: "registered names and computed names are both fine",
        files: &[
            (
                "crates/obs/src/probes.rs",
                "//! Probe registry.\npub const REGISTRY: &[Probe] = &[Probe {\n    name: \"serve.join.admitted\",\n    kind: ProbeKind::Counter,\n    help: \"Admitted joins.\",\n}];\n",
            ),
            (
                "crates/serve/src/market.rs",
                "pub fn admit(name: &str) {\n    mec_obs::counter_add(\"serve.join.admitted\", 1);\n    mec_obs::record(name, 1);\n    obs_counter!(\"serve.join.admitted\", 1);\n}\n",
            ),
        ],
        expect: 0,
    },
    // --------------------------------------------------------------- panics
    Fixture {
        rule: "panics",
        title: "unwrap AFTER an inline #[cfg(test)] module is flagged (scoping fix)",
        files: &[(
            "crates/core/src/seeded.rs",
            r#"
fn before() -> u32 { 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(super::before(), 1);
    }
}
pub fn after(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#,
        )],
        expect: 1,
    },
    Fixture {
        rule: "panics",
        title: "mec-serve non-test code is now in scope",
        files: &[(
            "crates/serve/src/market.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        )],
        expect: 1,
    },
    Fixture {
        rule: "panics",
        title: "panic-looking text inside a multiline string is not code",
        files: &[(
            "crates/core/src/seeded.rs",
            "pub fn help() -> &'static str {\n    \"do not panic!(\n     or .unwrap() or .expect( anything\"\n}\n",
        )],
        expect: 0,
    },
    Fixture {
        rule: "panics",
        title: "unwrap_or_else is not unwrap; markers still suppress",
        files: &[(
            "crates/serve/src/chan.rs",
            r#"
pub fn a(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}
pub fn b(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(panics)
}
"#,
        )],
        expect: 0,
    },
    // ------------------------------------------------------------ float-cmp
    Fixture {
        rule: "float-cmp",
        title: "raw == against a float literal fires",
        files: &[(
            "crates/core/src/x.rs",
            "fn f(x: f64) -> bool {\n    x == 0.0\n}\n",
        )],
        expect: 1,
    },
    Fixture {
        rule: "float-cmp",
        title: "assert_eq! with a top-level float operand fires even in tests",
        files: &[(
            "crates/lp/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t(x: f64) {\n        assert_eq!(x, 1.5);\n    }\n}\n",
        )],
        expect: 1,
    },
    Fixture {
        rule: "float-cmp",
        title: "nested tolerance args, strings, and crates/num are all exempt",
        files: &[
            (
                "crates/lp/src/x.rs",
                "fn f(x: f64) {\n    assert!(approx_eq(x, 1.0, 1e-9));\n    let s = \"x == 1.0\";\n    assert_eq!(check(x, 1e-9), true);\n}\n",
            ),
            (
                "crates/num/src/approx.rs",
                "pub fn exact(x: f64) -> bool {\n    x == 0.0\n}\n",
            ),
            (
                "crates/core/src/bits.rs",
                "fn f(x: f64) {\n    assert_eq!(x.to_bits(), 0.4f64.to_bits());\n    let b = x.to_bits() == 0.25f64.to_bits();\n    assert!(b);\n}\n",
            ),
        ],
        expect: 0,
    },
    // --------------------------------------------------------- thread-spawn
    Fixture {
        rule: "thread-spawn",
        title: "ad-hoc std::thread::spawn fires",
        files: &[(
            "crates/sim/src/x.rs",
            "fn f() {\n    std::thread::spawn(|| {});\n}\n",
        )],
        expect: 1,
    },
    Fixture {
        rule: "thread-spawn",
        title: "the bench pool home and marked daemon threads are exempt",
        files: &[
            (
                "crates/bench/src/parallel.rs",
                "fn f() {\n    std::thread::spawn(|| {});\n}\n",
            ),
            (
                "crates/serve/src/server.rs",
                "fn f() {\n    // Daemon thread, joined via the handle.\n    // lint: allow(thread-spawn)\n    std::thread::spawn(|| {});\n}\n",
            ),
        ],
        expect: 0,
    },
];
