//! `unsafe-audit` — contain and justify every drop of unsafety.
//!
//! The workspace's threat model for unsafe code is simple: all of it
//! lives in `vendor/polling` (the poll(2) FFI shim), and none of it is
//! allowed anywhere else. Two checks enforce that:
//!
//! 1. **Justification.** Every `unsafe` keyword in `vendor/polling`
//!    (outside test code) must carry a `// SAFETY:` comment — inline on
//!    the same line or in the contiguous comment block directly above —
//!    stating why the invariants hold.
//! 2. **Containment.** Every first-party crate root (`src/lib.rs`,
//!    `src/main.rs`, and each `src/bin/*.rs` binary root outside
//!    `vendor/`) must declare `#![forbid(unsafe_code)]`, so a stray
//!    `unsafe` anywhere else is a *compile* error, not a review item.
//!
//! The containment check is structural (the inner attribute must be
//! present in the file), so deleting the attribute to sneak unsafety in
//! shows up in `cargo xtask analyze` even before a human reads the
//! diff.

use super::super::lexer::Kind;
use super::super::{Finding, SrcFile, Workspace};

/// Runs the rule over the workspace. See the module docs.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if f.path.starts_with("vendor/polling/") {
            audit_unsafe_comments(f, &mut out);
        }
        if is_first_party_crate_root(&f.path) && !declares_forbid_unsafe(f) {
            out.push(Finding {
                file: f.path.clone(),
                line: 1,
                rule: "unsafe-audit",
                excerpt: "crate root missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
    out
}

/// Every `unsafe` token needs a `SAFETY:` comment on its line or in the
/// contiguous comment block above it.
fn audit_unsafe_comments(f: &SrcFile, out: &mut Vec<Finding>) {
    for k in 0..f.sig.len() {
        let t = f.tok(k);
        if t.kind != Kind::Ident || t.text(&f.text) != "unsafe" {
            continue;
        }
        if f.items.in_test_code(t.start) {
            continue;
        }
        if !has_safety_comment(f, t.line as usize) {
            let mut fd = f.finding_at(k, "unsafe-audit");
            fd.excerpt = format!("unsafe without a // SAFETY: comment: {}", fd.excerpt);
            out.push(fd);
        }
    }
}

/// `SAFETY:` on line `line` (1-based) or in the contiguous `//` block
/// directly above — the same shape as the allow-marker contract.
fn has_safety_comment(f: &SrcFile, line: usize) -> bool {
    let lines: Vec<&str> = f.text.lines().collect();
    let idx = line.saturating_sub(1);
    if lines.get(idx).is_some_and(|l| l.contains("SAFETY:")) {
        return true;
    }
    let mut k = idx;
    while k > 0 && lines[k - 1].trim_start().starts_with("//") {
        k -= 1;
        if lines[k].contains("SAFETY:") {
            return true;
        }
    }
    false
}

/// Crate roots we require `#![forbid(unsafe_code)]` in: lib roots, bin
/// roots, and `src/bin/*` binaries — everywhere rustc accepts the inner
/// attribute — excluding vendored crates (the FFI shim *is* unsafe).
fn is_first_party_crate_root(path: &str) -> bool {
    if path.starts_with("vendor/") || path.starts_with("target/") {
        return false;
    }
    if path.ends_with("/src/lib.rs") || path == "src/lib.rs" {
        return true;
    }
    if path.ends_with("/src/main.rs") || path == "src/main.rs" {
        return true;
    }
    // src/bin/<name>.rs
    if let Some(pos) = path.rfind("/bin/") {
        let before = &path[..pos];
        let after = &path[pos + 5..];
        return before.ends_with("src") && after.ends_with(".rs") && !after.contains('/');
    }
    false
}

/// Token-level search for the inner attribute `#![forbid(unsafe_code)]`.
fn declares_forbid_unsafe(f: &SrcFile) -> bool {
    (0..f.sig.len().saturating_sub(7)).any(|k| {
        f.txt(k) == "#"
            && f.txt(k + 1) == "!"
            && f.txt(k + 2) == "["
            && f.txt(k + 3) == "forbid"
            && f.txt(k + 4) == "("
            && f.txt(k + 5) == "unsafe_code"
            && f.txt(k + 6) == ")"
            && f.txt(k + 7) == "]"
    })
}
