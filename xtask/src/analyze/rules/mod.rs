//! The rule implementations behind [`super::registry`], plus shared
//! token-pattern helpers and the seeded self-test fixtures.

pub mod blocking;
pub mod fixtures;
pub mod growth;
pub mod legacy;
pub mod locks;
pub mod probes;
pub mod unsafe_audit;

use super::items::{Item, ItemKind};
use super::SrcFile;

/// `true` if the workspace path is first-party source the general rules
/// apply to (not vendored stand-ins, build output, or the blessed
/// float-helper crate) — the same predicate `xtask lint` has always
/// used.
pub fn lintable(path: &str) -> bool {
    if !path.ends_with(".rs") {
        return false;
    }
    !(path.starts_with("vendor/") || path.starts_with("target/") || path.starts_with("crates/num/"))
}

/// `true` if significant tokens `k` and `k + 1` touch byte-to-byte
/// (needed to tell `==` from `= =` and `a.b` from `a . b` — in practice
/// to keep multi-char operators honest).
pub fn touching(f: &SrcFile, k: usize) -> bool {
    k + 1 < f.sig.len() && f.tok(k).end == f.tok(k + 1).start
}

/// Matches a method call `.name(` at significant index `k` (pointing at
/// the `.`): returns the method name token index when
/// `f.txt(k) == "."`, `f.tok(k+1)` is an ident, and `f.txt(k+2) == "("`.
pub fn method_call(f: &SrcFile, k: usize) -> Option<(usize, &str)> {
    if f.txt(k) != "." {
        return None;
    }
    let name_k = k + 1;
    if name_k + 1 >= f.sig.len() {
        return None;
    }
    if f.tok(name_k).kind != super::lexer::Kind::Ident || f.txt(name_k + 1) != "(" {
        return None;
    }
    Some((name_k, f.txt(name_k)))
}

/// Matches a path call `a::b(` ending at ident index `k`: returns `true`
/// when `f.txt(k)` is `last` preceded by `::` preceded by ident `first`,
/// and followed by `(`. Catches `thread::sleep(`, `mec_obs::record(`,
/// whatever the leading path prefix (`std::thread::sleep` still ends in
/// `thread :: sleep`).
pub fn path_call(f: &SrcFile, k: usize, first: &str, last: &str) -> bool {
    if f.txt(k) != last || f.tok(k).kind != super::lexer::Kind::Ident {
        return false;
    }
    if k + 1 >= f.sig.len() || f.txt(k + 1) != "(" {
        return false;
    }
    k >= 3 && f.txt(k - 1) == ":" && f.txt(k - 2) == ":" && f.txt(k - 3) == first
}

/// The innermost `fn` item whose byte-range contains `at`.
pub fn enclosing_fn(items: &[Item], at: usize) -> Option<&Item> {
    let mut best: Option<&Item> = None;
    fn rec<'a>(items: &'a [Item], at: usize, best: &mut Option<&'a Item>) {
        for it in items {
            if at >= it.bytes.0 && at < it.bytes.1 {
                if it.kind == ItemKind::Fn {
                    *best = Some(it);
                }
                rec(&it.children, at, best);
            }
        }
    }
    rec(items, at, &mut best);
    best
}
