//! `lock-order` — the acquired-while-held graph must be acyclic.
//!
//! A deadlock needs two threads taking the same two locks in opposite
//! orders. This rule approximates that hazard statically: every
//! function body is scanned linearly for mutex acquisitions, and each
//! acquisition made *while another guard is provably still live* adds
//! a directed edge `held → acquired` to a workspace-wide graph. A
//! cycle in that graph is a potential lock-order inversion and fails
//! the build.
//!
//! What counts as an acquisition:
//!
//! * `path.lock(…)` — a method call named `lock` on a dotted path
//!   (`self.chan.state.lock()`, `target.inbox.lock()`);
//! * `lock_ok(&path)` / `lock_ok(&mut path)` — the serve crate's
//!   poison-proceeding helper, whose first argument is the mutex path.
//!
//! The lock *key* is the path with any leading `self` stripped and
//! truncated to its last two segments — so `self.chan.state`,
//! `chan.state`, and `sender.chan.state` all collapse to `chan.state`,
//! which is the right granularity for a codebase that names its mutex
//! fields consistently (and is honest about being a syntactic
//! approximation: aliasing through arbitrary local names is not
//! tracked).
//!
//! Guard lifetime:
//!
//! * a let-bound guard (`let g = m.lock()…`) is held to the end of the
//!   enclosing block, or until `drop(g)`;
//! * a temporary (`m.lock().unwrap().push(x)`) is held to the end of
//!   the statement (the next `;` at the same bracket depth).
//!
//! Test code is scanned too: a test that takes locks in a conflicting
//! order is exactly as deadlock-prone as production code. Vendored
//! code is not scanned.

use super::super::lexer::Kind;
use super::super::{Finding, SrcFile, Workspace};
use super::method_call;
use std::collections::{BTreeMap, BTreeSet};

/// Runs the rule over the workspace. See the module docs.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    // edge (held, acquired) -> first site (file, line, excerpt-ish)
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for f in &ws.files {
        if f.path.starts_with("vendor/") || f.path.starts_with("target/") {
            continue;
        }
        for it in f.items.fns() {
            scan_fn(f, it.body_toks, &mut edges);
        }
    }

    // Cycle detection over the key graph.
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let adj: BTreeMap<&String, Vec<&String>> = {
        let mut m: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            m.entry(a).or_default().push(b);
        }
        m
    };
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in nodes {
        let mut path: Vec<&String> = Vec::new();
        // Simple DFS looking for a path back to `start`.
        if let Some(cycle) = dfs_cycle(start, start, &adj, &mut path) {
            let mut canon = cycle.clone();
            canon.sort();
            if !reported.insert(canon) {
                continue;
            }
            // Anchor the finding at the first edge of the cycle.
            let key = (cycle[0].clone(), cycle[1 % cycle.len()].clone());
            if let Some((file, line)) = edges.get(&key) {
                out.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: "lock-order",
                    excerpt: format!("lock-order cycle: {} -> {}", cycle.join(" -> "), cycle[0]),
                });
            }
        }
    }
    out
}

fn dfs_cycle<'a>(
    at: &'a String,
    start: &'a String,
    adj: &BTreeMap<&'a String, Vec<&'a String>>,
    path: &mut Vec<&'a String>,
) -> Option<Vec<String>> {
    if path.contains(&at) {
        // Found a loop; only report it if it returns to `start`.
        return (at == start).then(|| path.iter().map(|s| (*s).clone()).collect());
    }
    path.push(at);
    if let Some(next) = adj.get(at) {
        for n in next {
            if let Some(c) = dfs_cycle(n, start, adj, path) {
                path.pop();
                return Some(c);
            }
        }
    }
    path.pop();
    None
}

/// A live guard inside one function scan.
struct Held {
    key: String,
    /// Let-binding variable name, if any (releasable by `drop(var)`).
    var: Option<String>,
    /// Sig index at which the guard dies (end of statement or block).
    until: usize,
}

/// Scans one function body, recording acquired-while-held edges.
fn scan_fn(
    f: &SrcFile,
    (lo, hi): (usize, usize),
    edges: &mut BTreeMap<(String, String), (String, usize)>,
) {
    let mut held: Vec<Held> = Vec::new();
    let mut k = lo;
    while k < hi {
        held.retain(|h| h.until > k);

        // drop(var) releases a named guard.
        if f.txt(k) == "drop" && k + 2 < hi && f.txt(k + 1) == "(" {
            let var = f.txt(k + 2).to_string();
            held.retain(|h| h.var.as_deref() != Some(var.as_str()));
        }

        let acq = acquisition_at(f, k, hi).filter(|(key, _)| !key.is_empty());
        if let Some((key, path_start)) = acq {
            for h in &held {
                if h.key != key {
                    edges
                        .entry((h.key.clone(), key.clone()))
                        .or_insert_with(|| (f.path.clone(), f.tok(k).line as usize));
                }
            }
            let var = let_binding_before(f, path_start, lo);
            let until = if var.is_some() {
                end_of_block(f, k, hi)
            } else {
                end_of_statement(f, k, hi)
            };
            held.push(Held { key, var, until });
        }
        k += 1;
    }
}

/// Detects an acquisition whose `lock`/`lock_ok` ident sits at `k`.
/// Returns `(key, sig-index-of-path-start)`.
fn acquisition_at(f: &SrcFile, k: usize, hi: usize) -> Option<(String, usize)> {
    // `path.lock(` — `k` points at the `.` of the final `.lock(`.
    if let Some((_, "lock")) = method_call(f, k) {
        let (key, start) = dotted_path_before(f, k);
        return Some((key, start));
    }
    // `lock_ok(&path)` / `lock_ok(&mut path)`.
    if f.txt(k) == "lock_ok" && k + 2 < hi && f.txt(k + 1) == "(" {
        let mut j = k + 2;
        while j < hi && (f.txt(j) == "&" || f.txt(j) == "mut") {
            j += 1;
        }
        let (key, _) = dotted_path_from(f, j, hi);
        return Some((key, k));
    }
    None
}

/// Collects the dotted path ending just before the `.` at sig index `k`
/// (`a.b.c` for `a.b.c.lock(`). Returns `(key, path-start-index)`.
fn dotted_path_before(f: &SrcFile, k: usize) -> (String, usize) {
    let mut segs: Vec<String> = Vec::new();
    let mut j = k; // points at the final `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = j - 1;
        if f.tok(prev).kind == Kind::Ident {
            segs.push(f.txt(prev).to_string());
            if prev >= 2 && f.txt(prev - 1) == "." {
                j = prev - 1;
                continue;
            }
            j = prev;
        }
        break;
    }
    segs.reverse();
    (canonical_key(&segs), j)
}

/// Collects a dotted path starting at sig index `j` (`a.b.c` until a
/// non-path token). Returns `(key, index-after-path)`.
fn dotted_path_from(f: &SrcFile, mut j: usize, hi: usize) -> (String, usize) {
    let mut segs: Vec<String> = Vec::new();
    while j < hi && f.tok(j).kind == Kind::Ident {
        segs.push(f.txt(j).to_string());
        if j + 1 < hi && f.txt(j + 1) == "." {
            j += 2;
        } else {
            j += 1;
            break;
        }
    }
    (canonical_key(&segs), j)
}

/// `self`-stripped, last-two-segments lock key.
fn canonical_key(segs: &[String]) -> String {
    let segs: Vec<&String> = segs.iter().filter(|s| s.as_str() != "self").collect();
    let n = segs.len();
    let tail = &segs[n.saturating_sub(2)..];
    tail.iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(".")
}

/// If the tokens immediately before `path_start` are `let [mut] var =`,
/// returns `var`.
fn let_binding_before(f: &SrcFile, path_start: usize, lo: usize) -> Option<String> {
    if path_start < lo + 2 || f.txt(path_start - 1) != "=" {
        return None;
    }
    let var_k = path_start - 2;
    if f.tok(var_k).kind != Kind::Ident {
        return None;
    }
    let kw = var_k.checked_sub(1)?;
    let is_let = f.txt(kw) == "let" || (f.txt(kw) == "mut" && kw > lo && f.txt(kw - 1) == "let");
    is_let.then(|| f.txt(var_k).to_string())
}

/// Sig index of the `;` ending the statement containing `k` (tracking
/// bracket depth so `;` inside nested closures/blocks don't end it).
fn end_of_statement(f: &SrcFile, mut k: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    while k < hi {
        match f.txt(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            ";" if depth <= 0 => return k,
            _ => {}
        }
        k += 1;
    }
    hi
}

/// Sig index of the `}` closing the block containing `k`.
fn end_of_block(f: &SrcFile, mut k: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    while k < hi {
        match f.txt(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    hi
}
