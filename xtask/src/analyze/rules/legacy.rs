//! The original three lint rules (`panics`, `float-cmp`,
//! `thread-spawn`), ported from line scanning onto the token model.
//!
//! Semantics are unchanged except where the old implementation was
//! wrong and the token model fixes it:
//!
//! * string literals and block comments can no longer trip a rule
//!   (the old per-line stripper missed multiline strings and `/* */`);
//! * `#[cfg(test)]` exemption is scoped to the gated item's
//!   brace-matched extent (the old scanner exempted everything from
//!   the first marker to end of file, silently skipping non-test code
//!   after an inline test module);
//! * `panics` now also covers `crates/serve/src/` non-test code —
//!   daemon paths must surface protocol/`CacheError` failures instead
//!   of aborting a connection or market thread.
//!
//! The rules themselves:
//!
//! * `panics` — no `.unwrap(` / `.expect(` / `panic!(` in
//!   `crates/core/src/` or `crates/serve/src/` non-test code.
//! * `float-cmp` — no raw `==` / `!=` against float literals, and no
//!   `assert_eq!`/`assert_ne!` with a top-level float-literal operand,
//!   anywhere in first-party code (`crates/num` stays the one blessed
//!   home for exact float comparison).
//! * `thread-spawn` — no `thread::spawn` outside
//!   `crates/bench/src/parallel.rs` (ad-hoc threads bypass the
//!   bounded, panic-propagating pool) without a marker.

use super::super::lexer::{is_float_literal, Kind};
use super::super::{Finding, SrcFile, Workspace};
use super::{lintable, method_call, touching};

/// `panics` over the workspace.
pub fn run_panics(ws: &Workspace) -> Vec<Finding> {
    ws.files.iter().flat_map(panics_in_file).collect()
}

/// `float-cmp` over the workspace.
pub fn run_float_cmp(ws: &Workspace) -> Vec<Finding> {
    ws.files.iter().flat_map(float_cmp_in_file).collect()
}

/// `thread-spawn` over the workspace.
pub fn run_thread_spawn(ws: &Workspace) -> Vec<Finding> {
    ws.files.iter().flat_map(thread_spawn_in_file).collect()
}

/// `panics` findings for one file (unsuppressed).
pub fn panics_in_file(f: &SrcFile) -> Vec<Finding> {
    let in_scope = lintable(&f.path)
        && (f.path.starts_with("crates/core/src/") || f.path.starts_with("crates/serve/src/"));
    if !in_scope {
        return Vec::new();
    }
    let mut out = Vec::new();
    for k in 0..f.sig.len() {
        let site = match method_call(f, k) {
            Some((name_k, "unwrap" | "expect")) => Some(name_k),
            _ => {
                // `panic!(`
                let t = f.tok(k);
                (t.kind == Kind::Ident
                    && t.text(&f.text) == "panic"
                    && k + 2 < f.sig.len()
                    && f.txt(k + 1) == "!"
                    && f.txt(k + 2) == "(")
                    .then_some(k)
            }
        };
        if let Some(s) = site {
            if !f.items.in_test_code(f.tok(s).start) {
                out.push(f.finding_at(s, "panics"));
            }
        }
    }
    out
}

/// `float-cmp` findings for one file (unsuppressed). Applies in test
/// code too — approximate assertions belong everywhere.
pub fn float_cmp_in_file(f: &SrcFile) -> Vec<Finding> {
    if !lintable(&f.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for k in 0..f.sig.len() {
        if eq_op_at(f, k) && float_operand_around(f, k) {
            out.push(f.finding_at(k, "float-cmp"));
        }
        if assert_eq_with_float(f, k) {
            out.push(f.finding_at(k, "float-cmp"));
        }
    }
    out.dedup_by(|a, b| a.line == b.line);
    out
}

/// `thread-spawn` findings for one file (unsuppressed).
pub fn thread_spawn_in_file(f: &SrcFile) -> Vec<Finding> {
    if !lintable(&f.path) || f.path == "crates/bench/src/parallel.rs" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for k in 3..f.sig.len() {
        let t = f.tok(k);
        if t.kind == Kind::Ident
            && t.text(&f.text) == "spawn"
            && f.txt(k - 1) == ":"
            && f.txt(k - 2) == ":"
            && f.txt(k - 3) == "thread"
        {
            out.push(f.finding_at(k, "thread-spawn"));
        }
    }
    out
}

/// A raw `==` or `!=` operator with the `=`/`!` at sig index `k`.
fn eq_op_at(f: &SrcFile, k: usize) -> bool {
    let two =
        |a: &str| f.txt(k) == a && k + 1 < f.sig.len() && f.txt(k + 1) == "=" && touching(f, k);
    if !(two("=") || two("!")) {
        return false;
    }
    // Not part of a longer operator run (`<=`, `>=`, `..=`, `===`).
    if k > 0 && touching(f, k - 1) && matches!(f.txt(k - 1), "=" | "<" | ">" | "!" | ".") {
        return false;
    }
    if k + 2 < f.sig.len() && touching(f, k + 1) && f.txt(k + 2) == "=" {
        return false;
    }
    true
}

/// Float literal directly on either side of the operator at `k`
/// (allowing a unary `-` on the right).
fn float_operand_around(f: &SrcFile, k: usize) -> bool {
    if k > 0 && bare_float_at(f, k - 1) {
        return true;
    }
    let mut rhs = k + 2; // past `==`/`!=`
    if rhs < f.sig.len() && f.txt(rhs) == "-" {
        rhs += 1;
    }
    rhs < f.sig.len() && bare_float_at(f, rhs)
}

/// A float literal at sig index `j` that is itself the compared value —
/// not the receiver of a method call (`0.4f64.to_bits()` compares the
/// bit pattern exactly; the float never reaches the operator).
fn bare_float_at(f: &SrcFile, j: usize) -> bool {
    let t = f.tok(j);
    if t.kind != Kind::Num || !is_float_literal(t.text(&f.text)) {
        return false;
    }
    !(j + 2 < f.sig.len() && f.txt(j + 1) == "." && f.tok(j + 2).kind == Kind::Ident)
}

/// `assert_eq!(…)` / `assert_ne!(…)` at `k` with a float literal as a
/// *top-level* operand (depth 1 inside the macro parens — tolerance
/// args like `check(x, 1e-9)` sit deeper and are left alone).
fn assert_eq_with_float(f: &SrcFile, k: usize) -> bool {
    let t = f.tok(k);
    if t.kind != Kind::Ident
        || !matches!(t.text(&f.text), "assert_eq" | "assert_ne")
        || k + 2 >= f.sig.len()
        || f.txt(k + 1) != "!"
        || f.txt(k + 2) != "("
    {
        return false;
    }
    let mut depth = 0i64;
    let mut j = k + 2;
    while j < f.sig.len() {
        match f.txt(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            _ => {
                if depth == 1 && bare_float_at(f, j) {
                    return true;
                }
            }
        }
        j += 1;
    }
    false
}
