//! `io-blocking` — the event-loop I/O threads must never block.
//!
//! The serve data plane's tail-latency story (DESIGN.md §3g) rests on
//! one invariant: an I/O thread parked on *anything* — a sleep, a lock
//! held across a market batch, a channel receive — stalls every
//! connection multiplexed onto it. This rule makes the invariant
//! checkable: starting from the event-loop entry point `run_io` in
//! `crates/serve/src/eventloop.rs`, it builds the file-local call graph
//! (an ident followed by `(` that names another function in the file is
//! an edge — a deliberately syntactic approximation) and scans every
//! reachable function body for blocking calls:
//!
//! * `thread::sleep(` — any path spelling ending in `thread::sleep`;
//! * `.lock(` and `lock_ok(` — mutex acquisition (the brief
//!   completion-mailbox and inbox locks the design *does* allow carry
//!   `// lint: allow(io-blocking)` markers with their justification);
//! * `.recv(` / `.recv_timeout(` / `.recv_batch(` — channel receives
//!   (the market thread owns those; I/O threads get completions pushed
//!   to them);
//! * `.wait(` / `.wait_timeout(` — condvar waits;
//! * `.read_exact(` / `.read_to_end(` / `.read_to_string(` /
//!   `.write_all(` — the read/write shapes that loop until satisfied
//!   and therefore block even on a nonblocking socket's EWOULDBLOCK
//!   only by spinning; the event loop must use plain `read`/`write`
//!   and handle partial progress.
//!
//! Test code in the file is exempt (tests drive the loop from the
//! outside and may block freely).

use super::super::{Finding, Workspace};
use super::{method_call, path_call};
use std::collections::{HashMap, HashSet, VecDeque};

const FILE: &str = "crates/serve/src/eventloop.rs";
const ROOT_FN: &str = "run_io";

const BLOCKING_METHODS: &[&str] = &[
    "lock",
    "recv",
    "recv_timeout",
    "recv_batch",
    "wait",
    "wait_timeout",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
];

/// Runs the rule over the workspace. See the module docs.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !f.path.ends_with(FILE) {
            continue;
        }
        // All functions in the file, with their body sig-ranges.
        let fns: Vec<(&str, (usize, usize), bool)> = f
            .items
            .fns()
            .into_iter()
            .map(|it| (it.name.as_str(), it.body_toks, it.in_test))
            .collect();
        let names: HashSet<&str> = fns.iter().map(|(n, _, _)| *n).collect();

        // File-local call graph: fn -> fns it names in call position.
        let mut calls: HashMap<&str, HashSet<&str>> = HashMap::new();
        for (name, (lo, hi), _) in &fns {
            let callees = calls.entry(*name).or_default();
            for k in *lo..*hi {
                let t = f.tok(k);
                if t.kind == super::super::lexer::Kind::Ident
                    && k + 1 < f.sig.len()
                    && f.txt(k + 1) == "("
                {
                    let callee = f.txt(k);
                    if callee != *name && names.contains(callee) {
                        callees.insert(callee);
                    }
                }
            }
        }

        // Reachability from the event-loop roots.
        let mut reach: HashSet<&str> = HashSet::new();
        let mut queue: VecDeque<&str> = fns
            .iter()
            .filter(|(n, _, _)| *n == ROOT_FN)
            .map(|(n, _, _)| *n)
            .collect();
        while let Some(n) = queue.pop_front() {
            if !reach.insert(n) {
                continue;
            }
            if let Some(cs) = calls.get(n) {
                queue.extend(cs.iter().copied());
            }
        }

        for (name, (lo, hi), in_test) in &fns {
            if *in_test || !reach.contains(name) {
                continue;
            }
            for k in *lo..*hi {
                let hit = method_call(f, k)
                    .filter(|(_, m)| BLOCKING_METHODS.contains(m))
                    .map(|(name_k, _)| name_k)
                    .or_else(|| {
                        (path_call(f, k, "thread", "sleep")
                            || (f.txt(k) == "lock_ok"
                                && k + 1 < f.sig.len()
                                && f.txt(k + 1) == "("))
                            .then_some(k)
                    });
                if let Some(site) = hit {
                    out.push(f.finding_at(site, "io-blocking"));
                }
            }
        }
    }
    out
}
