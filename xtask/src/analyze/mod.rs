//! Token-aware static-analysis engine (`cargo xtask analyze`).
//!
//! The engine loads every `.rs` file in the repository into a
//! [`Workspace`]: raw text, the lossless token stream from [`lexer`],
//! and the brace-matched item model from [`items`]. A registry of
//! [`Rule`]s then runs over the workspace; each rule returns
//! [`Finding`]s, and the engine filters out findings suppressed by the
//! `// lint: allow(<rule>)` marker contract (inline on the offending
//! line, or anywhere in the contiguous `//` comment block directly
//! above it — the same contract `cargo xtask lint` has always had).
//!
//! Rules (see [`rules`] for each one's full story):
//!
//! * `io-blocking` — nothing that blocks (sleeps, lock waits,
//!   blocking reads, channel receives) reachable from the event-loop
//!   entry point `run_io` in `crates/serve/src/eventloop.rs`.
//! * `lock-order` — the workspace-wide acquired-while-held graph over
//!   `Mutex` lock sites must be acyclic.
//! * `unsafe-audit` — every `unsafe` in `vendor/polling` carries a
//!   `// SAFETY:` justification, and every first-party crate root
//!   declares `#![forbid(unsafe_code)]`.
//! * `growth` — pushes into connection-scoped buffers in the serve
//!   data plane must sit in functions that visibly check a capacity.
//! * `probes` — obs probe names at instrumentation sites must appear
//!   in the registry `crates/obs/src/probes.rs` declares.
//! * `panics`, `float-cmp`, `thread-spawn` — the original lint rules,
//!   ported onto the token model (no more string-literal false
//!   positives, and `#[cfg(test)]` exemption scoped to the gated
//!   item's brace extent instead of running to end of file).
//!
//! Every rule has seeded self-test fixtures ([`self_test`]) proving it
//! both fires on a violation and stays quiet on the compliant twin.

pub mod items;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::path::Path;

use items::FileItems;
use lexer::Tok;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path (`/`-separated) of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// The offending line (trimmed), or a rule-specific description.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// One loaded source file: text, tokens, significant-token index, item
/// model, and the split lines the allow-marker check runs against.
pub struct SrcFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// Full file contents.
    pub text: String,
    /// Lossless token stream.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of the significant tokens, in order.
    pub sig: Vec<usize>,
    /// Brace-matched item model with test-extent resolution.
    pub items: FileItems,
}

impl SrcFile {
    /// Lexes and models `text` as the file at workspace-relative `path`.
    pub fn new(path: String, text: String) -> SrcFile {
        let toks = lexer::lex(&text);
        let sig = lexer::significant(&toks);
        let items = items::build(&text, &toks);
        SrcFile {
            path,
            text,
            toks,
            sig,
            items,
        }
    }

    /// The significant token at `sig[k]`.
    pub fn tok(&self, k: usize) -> &Tok {
        &self.toks[self.sig[k]]
    }

    /// Text of the significant token at `sig[k]`.
    pub fn txt(&self, k: usize) -> &str {
        self.tok(k).text(&self.text)
    }

    /// Trimmed source line `line` (1-based), for excerpts.
    pub fn line_text(&self, line: usize) -> String {
        self.text
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
            .to_string()
    }

    /// A finding at significant-token `k` in this file.
    pub fn finding_at(&self, k: usize, rule: &'static str) -> Finding {
        let line = self.tok(k).line as usize;
        Finding {
            file: self.path.clone(),
            line,
            rule,
            excerpt: self.line_text(line),
        }
    }

    /// `true` if line `line` (1-based) carries `// lint: allow(<rule>)`
    /// inline or in the contiguous `//` comment block directly above.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        let marker = format!("lint: allow({rule})");
        let lines: Vec<&str> = self.text.lines().collect();
        let idx = line.saturating_sub(1);
        if lines.get(idx).is_some_and(|l| l.contains(&marker)) {
            return true;
        }
        let mut k = idx;
        while k > 0 && lines[k - 1].trim_start().starts_with("//") {
            k -= 1;
            if lines[k].contains(&marker) {
                return true;
            }
        }
        false
    }
}

/// Every `.rs` file in the repository, loaded and modeled. Rules pick
/// the subset they apply to by path.
pub struct Workspace {
    /// Loaded files, sorted by path.
    pub files: Vec<SrcFile>,
}

impl Workspace {
    /// Loads the repository at `root` (skips `target/` and `.git/`;
    /// vendored code IS loaded — the unsafe audit needs it).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from walking or reading.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut rels = Vec::new();
        collect_rs(root, root, &mut rels)?;
        rels.sort();
        let mut files = Vec::new();
        for rel in rels {
            let text = std::fs::read_to_string(root.join(&rel))?;
            files.push(SrcFile::new(rel, text));
        }
        Ok(Workspace { files })
    }

    /// Builds an in-memory workspace from `(path, contents)` pairs — the
    /// self-test fixture constructor.
    pub fn from_fixtures(fixtures: &[(&str, &str)]) -> Workspace {
        let files = fixtures
            .iter()
            .map(|(p, s)| SrcFile::new((*p).to_string(), (*s).to_string()))
            .collect();
        Workspace { files }
    }

    /// The file at exactly `path`, if loaded.
    pub fn file(&self, path: &str) -> Option<&SrcFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// One analysis rule: a name (the allow-marker key) and its pass.
pub struct Rule {
    /// Rule name as used in `// lint: allow(<name>)`.
    pub name: &'static str,
    /// The pass. Returns raw findings; the engine applies suppression.
    pub run: fn(&Workspace) -> Vec<Finding>,
}

/// The full rule registry, in report order.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            name: "io-blocking",
            run: rules::blocking::run,
        },
        Rule {
            name: "lock-order",
            run: rules::locks::run,
        },
        Rule {
            name: "unsafe-audit",
            run: rules::unsafe_audit::run,
        },
        Rule {
            name: "growth",
            run: rules::growth::run,
        },
        Rule {
            name: "probes",
            run: rules::probes::run,
        },
        Rule {
            name: "panics",
            run: rules::legacy::run_panics,
        },
        Rule {
            name: "float-cmp",
            run: rules::legacy::run_float_cmp,
        },
        Rule {
            name: "thread-spawn",
            run: rules::legacy::run_thread_spawn,
        },
    ]
}

/// Runs every registry rule over `ws`, applying allow-marker
/// suppression, and returns the surviving findings sorted by location.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in registry() {
        for f in (rule.run)(ws) {
            let suppressed = ws
                .file(&f.file)
                .is_some_and(|file| file.allowed(f.line, f.rule));
            if !suppressed {
                out.push(f);
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Seeded per-rule fixtures: every rule must fire on its violation
/// fixture and stay quiet on the compliant twin. This is the proof the
/// pass bites — CI runs it next to the workspace pass.
///
/// # Errors
///
/// Returns a description of the first fixture whose finding count is
/// wrong.
pub fn self_test() -> Result<(), String> {
    let mut per_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (k, case) in rules::fixtures::ALL.iter().enumerate() {
        let ws = Workspace::from_fixtures(case.files);
        let findings = run_all(&ws);
        let hits = findings.iter().filter(|f| f.rule == case.rule).count();
        if hits != case.expect {
            return Err(format!(
                "fixture {k} ({}: {}): expected {} finding(s) for rule {}, got {hits}: {findings:?}",
                case.rule, case.title, case.expect, case.rule
            ));
        }
        let e = per_rule.entry(case.rule).or_insert((0, 0));
        if case.expect > 0 {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }
    // Every registry rule needs at least one firing fixture and one
    // clean/suppressed fixture — a rule without both is unproven.
    for rule in registry() {
        let (fire, quiet) = per_rule.get(rule.name).copied().unwrap_or((0, 0));
        if fire == 0 || quiet == 0 {
            return Err(format!(
                "rule {} lacks fixtures (firing: {fire}, quiet: {quiet})",
                rule.name
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        if let Err(e) = self_test() {
            panic!("{e}");
        }
    }

    #[test]
    fn allow_marker_contract() {
        let f = SrcFile::new(
            "x.rs".into(),
            "fn f() {\n    // rationale\n    // lint: allow(demo)\n    bad();\n    worse();\n}\n"
                .into(),
        );
        assert!(f.allowed(4, "demo"), "comment block above suppresses");
        assert!(!f.allowed(5, "demo"), "non-comment line breaks the block");
        assert!(!f.allowed(4, "other"), "marker is per-rule");
    }

    #[test]
    fn workspace_loads_real_repo_and_roundtrips() {
        // Lossless re-lex of every workspace file: the foundation every
        // rule stands on, checked against the real tree.
        let root = crate::repo_root();
        let ws = Workspace::load(&root).expect("workspace loads");
        assert!(ws.files.len() > 50, "repo has many .rs files");
        for f in &ws.files {
            let rebuilt: String = f.toks.iter().map(|t| t.text(&f.text)).collect();
            assert_eq!(rebuilt, f.text, "lossless lexing failed for {}", f.path);
            // Token line numbers agree with an independent newline scan —
            // the property every finding's reported location rests on.
            let mut line = 1u32;
            let mut at = 0usize;
            for t in &f.toks {
                line += f.text[at..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
                at = t.start;
                assert_eq!(t.line, line, "line drift at byte {at} of {}", f.path);
            }
        }
    }

    #[test]
    fn workspace_is_clean_under_all_rules() {
        let root = crate::repo_root();
        let ws = Workspace::load(&root).expect("workspace loads");
        let findings = run_all(&ws);
        assert!(
            findings.is_empty(),
            "workspace must be analyze-clean:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
