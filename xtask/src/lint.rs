//! The repository lint rules.
//!
//! Three rules, all plain line scanning (no syntax tree — the rules are
//! chosen so a line-level approximation is reliable for this codebase):
//!
//! * `panics` — no `unwrap()` / `expect(` / `panic!(` in `mec-core`
//!   non-test code. Library paths must surface `mec_core::CacheError`
//!   instead of aborting the caller.
//! * `float-cmp` — no raw `==` / `!=` against float literals and no
//!   `assert_eq!`/`assert_ne!` on float-literal operands anywhere in the
//!   workspace's own crates. Use `mec_num::approx_eq` /
//!   `assert_approx_eq!` (the one blessed home for exact float
//!   comparison is `crates/num` itself, which is exempt).
//! * `thread-spawn` — no `thread::spawn` outside
//!   `crates/bench/src/parallel.rs`: ad-hoc threading bypasses the
//!   bounded, panic-propagating pool the sweeps standardize on.
//!
//! Suppression: append `// lint: allow(<rule>)` to the offending line,
//! or put the marker anywhere in the contiguous `//` comment block
//! immediately above it.
//!
//! Lines inside comments are never flagged; test code (everything from
//! the first `#[cfg(test)]` marker to end of file — test modules sit at
//! the bottom of every file in this repo) is exempt from `panics` but
//! not from the other rules.

use std::path::Path;

/// One rule violation at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (`panics`, `float-cmp`, `thread-spawn`).
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// `true` if `path` (repo-relative, `/`-separated) is subject to linting
/// at all: the workspace's own source, not vendored stand-ins, build
/// output, or the blessed float-helper crate.
pub fn lintable(path: &str) -> bool {
    if !path.ends_with(".rs") {
        return false;
    }
    !(path.starts_with("vendor/") || path.starts_with("target/") || path.starts_with("crates/num/"))
}

/// Lints one file's contents; `path` must be repo-relative with `/`
/// separators. Returns every finding not suppressed by an allow marker.
pub fn lint_file(path: &str, contents: &str) -> Vec<Finding> {
    let lines: Vec<&str> = contents.lines().collect();
    let mut out = Vec::new();
    let core_non_test = path.starts_with("crates/core/src/");
    let spawn_exempt = path == "crates/bench/src/parallel.rs";
    let mut in_tests = false;

    for (idx, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if is_comment(trimmed) {
            continue;
        }
        let code = strip_strings_and_comments(raw);

        let mut flag = |rule: &'static str| {
            if !allowed(&lines, idx, rule) {
                out.push(Finding {
                    file: path.to_string(),
                    line: idx + 1,
                    rule,
                    excerpt: trimmed.to_string(),
                });
            }
        };

        if core_non_test && !in_tests && has_panic_site(&code) {
            flag("panics");
        }
        if has_float_cmp(&code) {
            flag("float-cmp");
        }
        if !spawn_exempt && code.contains("thread::spawn") {
            flag("thread-spawn");
        }
    }
    out
}

/// Lints every lintable `.rs` file under `root` (the repo checkout).
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        if !lintable(&rel) {
            continue;
        }
        let contents = std::fs::read_to_string(root.join(&rel))?;
        out.extend(lint_file(&rel, &contents));
    }
    Ok(out)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Prune the heavyweight non-source trees at the top.
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

fn is_comment(trimmed: &str) -> bool {
    trimmed.starts_with("//")
}

/// `true` if line `idx` carries `// lint: allow(<rule>)` inline or in the
/// contiguous comment block directly above it.
fn allowed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("lint: allow({rule})");
    if lines[idx].contains(&marker) {
        return true;
    }
    let mut k = idx;
    while k > 0 && is_comment(lines[k - 1].trim()) {
        k -= 1;
        if lines[k].contains(&marker) {
            return true;
        }
    }
    false
}

/// Blanks out string-literal contents and cuts the line at a `//`
/// comment, so operators inside strings or comments are not matched.
/// Handles escapes; raw strings are treated as plain (good enough here).
fn strip_strings_and_comments(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    let _ = chars.next(); // skip the escaped char
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
        } else {
            match c {
                '"' => {
                    in_str = true;
                    out.push('"');
                }
                '/' if chars.peek() == Some(&'/') => break,
                _ => out.push(c),
            }
        }
    }
    out
}

fn has_panic_site(code: &str) -> bool {
    code.contains(".unwrap()") || code.contains(".expect(") || code.contains("panic!(")
}

/// Detects `== <float-lit>` / `<float-lit> ==` (and `!=`), plus
/// `assert_eq!` / `assert_ne!` invocations whose argument list contains a
/// bare float literal.
fn has_float_cmp(code: &str) -> bool {
    let bytes = code.as_bytes();
    for op in ["==", "!="] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(op) {
            let at = from + pos;
            from = at + op.len();
            // `=>`, `<=`, `>=`, `..=` must not reach here: `==`/`!=` only.
            // Exclude `!==`/`===` style runs (not valid Rust anyway).
            if at > 0 && matches!(bytes[at - 1], b'=' | b'<' | b'>' | b'!') {
                continue;
            }
            if bytes.get(at + op.len()) == Some(&b'=') {
                continue;
            }
            if float_before(&code[..at]) || float_after(&code[at + op.len()..]) {
                return true;
            }
        }
    }
    for mac in ["assert_eq!", "assert_ne!"] {
        if let Some(pos) = code.find(mac) {
            if args_contain_float_literal(&code[pos + mac.len()..]) {
                return true;
            }
        }
    }
    false
}

fn float_before(prefix: &str) -> bool {
    let token: String = prefix
        .trim_end()
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_'))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    is_float_literal(&token)
}

fn float_after(suffix: &str) -> bool {
    let mut rest = suffix.trim_start();
    rest = rest.strip_prefix('-').unwrap_or(rest);
    let token: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_'))
        .collect();
    is_float_literal(&token)
}

/// Scans a macro argument tail for a float literal appearing as a
/// *top-level* operand (depth 1 inside the macro parentheses). Literals
/// nested deeper — tolerance arguments like `check(x, 1e-9)`, tuple or
/// constructor operands like `Range::new(15.0, 30.0)` — are not the
/// comparison's operand and are left to human judgement.
/// Identifier-led tokens (`x1`, `sp.cost`) accumulate as one token and
/// never classify as literals, so only bare `1.5`-style operands match.
fn args_contain_float_literal(tail: &str) -> bool {
    let open = match tail.find('(') {
        Some(k) => k,
        None => return false,
    };
    let mut depth = 1usize;
    let mut token = String::new();
    for c in tail[open + 1..].chars().chain(std::iter::once('\n')) {
        if depth == 1 && (c.is_ascii_alphanumeric() || matches!(c, '.' | '_')) {
            token.push(c);
            continue;
        }
        if is_float_literal(&token) {
            return true;
        }
        token.clear();
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
    }
    false
}

/// `1.0`, `0.5f64`, `1_000.25`, `1e-9`, `2.5E3` — but not `3` (integer),
/// not identifiers, not method chains like `x.abs`.
fn is_float_literal(token: &str) -> bool {
    let t = token
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .replace('_', "");
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) || t.contains("..") {
        return false; // `0..2` is a range, not a literal
    }
    let has_marker = t.contains('.') || t.contains('e') || t.contains('E');
    has_marker
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
}

/// Seeded-violation snippets for the self-test: each MUST be flagged, and
/// each suppressed twin MUST NOT. Proves the pass actually bites.
pub fn self_test() -> Result<(), String> {
    let cases: &[(&str, &str, &str, usize)] = &[
        (
            "panics",
            "crates/core/src/seeded.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            1,
        ),
        (
            "panics",
            "crates/core/src/seeded.rs",
            "pub fn f() {\n    panic!(\"boom\");\n}\n",
            1,
        ),
        (
            "panics",
            "crates/core/src/seeded.rs",
            // Suppressed by an inline marker.
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // lint: allow(panics)\n}\n",
            0,
        ),
        (
            "panics",
            "crates/core/src/seeded.rs",
            // Test code is exempt.
            "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n",
            0,
        ),
        (
            "float-cmp",
            "crates/core/src/seeded.rs",
            "fn f(x: f64) -> bool {\n    x == 0.0\n}\n",
            1,
        ),
        (
            "float-cmp",
            "crates/lp/src/seeded.rs",
            "fn f(x: f64) {\n    assert_eq!(x, 1.5);\n}\n",
            1,
        ),
        (
            "float-cmp",
            "crates/lp/src/seeded.rs",
            // Comment block above suppresses.
            "fn f(x: f64) -> bool {\n    // exact-zero guard is intended here\n    // lint: allow(float-cmp)\n    x != 0.0\n}\n",
            0,
        ),
        (
            "float-cmp",
            "crates/lp/src/revised.rs",
            // The sparse revised-simplex module is NOT exempt: a raw
            // float compare in a fresh pivot routine must be flagged.
            "fn skip_zero(v: f64) -> bool {\n    v != 0.0\n}\n",
            1,
        ),
        (
            "float-cmp",
            "crates/lp/src/revised.rs",
            // ... but the intentional pivot-tolerance style comparison
            // carries the marker, exactly as the real module does.
            "fn skip_zero(v: f64) -> bool {\n    // Exact zero-skip while gathering the CSC columns.\n    // lint: allow(float-cmp)\n    v != 0.0\n}\n",
            0,
        ),
        (
            "thread-spawn",
            "crates/lp/src/revised.rs",
            // Ad-hoc threads in the LP layer bypass the bounded pool.
            "fn f() {\n    std::thread::spawn(|| {});\n}\n",
            1,
        ),
        (
            "thread-spawn",
            "crates/sim/src/seeded.rs",
            "fn f() {\n    std::thread::spawn(|| {});\n}\n",
            1,
        ),
        (
            "thread-spawn",
            "crates/bench/src/parallel.rs",
            // The one blessed home for the worker pool.
            "fn f() {\n    std::thread::spawn(|| {});\n}\n",
            0,
        ),
        (
            "thread-spawn",
            "crates/serve/src/server.rs",
            // The daemon's long-lived threads (market, acceptor,
            // per-connection) are intentional and carry the marker in the
            // comment block above the spawn — the style server.rs uses.
            "fn f() {\n    // Acceptor thread: owns the listener.\n    // lint: allow(thread-spawn)\n    std::thread::spawn(|| {});\n}\n",
            0,
        ),
        (
            "thread-spawn",
            "crates/serve/src/server.rs",
            // A marker inside the spawned closure does NOT suppress: it
            // must sit on the spawn line or in the block above it.
            "fn f() {\n    std::thread::spawn(|| {\n        // lint: allow(thread-spawn)\n    });\n}\n",
            1,
        ),
        (
            "thread-spawn",
            "crates/serve/src/chan.rs",
            // Inline marker on the spawn line itself (the style the
            // channel tests use).
            "fn f() {\n    let t = std::thread::spawn(move || 1); // lint: allow(thread-spawn)\n}\n",
            0,
        ),
    ];
    for (k, &(rule, path, src, want)) in cases.iter().enumerate() {
        let found = lint_file(path, src);
        let hits = found.iter().filter(|f| f.rule == rule).count();
        if hits != want {
            return Err(format!(
                "self-test case {k} ({rule} in {path}): expected {want} finding(s), got {hits}: {found:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        self_test().unwrap();
    }

    #[test]
    fn float_literal_recognition() {
        for t in ["1.0", "0.5f64", "1_000.25", "1e-9", "2.5E3"] {
            assert!(is_float_literal(t), "{t} should be a float literal");
        }
        for t in ["3", "x", "x.abs", "f64", "", "0x2e", "sp4"] {
            assert!(!is_float_literal(t), "{t} should NOT be a float literal");
        }
    }

    #[test]
    fn operators_that_are_not_eq_are_ignored() {
        for line in [
            "if x <= 1.0 {",
            "if x >= 0.5 {",
            "let y = x * 2.0;",
            "match x { 1 => 2.0, _ => 3.0 }",
            "for i in 0..2 {",
        ] {
            assert!(!has_float_cmp(line), "false positive on: {line}");
        }
    }

    #[test]
    fn eq_against_identifiers_is_fine() {
        assert!(!has_float_cmp("if a == b {"));
        assert!(!has_float_cmp("assert_eq!(a, b);"));
        assert!(!has_float_cmp("assert_eq!(out.len(), 3);"));
    }

    #[test]
    fn eq_against_literals_is_flagged_either_side() {
        assert!(has_float_cmp("if 0.0 == x {"));
        assert!(has_float_cmp("if x != 1e-9 {"));
        assert!(has_float_cmp("assert_eq!(cost, 2.5 + 0.5);"));
        assert!(has_float_cmp("assert_ne!(cost, -1.0);"));
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let f = lint_file(
            "crates/core/src/x.rs",
            "fn f() {\n    let s = \"a == 1.0 and panic!(\";\n    // x.unwrap() == 2.0\n}\n",
        );
        assert_eq!(f, vec![]);
    }

    #[test]
    fn vendor_and_num_are_exempt() {
        assert!(!lintable("vendor/rand/src/lib.rs"));
        assert!(!lintable("crates/num/src/lib.rs"));
        assert!(!lintable("target/debug/build.rs"));
        assert!(lintable("crates/core/src/game.rs"));
        assert!(lintable("src/bin/mec.rs"));
    }

    #[test]
    fn findings_render_with_location() {
        let f = lint_file("crates/core/src/x.rs", "fn f() { panic!(\"x\") }\n");
        assert_eq!(f.len(), 1);
        let s = f[0].to_string();
        assert!(s.contains("crates/core/src/x.rs:1"), "{s}");
        assert!(s.contains("[panics]"), "{s}");
    }
}
