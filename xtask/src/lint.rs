//! `cargo xtask lint` — the original three-rule lint pass, now running
//! on the token-aware engine in [`crate::analyze`].
//!
//! The rules (`panics`, `float-cmp`, `thread-spawn`) and the
//! `// lint: allow(<rule>)` suppression contract are unchanged; see
//! [`crate::analyze::rules::legacy`] for their exact semantics and for
//! what the port fixed (string/comment false positives, `#[cfg(test)]`
//! exemption scoped to the gated item instead of running to end of
//! file, `panics` coverage extended to `mec-serve`).
//!
//! `cargo xtask analyze` runs these three plus the concurrency, unsafe,
//! growth, and probe-registry rules; `lint` stays as the fast
//! three-rule subset and the stable entry point CI has always called.

use std::path::Path;

use crate::analyze::rules::legacy;
use crate::analyze::{SrcFile, Workspace};

pub use crate::analyze::Finding;

/// Lints one file's contents; `path` must be repo-relative with `/`
/// separators. Returns every finding not suppressed by an allow marker.
pub fn lint_file(path: &str, contents: &str) -> Vec<Finding> {
    let f = SrcFile::new(path.to_string(), contents.to_string());
    findings_for(&f)
}

fn findings_for(f: &SrcFile) -> Vec<Finding> {
    let mut out = legacy::panics_in_file(f);
    out.extend(legacy::float_cmp_in_file(f));
    out.extend(legacy::thread_spawn_in_file(f));
    out.retain(|fd| !f.allowed(fd.line, fd.rule));
    out.sort_by_key(|fd| (fd.line, fd.rule));
    out
}

/// Lints every lintable `.rs` file under `root` (the repo checkout).
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let ws = Workspace::load(root)?;
    let mut out = Vec::new();
    for f in &ws.files {
        out.extend(findings_for(f));
    }
    Ok(out)
}

/// Seeded-violation snippets for the self-test: each MUST be flagged, and
/// each suppressed twin MUST NOT. Proves the pass actually bites.
///
/// # Errors
///
/// Returns a description of the first case with a wrong finding count.
pub fn self_test() -> Result<(), String> {
    let cases: &[(&str, &str, &str, usize)] = &[
        (
            "panics",
            "crates/core/src/seeded.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            1,
        ),
        (
            "panics",
            "crates/core/src/seeded.rs",
            "pub fn f() {\n    panic!(\"boom\");\n}\n",
            1,
        ),
        (
            "panics",
            "crates/core/src/seeded.rs",
            // Suppressed by an inline marker.
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // lint: allow(panics)\n}\n",
            0,
        ),
        (
            "panics",
            "crates/core/src/seeded.rs",
            // Test code is exempt.
            "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n",
            0,
        ),
        (
            "panics",
            "crates/core/src/seeded.rs",
            // The scoping fix: non-test code AFTER an inline test module
            // is NOT exempt (the old line scanner let this through).
            "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            1,
        ),
        (
            "panics",
            "crates/serve/src/seeded.rs",
            // The serve daemon is in scope now: connection/market paths
            // must surface errors, not abort their thread.
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            1,
        ),
        (
            "panics",
            "crates/core/src/seeded.rs",
            // A multiline string literal is not code (the old per-line
            // stripper could not see this).
            "pub fn help() -> &'static str {\n    \"never panic!(\n     or .unwrap() anything\"\n}\n",
            0,
        ),
        (
            "float-cmp",
            "crates/core/src/seeded.rs",
            "fn f(x: f64) -> bool {\n    x == 0.0\n}\n",
            1,
        ),
        (
            "float-cmp",
            "crates/lp/src/seeded.rs",
            "fn f(x: f64) {\n    assert_eq!(x, 1.5);\n}\n",
            1,
        ),
        (
            "float-cmp",
            "crates/lp/src/seeded.rs",
            // Comment block above suppresses.
            "fn f(x: f64) -> bool {\n    // exact-zero guard is intended here\n    // lint: allow(float-cmp)\n    x != 0.0\n}\n",
            0,
        ),
        (
            "float-cmp",
            "crates/lp/src/revised.rs",
            // The sparse revised-simplex module is NOT exempt: a raw
            // float compare in a fresh pivot routine must be flagged.
            "fn skip_zero(v: f64) -> bool {\n    v != 0.0\n}\n",
            1,
        ),
        (
            "float-cmp",
            "crates/lp/src/revised.rs",
            // ... but the intentional pivot-tolerance style comparison
            // carries the marker, exactly as the real module does.
            "fn skip_zero(v: f64) -> bool {\n    // Exact zero-skip while gathering the CSC columns.\n    // lint: allow(float-cmp)\n    v != 0.0\n}\n",
            0,
        ),
        (
            "thread-spawn",
            "crates/lp/src/revised.rs",
            // Ad-hoc threads in the LP layer bypass the bounded pool.
            "fn f() {\n    std::thread::spawn(|| {});\n}\n",
            1,
        ),
        (
            "thread-spawn",
            "crates/sim/src/seeded.rs",
            "fn f() {\n    std::thread::spawn(|| {});\n}\n",
            1,
        ),
        (
            "thread-spawn",
            "crates/bench/src/parallel.rs",
            // The one blessed home for the worker pool.
            "fn f() {\n    std::thread::spawn(|| {});\n}\n",
            0,
        ),
        (
            "thread-spawn",
            "crates/serve/src/server.rs",
            // The daemon's long-lived threads (market, acceptor,
            // per-connection) are intentional and carry the marker in the
            // comment block above the spawn — the style server.rs uses.
            "fn f() {\n    // Acceptor thread: owns the listener.\n    // lint: allow(thread-spawn)\n    std::thread::spawn(|| {});\n}\n",
            0,
        ),
        (
            "thread-spawn",
            "crates/serve/src/server.rs",
            // A marker inside the spawned closure does NOT suppress: it
            // must sit on the spawn line or in the block above it.
            "fn f() {\n    std::thread::spawn(|| {\n        // lint: allow(thread-spawn)\n    });\n}\n",
            1,
        ),
        (
            "thread-spawn",
            "crates/serve/src/chan.rs",
            // Inline marker on the spawn line itself (the style the
            // channel tests use).
            "fn f() {\n    let t = std::thread::spawn(move || 1); // lint: allow(thread-spawn)\n}\n",
            0,
        ),
    ];
    for (k, &(rule, path, src, want)) in cases.iter().enumerate() {
        let found = lint_file(path, src);
        let hits = found.iter().filter(|f| f.rule == rule).count();
        if hits != want {
            return Err(format!(
                "self-test case {k} ({rule} in {path}): expected {want} finding(s), got {hits}: {found:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        if let Err(e) = self_test() {
            panic!("{e}");
        }
    }

    #[test]
    fn operators_that_are_not_eq_are_ignored() {
        for body in [
            "if x <= 1.0 { g(); }",
            "if x >= 0.5 { g(); }",
            "let y = x * 2.0;",
            "let z = match n { 1 => 2.0, _ => 3.0 };",
            "for i in 0..2 { g(); }",
        ] {
            let src = format!("fn f(x: f64, n: u32) {{\n    {body}\n}}\n");
            let found = lint_file("crates/core/src/x.rs", &src);
            assert!(
                !found.iter().any(|f| f.rule == "float-cmp"),
                "false positive on: {body}: {found:?}"
            );
        }
    }

    #[test]
    fn eq_against_identifiers_is_fine() {
        let src = "fn f(a: f64, b: f64, out: Vec<u32>) {\n    let _ = a == b;\n    assert_eq!(a, b);\n    assert_eq!(out.len(), 3);\n}\n";
        assert_eq!(lint_file("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn eq_against_literals_is_flagged_either_side() {
        for body in [
            "let _ = 0.0 == x;",
            "let _ = x != 1e-9;",
            "assert_eq!(cost, 2.5 + 0.5);",
            "assert_ne!(cost, -1.0);",
        ] {
            let src = format!("fn f(x: f64, cost: f64) {{\n    {body}\n}}\n");
            let found = lint_file("crates/sim/src/x.rs", &src);
            assert_eq!(
                found.iter().filter(|f| f.rule == "float-cmp").count(),
                1,
                "missed: {body}"
            );
        }
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let f = lint_file(
            "crates/core/src/x.rs",
            "fn f() {\n    let s = \"a == 1.0 and panic!(\";\n    // x.unwrap() == 2.0\n    let _ = s;\n}\n",
        );
        assert_eq!(f, vec![]);
    }

    #[test]
    fn block_comments_do_not_trip_rules() {
        let f = lint_file(
            "crates/core/src/x.rs",
            "fn f() {\n    /* x.unwrap() == 2.0\n       panic!(\"no\") */\n}\n",
        );
        assert_eq!(f, vec![]);
    }

    #[test]
    fn vendor_and_num_are_exempt() {
        use crate::analyze::rules::lintable;
        assert!(!lintable("vendor/rand/src/lib.rs"));
        assert!(!lintable("crates/num/src/lib.rs"));
        assert!(!lintable("target/debug/build.rs"));
        assert!(lintable("crates/core/src/game.rs"));
        assert!(lintable("src/bin/mec.rs"));
    }

    #[test]
    fn findings_render_with_location() {
        let f = lint_file("crates/core/src/x.rs", "fn f() { panic!(\"x\") }\n");
        assert_eq!(f.len(), 1);
        let s = f[0].to_string();
        assert!(s.contains("crates/core/src/x.rs:1"), "{s}");
        assert!(s.contains("[panics]"), "{s}");
    }
}
