//! `verify-run` — replay the paper's pipeline under the invariant checkers.
//!
//! ```text
//! verify-run [size] [providers] [seed] [--obs <path>]
//! ```
//!
//! Builds a GT-ITM scenario (default 250 switches, 100 providers, seed 42),
//! runs every algorithm entry point — `appro`, `lcf`, the best-response
//! dynamics from all-remote, and the social local search — and certifies
//! each output with the `mec_core::verify` checkers: capacity (Eq. 4–5),
//! congestion recount, Eq. 1–3 cost reconstruction, and the exhaustive Nash
//! certificate. Prints one certificate per stage and exits non-zero if any
//! violation is found.
//!
//! The checkers run unconditionally here; compile with
//! `--features verify` to additionally arm the in-algorithm
//! self-certification hooks (including the GAP and LP layers underneath).
//!
//! `--obs <path>` streams mec-obs events (Appro phase spans, LP pivot
//! counters, dynamics move counts, per-round potential) to `<path>` as
//! JSONL; summarize with `obsreport <path>`. Requires `--features obs`,
//! otherwise the flag warns and is ignored.

#![forbid(unsafe_code)]

use mec_core::appro::{appro, ApproConfig};
use mec_core::game::{BestResponseDynamics, MoveOrder, IMPROVEMENT_TOL};
use mec_core::lcf::{lcf, LcfConfig};
use mec_core::verify::{
    check_capacity, check_congestion, check_cost_reconstruction, check_nash, Certificate,
};
use mec_core::{social_local_search, Market, Profile};
use mec_gap::LpBackend;
use mec_workload::{gtitm_scenario, Params};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: verify-run [size] [providers] [seed] [--obs <path>]";
    install_obs(&mut args, usage);
    let size = parse_arg(&args, 0, 250, usage);
    let providers = parse_arg(&args, 1, 100, usage);
    let seed = parse_arg(&args, 2, 42, usage);

    let params = Params {
        providers,
        ..Params::default()
    };
    let scenario = gtitm_scenario(size, &params, seed as u64);
    let market = &scenario.generated.market;
    println!(
        "scenario {}: {} cloudlets, {} providers (seed {seed})",
        scenario.label,
        market.cloudlet_count(),
        market.provider_count()
    );

    let mut failed = false;
    failed |= !certify_appro(market);
    failed |= !certify_appro_revised(market);
    failed |= !certify_lcf(market);
    failed |= !certify_dynamics(market);
    failed |= !certify_local_search(market);

    mec_obs::shutdown();
    if failed {
        eprintln!("verify-run: FAILED — at least one certificate has violations");
        std::process::exit(1);
    }
    println!("verify-run: all certificates valid");
}

/// Strips `--obs <path>` out of `args` and installs the JSONL trace sink.
fn install_obs(args: &mut Vec<String>, usage: &str) {
    let Some(pos) = args.iter().position(|a| a == "--obs") else {
        return;
    };
    if pos + 1 >= args.len() {
        eprintln!("verify-run: --obs requires a path argument\n{usage}");
        std::process::exit(2);
    }
    let path = args.remove(pos + 1);
    args.remove(pos);
    if !mec_obs::enabled() {
        eprintln!("verify-run: --obs ignored — rebuild with `--features obs` to capture a trace");
        return;
    }
    if let Err(e) = mec_obs::install_file(std::path::Path::new(&path)) {
        eprintln!("verify-run: cannot open obs trace `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("verify-run: streaming observability events to {path}");
}

fn parse_arg(args: &[String], idx: usize, default: usize, usage: &str) -> usize {
    match args.get(idx) {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            // lint: allow(panics) — CLI argument error, not a library path.
            eprintln!("verify-run: bad argument `{s}`\n{usage}");
            std::process::exit(2);
        }),
    }
}

fn report(cert: &Certificate) -> bool {
    println!("{cert}");
    cert.is_valid()
}

fn certify_appro(market: &Market) -> bool {
    match appro(market, &ApproConfig::default()) {
        Ok(sol) => {
            let mut cert = Certificate::new("appro");
            cert.extend(check_capacity(market, &sol.profile))
                .extend(check_congestion(
                    market,
                    &sol.profile,
                    &sol.profile.congestion(market),
                ))
                .extend(check_cost_reconstruction(
                    market,
                    &sol.profile,
                    sol.social_cost,
                    1e-9,
                ));
            report(&cert)
        }
        Err(e) => {
            eprintln!("appro failed: {e}");
            false
        }
    }
}

/// Replays `appro` with the relaxation forced through the sparse revised
/// simplex (the default dispatch prefers the transportation fast path on
/// Appro-shaped instances, so the general LP route would otherwise never
/// run here) and certifies that output too. Under `--features verify` this
/// additionally routes every revised-simplex solve through
/// `mec_lp::verify::check_solution`.
fn certify_appro_revised(market: &Market) -> bool {
    let config = ApproConfig::default().with_lp_backend(LpBackend::Revised);
    match appro(market, &config) {
        Ok(sol) => {
            let mut cert = Certificate::new("appro (revised simplex)");
            cert.extend(check_capacity(market, &sol.profile))
                .extend(check_congestion(
                    market,
                    &sol.profile,
                    &sol.profile.congestion(market),
                ))
                .extend(check_cost_reconstruction(
                    market,
                    &sol.profile,
                    sol.social_cost,
                    1e-9,
                ));
            report(&cert)
        }
        Err(e) => {
            eprintln!("appro (revised simplex) failed: {e}");
            false
        }
    }
}

fn certify_lcf(market: &Market) -> bool {
    match lcf(market, &LcfConfig::new(0.7)) {
        Ok(out) => {
            let mut movable = vec![true; market.provider_count()];
            for l in &out.coordinated {
                movable[l.index()] = false;
            }
            let mut cert = Certificate::new("lcf");
            cert.extend(check_capacity(market, &out.profile))
                .extend(check_cost_reconstruction(
                    market,
                    &out.profile,
                    out.social_cost,
                    1e-9,
                ));
            if out.convergence.converged {
                cert.extend(check_nash(market, &out.profile, &movable, IMPROVEMENT_TOL));
            }
            report(&cert)
        }
        Err(e) => {
            eprintln!("lcf failed: {e}");
            false
        }
    }
}

fn certify_dynamics(market: &Market) -> bool {
    let movable = vec![true; market.provider_count()];
    let mut profile = Profile::all_remote(market.provider_count());
    let conv = BestResponseDynamics::new(MoveOrder::RoundRobin).run(market, &mut profile, &movable);
    let mut cert = Certificate::new("best-response dynamics");
    cert.extend(check_capacity(market, &profile));
    if conv.converged {
        cert.extend(check_nash(market, &profile, &movable, IMPROVEMENT_TOL));
    } else {
        eprintln!("dynamics did not converge within the round budget");
    }
    report(&cert) && conv.converged
}

fn certify_local_search(market: &Market) -> bool {
    let movable = vec![true; market.provider_count()];
    let mut profile = Profile::all_remote(market.provider_count());
    let before = profile.social_cost(market);
    let n = market.provider_count();
    social_local_search(market, &mut profile, &movable, 10 * n);
    let after = profile.social_cost(market);
    let mut cert = Certificate::new("social local search");
    cert.extend(check_capacity(market, &profile));
    if after > before + 1e-9 {
        eprintln!("local search increased social cost: {before} -> {after}");
        return false;
    }
    report(&cert)
}
