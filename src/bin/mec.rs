//! `mec` — command-line driver for the service-caching reproduction.
//!
//! ```text
//! mec fig <2|3> [--quick]         regenerate a simulation figure
//!                                  (figs 5-7 are testbed figures: use the
//!                                  mec-bench binaries)
//! mec ablations [--quick]         run the DESIGN.md ablations
//! mec run [size] [providers]      one LCF-vs-baselines comparison
//! mec poa [seeds]                 empirical PoA vs Theorem 1
//! mec failure                     testbed switch-failure drill
//! mec stats <gtitm|waxman|as1755> [size]   topology statistics
//! mec dot <gtitm|waxman|as1755> [size]     Graphviz DOT of a placed network
//! mec serve [--port P] [--admin-port P] [--snapshot PATH] [--providers N] [--size N] [--shards N]
//!                                 run the live service-market daemon
//! mec load <addr> [--sessions N] [--epochs N] [--seed S] [--out PATH]
//!                                 drive a running daemon with marketload
//! ```

#![forbid(unsafe_code)]

use mec_baselines::{jo_offload_cache, offload_cache, JoConfig};
use mec_core::lcf::{lcf, LcfConfig};
use mec_core::{estimate_poa, market_poa_bound};
use mec_testbed::SwitchId;
use mec_testbed::{drill_all, Overlay, Underlay};
use mec_topology::graph_stats;
use mec_topology::gtitm::{generate as gen_ts, GtItmConfig};
use mec_topology::waxman::{generate as gen_wax, WaxmanConfig};
use mec_topology::zoo::as1755;
use mec_workload::{gtitm_scenario, Params};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    match args.first().map(String::as_str) {
        Some("fig") => cmd_fig(args.get(1).map(String::as_str), quick),
        Some("ablations") => cmd_ablations(quick),
        Some("run") => cmd_run(&args[1..]),
        Some("poa") => cmd_poa(&args[1..]),
        Some("failure") => cmd_failure(),
        Some("stats") => cmd_stats(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        _ => {
            eprintln!(
                "usage: mec <fig N|ablations|run|poa|failure|stats|dot|serve|load> [args] [--quick]"
            );
            std::process::exit(2);
        }
    }
}

fn cmd_fig(which: Option<&str>, quick: bool) {
    let cfg = if quick {
        mec_bench_config_quick()
    } else {
        mec_bench_config_default()
    };
    let tables = match which {
        Some("2") => mec_fig(2, &cfg),
        Some("3") => mec_fig(3, &cfg),
        Some("5") | Some("6") | Some("7") => {
            eprintln!(
                "figs 5-7 are testbed figures; run `cargo run --release -p mec-bench --bin fig{}`",
                which.unwrap()
            );
            std::process::exit(2);
        }
        _ => {
            eprintln!("usage: mec fig <2|3> [--quick] (figs 5-7: mec-bench binaries)");
            std::process::exit(2);
        }
    };
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for t in tables {
        if writeln!(out, "{t}").is_err() {
            return; // reader closed the pipe (e.g. `| head`)
        }
    }
}

// Thin local wrappers so the binary does not depend on mec-bench (which is
// a workspace-internal harness crate): the fig sweeps are re-expressed via
// the public APIs. For the full multi-panel tables use `-p mec-bench`.
struct FigConfig {
    seeds: Vec<u64>,
    providers: usize,
}

fn mec_bench_config_default() -> FigConfig {
    FigConfig {
        seeds: vec![1, 2, 3],
        providers: 100,
    }
}

fn mec_bench_config_quick() -> FigConfig {
    FigConfig {
        seeds: vec![1],
        providers: 40,
    }
}

fn mec_fig(which: u8, cfg: &FigConfig) -> Vec<String> {
    let mut out = Vec::new();
    let sizes: &[usize] = match which {
        2 => &[50, 100, 150, 200, 250, 300, 350, 400],
        _ => &[250],
    };
    let fractions: &[f64] = match which {
        3 | 6 => &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        _ => &[0.3],
    };
    out.push(format!(
        "## Fig. {which} (social cost)\n{:>10}{:>10}{:>12}{:>16}{:>14}",
        "size", "1-xi", "LCF", "JoOffloadCache", "OffloadCache"
    ));
    for &size in sizes {
        for &frac in fractions {
            let mut l = 0.0;
            let mut j = 0.0;
            let mut o = 0.0;
            for &seed in &cfg.seeds {
                let s = gtitm_scenario(size, &Params::paper().with_providers(cfg.providers), seed);
                let k = cfg.seeds.len() as f64;
                l += lcf(&s.generated.market, &LcfConfig::new(1.0 - frac))
                    .expect("lcf")
                    .social_cost
                    / k;
                j += jo_offload_cache(&s.generated, &JoConfig::default()).social_cost / k;
                o += offload_cache(&s.generated).social_cost / k;
            }
            out.push(format!("{size:>10}{frac:>10.2}{l:>12.2}{j:>16.2}{o:>14.2}"));
        }
    }
    out
}

fn cmd_ablations(quick: bool) {
    let seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 2, 3] };
    println!("GAP pricing ablation (Appro social cost, size 150):");
    for &seed in &seeds {
        let s = gtitm_scenario(150, &Params::paper().with_providers(60), seed);
        let m = &s.generated.market;
        let marginal = mec_core::appro::appro(m, &mec_core::appro::ApproConfig::new())
            .expect("appro")
            .social_cost;
        let flat = mec_core::appro::appro(m, &mec_core::appro::ApproConfig::paper_flat())
            .expect("appro")
            .social_cost;
        println!("  seed {seed}: marginal {marginal:.2}  flat {flat:.2}");
    }
}

/// Parses a positional numeric argument, exiting with a clear error on a
/// typo instead of silently falling back to the default.
fn parse_arg<T: std::str::FromStr>(rest: &[String], idx: usize, name: &str, default: T) -> T {
    match rest.get(idx) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid {name} '{raw}' (expected a number)");
            std::process::exit(2);
        }),
    }
}

fn cmd_run(rest: &[String]) {
    let size: usize = parse_arg(rest, 0, "network size", 250);
    let providers: usize = parse_arg(rest, 1, "provider count", 100);
    let s = gtitm_scenario(size, &Params::paper().with_providers(providers), 42);
    let m = &s.generated.market;
    let l = lcf(m, &LcfConfig::new(0.7)).expect("lcf");
    let j = jo_offload_cache(&s.generated, &JoConfig::default());
    let o = offload_cache(&s.generated);
    println!("network {size}, providers {providers} ((1-xi)=0.3)");
    println!("  LCF            {:.2}", l.social_cost);
    println!("  JoOffloadCache {:.2}", j.social_cost);
    println!("  OffloadCache   {:.2}", o.social_cost);
}

fn cmd_poa(rest: &[String]) {
    let seeds: u64 = parse_arg(rest, 0, "seed count", 5);
    for seed in 1..=seeds {
        let s = gtitm_scenario(60, &Params::paper().with_providers(8), seed);
        let m = &s.generated.market;
        match estimate_poa(m, 30, seed) {
            Ok(est) => println!(
                "seed {seed}: PoA {:.4} PoS {:.4} (Theorem 1 bound {:.1})",
                est.poa,
                est.pos,
                market_poa_bound(m, 0.0)
            ),
            Err(e) => println!("seed {seed}: {e}"),
        }
    }
}

fn cmd_failure() {
    let u = Underlay::paper_testbed();
    let o = Overlay::build(&u);
    for rep in drill_all(&u, &o) {
        println!(
            "fail {:<30} survives={} migrated={} rerouted={} latency {:.3} -> {:.3} ms",
            u.switch(SwitchId(rep.failed.0)).label(),
            rep.fabric_survives,
            rep.migrated_nodes,
            rep.rerouted_tunnels,
            rep.mean_tunnel_ms_before,
            rep.mean_tunnel_ms_after,
        );
    }
}

fn cmd_dot(rest: &[String]) {
    let kind = rest.first().map(String::as_str).unwrap_or("gtitm");
    let size: usize = parse_arg(rest, 1, "size", 100);
    let topo = match kind {
        "gtitm" => gen_ts(&GtItmConfig::for_size(size, 42)),
        "waxman" => gen_wax(&WaxmanConfig::for_size(size, 42)),
        "as1755" => as1755(),
        other => {
            eprintln!("unknown topology '{other}' (use gtitm|waxman|as1755)");
            std::process::exit(2);
        }
    };
    let net = mec_topology::MecNetwork::place(topo, &mec_topology::PlacementConfig::default());
    use std::io::Write;
    let _ = write!(std::io::stdout(), "{}", mec_topology::network_dot(&net));
}

/// Looks up the value following a `--flag`.
fn flag_value(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .cloned()
}

/// Parses a `--flag value` numeric option, exiting with a clear error on
/// a typo instead of silently falling back to the default.
fn parse_flag<T: std::str::FromStr>(rest: &[String], name: &str, default: T) -> T {
    match flag_value(rest, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid {name} '{raw}' (expected a number)");
            std::process::exit(2);
        }),
    }
}

fn cmd_serve(rest: &[String]) {
    let port: u16 = parse_flag(rest, "--port", 7690);
    let admin_port: u16 = parse_flag(rest, "--admin-port", 0);
    let providers: usize = parse_flag(rest, "--providers", 100);
    let size: usize = parse_flag(rest, "--size", 100);
    let seed: u64 = parse_flag(rest, "--seed", 42);
    let snapshot = flag_value(rest, "--snapshot").map(std::path::PathBuf::from);

    let scenario = gtitm_scenario(size, &Params::paper().with_providers(providers), seed);
    let cloudlets = scenario.generated.market.cloudlet_count();
    let shards: usize = parse_flag(rest, "--shards", 1).clamp(1, cloudlets.max(1));
    let regions = (shards > 1).then(|| scenario.net.regions(shards));
    let cfg = mec_serve::ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        snapshot_path: snapshot.clone(),
        shards,
        regions,
        admin_addr: (admin_port != 0).then(|| format!("127.0.0.1:{admin_port}")),
        ..mec_serve::ServerConfig::default()
    };
    let handle = match mec_serve::serve(scenario.generated.market, &cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot boot daemon: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "service market on {} ({providers} providers, size-{size} network, {shards} shard{}{})",
        handle.addr(),
        if shards == 1 { "" } else { "s" },
        match &snapshot {
            Some(p) => format!(", snapshot {}", p.display()),
            None => String::new(),
        }
    );
    if let Some(admin) = handle.admin_addr() {
        println!("admin surface on http://{admin} (/metrics /placement /residuals /shards)");
    }
    println!(
        "drain with: mec load {} --shutdown  (or any client's shutdown op)",
        handle.addr()
    );
    let outcome = handle.join();
    println!(
        "drained at seq {} after {} epochs / {} moves (equilibrium: {})",
        outcome.seq, outcome.epochs, outcome.moves, outcome.equilibrium
    );
    if !outcome.violations.is_empty() {
        for v in &outcome.violations {
            eprintln!("certificate violation: {v}");
        }
        std::process::exit(1);
    }
}

fn cmd_load(rest: &[String]) {
    let Some(addr) = rest.first().filter(|a| !a.starts_with("--")).cloned() else {
        eprintln!(
            "usage: mec load <addr> [--sessions N] [--epochs N] [--seed S] [--out PATH] [--shutdown]"
        );
        std::process::exit(2);
    };
    let cfg = mec_serve::LoadConfig {
        sessions: parse_flag(rest, "--sessions", 8),
        epochs: parse_flag(rest, "--epochs", 20),
        seed: parse_flag(rest, "--seed", 1),
        ..mec_serve::LoadConfig::default()
    };
    let providers = match mec_serve::Client::connect(&addr).and_then(|mut c| c.stats()) {
        Ok(stats) => stats.providers,
        Err(e) => {
            eprintln!("cannot reach daemon at {addr}: {e}");
            std::process::exit(1);
        }
    };
    let report = match mec_serve::run_load(&addr, providers, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load run failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{} ops in {:.3}s ({:.0} ops/s), {} rejected",
        report.ops(),
        report.elapsed.as_secs_f64(),
        report.ops_per_sec(),
        report.rejected
    );
    let out = flag_value(rest, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    if let Err(e) = std::fs::write(&out, format!("{}\n", report.to_json())) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("report written to {out}");
    if rest.iter().any(|a| a == "--shutdown") {
        match mec_serve::Client::connect(&addr).and_then(|mut c| c.shutdown()) {
            Ok(_) => println!("daemon draining"),
            Err(e) => {
                eprintln!("shutdown request failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn cmd_stats(rest: &[String]) {
    let kind = rest.first().map(String::as_str).unwrap_or("gtitm");
    let size: usize = parse_arg(rest, 1, "size", 200);
    let topo = match kind {
        "gtitm" => gen_ts(&GtItmConfig::for_size(size, 42)),
        "waxman" => gen_wax(&WaxmanConfig::for_size(size, 42)),
        "as1755" => as1755(),
        other => {
            eprintln!("unknown topology '{other}' (use gtitm|waxman|as1755)");
            std::process::exit(2);
        }
    };
    println!("{} —", topo.name);
    println!("{}", graph_stats(&topo.graph));
}
