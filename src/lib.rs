//! Umbrella crate for the MEC service-caching reproduction.
//!
//! Re-exports every subsystem crate under a short path. See the workspace
//! README for the architecture overview and `examples/` for runnable
//! demonstrations of the public API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mec_baselines as baselines;
pub use mec_core as core;
pub use mec_gap as gap;
pub use mec_lp as lp;
pub use mec_sim as sim;
pub use mec_testbed as testbed;
pub use mec_topology as topology;
pub use mec_workload as workload;
