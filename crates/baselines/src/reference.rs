//! Reference placements that bracket the algorithm space:
//!
//! * [`random_placement`] — a capacity-feasible uniformly random profile
//!   (the "no algorithm at all" floor for comparisons);
//! * [`nearest_cloudlet`] — every provider caches at the cloudlet closest
//!   to its users (pure latency chasing, like a CDN heuristic);
//! * [`centralized_greedy`] — hill-climbing on the social cost from the
//!   all-remote profile (a strong centralized heuristic that, unlike
//!   `Appro`, has no approximation guarantee).

use mec_core::local_search::social_local_search;
use mec_core::strategy::{Placement, Profile};
use mec_topology::{CloudletId, MecNetwork};
use mec_workload::GeneratedMarket;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::offload_cache::BaselineOutcome;

/// A uniformly random capacity-feasible placement: each provider tries a
/// random cloudlet (or remote) in a random order and keeps the first that
/// fits.
///
/// # Panics
///
/// Panics if a provider can neither be placed nor stay remote.
pub fn random_placement(gen: &GeneratedMarket, seed: u64) -> BaselineOutcome {
    let market = &gen.market;
    let n = market.provider_count();
    let m = market.cloudlet_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut profile = Profile::all_remote(n);
    let mut residual: Vec<(f64, f64)> = market
        .cloudlets()
        .map(|i| {
            let c = market.cloudlet(i);
            (c.compute_capacity, c.bandwidth_capacity)
        })
        .collect();
    for l in market.providers() {
        // Random candidate order over cloudlets plus the remote option.
        let mut order: Vec<usize> = (0..=m).collect();
        for k in (1..order.len()).rev() {
            let j = rng.random_range(0..=k);
            order.swap(k, j);
        }
        let mut placed = false;
        for &cand in &order {
            if cand == m {
                if market.provider(l).can_stay_remote() {
                    profile.set(l, Placement::Remote);
                    placed = true;
                    break;
                }
            } else {
                let i = CloudletId(cand);
                if market.fits(l, residual[i.index()]) {
                    let spec = market.provider(l);
                    residual[i.index()].0 -= spec.compute_demand;
                    residual[i.index()].1 -= spec.bandwidth_demand;
                    profile.set(l, Placement::Cloudlet(i));
                    placed = true;
                    break;
                }
            }
        }
        assert!(placed, "provider {l} could not be placed anywhere");
    }
    let social_cost = profile.social_cost(market);
    BaselineOutcome {
        profile,
        social_cost,
    }
}

/// Every provider caches at the cloudlet nearest its users, capacity
/// permitting (next-nearest otherwise, remote as the last resort).
///
/// # Panics
///
/// Panics if a provider can neither be placed nor stay remote.
pub fn nearest_cloudlet(net: &MecNetwork, gen: &GeneratedMarket) -> BaselineOutcome {
    let market = &gen.market;
    let n = market.provider_count();
    let mut profile = Profile::all_remote(n);
    let mut residual: Vec<(f64, f64)> = market
        .cloudlets()
        .map(|i| {
            let c = market.cloudlet(i);
            (c.compute_capacity, c.bandwidth_capacity)
        })
        .collect();
    for (idx, meta) in gen.providers.iter().enumerate() {
        let l = mec_core::ProviderId(idx);
        let mut order: Vec<CloudletId> = market.cloudlets().collect();
        order.sort_by(|&a, &b| {
            net.node_cloudlet_distance(meta.user_node, a)
                .partial_cmp(&net.node_cloudlet_distance(meta.user_node, b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        match order
            .into_iter()
            .find(|&i| market.fits(l, residual[i.index()]))
        {
            Some(i) => {
                let spec = market.provider(l);
                residual[i.index()].0 -= spec.compute_demand;
                residual[i.index()].1 -= spec.bandwidth_demand;
                profile.set(l, Placement::Cloudlet(i));
            }
            None => {
                assert!(
                    market.provider(l).can_stay_remote(),
                    "provider {l} cannot be placed and may not stay remote"
                );
            }
        }
    }
    let social_cost = profile.social_cost(market);
    BaselineOutcome {
        profile,
        social_cost,
    }
}

/// Centralized hill climbing on the social cost, starting from all-remote.
/// Strong but guarantee-free; used to sanity-check how close `Appro`'s
/// guaranteed solution gets.
pub fn centralized_greedy(gen: &GeneratedMarket) -> BaselineOutcome {
    let market = &gen.market;
    let n = market.provider_count();
    let mut profile = Profile::all_remote(n);
    let movable = vec![true; n];
    social_local_search(market, &mut profile, &movable, 50 * n);
    let social_cost = profile.social_cost(market);
    BaselineOutcome {
        profile,
        social_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_core::appro::{appro, ApproConfig};
    use mec_workload::{gtitm_scenario, Params, Scenario};

    fn scenario(providers: usize, seed: u64) -> Scenario {
        gtitm_scenario(100, &Params::paper().with_providers(providers), seed)
    }

    #[test]
    fn random_placement_feasible_and_seeded() {
        let s = scenario(30, 1);
        let a = random_placement(&s.generated, 7);
        let b = random_placement(&s.generated, 7);
        assert!(a.profile.is_feasible(&s.generated.market));
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn nearest_cloudlet_feasible_and_latency_greedy() {
        let s = scenario(10, 2);
        let out = nearest_cloudlet(&s.net, &s.generated);
        assert!(out.profile.is_feasible(&s.generated.market));
        // With light load every provider sits at its true nearest cloudlet.
        for (idx, meta) in s.generated.providers.iter().enumerate() {
            let l = mec_core::ProviderId(idx);
            if let Placement::Cloudlet(i) = out.profile.placement(l) {
                assert_eq!(i, s.net.nearest_cloudlet(meta.user_node));
            }
        }
    }

    #[test]
    fn centralized_greedy_beats_random() {
        let s = scenario(40, 3);
        let greedy = centralized_greedy(&s.generated);
        let random = random_placement(&s.generated, 1);
        assert!(greedy.social_cost <= random.social_cost + 1e-9);
    }

    #[test]
    fn appro_competitive_with_centralized_greedy() {
        // Appro (guaranteed) should land within 25 % of the guarantee-free
        // hill climber across seeds.
        for seed in 0..3 {
            let s = scenario(40, 10 + seed);
            let ap = appro(&s.generated.market, &ApproConfig::new()).unwrap();
            let hc = centralized_greedy(&s.generated);
            assert!(
                ap.social_cost <= hc.social_cost * 1.25 + 1e-9,
                "seed {seed}: appro {} vs greedy {}",
                ap.social_cost,
                hc.social_cost
            );
        }
    }

    #[test]
    fn reference_ordering_is_sane() {
        // centralized greedy <= nearest-cloudlet and random (typical case:
        // checked over seeds with a tolerance of one outlier).
        let mut ok = 0;
        for seed in 0..4 {
            let s = scenario(40, 20 + seed);
            let hc = centralized_greedy(&s.generated).social_cost;
            let nc = nearest_cloudlet(&s.net, &s.generated).social_cost;
            let rp = random_placement(&s.generated, seed).social_cost;
            if hc <= nc + 1e-9 && hc <= rp + 1e-9 {
                ok += 1;
            }
        }
        assert!(ok >= 3, "greedy lost too often: {ok}/4");
    }
}
