//! `JoOffloadCache` — the joint service-caching / task-offloading baseline
//! (paper Section IV-A, after Xu–Chen–Zhou, INFOCOM'18 \[23\]).
//!
//! \[23\] solves each provider's joint caching + offloading decision with a
//! Gibbs-sampling optimizer. The paper plugs it into the multi-provider
//! market by letting *every provider run it independently, without
//! communicating with each other*: all providers optimize simultaneously
//! against the pre-deployment state, so (a) nobody anticipates the
//! congestion the others are about to create, and (b) the consistency-update
//! cost is ignored entirely — the two modelling gaps the paper calls out.
//! The infrastructure provider then admits the requested placements in
//! arrival order; a provider whose choice no longer fits falls back to its
//! next-preferred option.

use mec_core::strategy::{Placement, Profile};
use mec_core::ProviderId;
use mec_topology::CloudletId;
use mec_workload::GeneratedMarket;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub use crate::offload_cache::BaselineOutcome;

/// Tuning of the per-provider Gibbs sampler.
#[derive(Debug, Clone)]
pub struct JoConfig {
    /// Sampling sweeps per provider.
    pub iterations: usize,
    /// Initial temperature of the Boltzmann distribution.
    pub initial_temperature: f64,
    /// Multiplicative cooling per sweep.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for JoConfig {
    fn default() -> Self {
        JoConfig {
            iterations: 30,
            initial_temperature: 2.0,
            cooling: 0.85,
            seed: 0,
        }
    }
}

/// The objective provider `l` believes it is minimizing when it evaluates
/// cloudlet `i`: its own offloading cost plus the caching cost *as if it
/// were the only newcomer* (congestion 1 — decisions are simultaneous and
/// uncommunicated) and *without* the update cost (not modeled by \[23\]).
fn perceived_cost(gen: &GeneratedMarket, l: ProviderId, i: CloudletId) -> f64 {
    let market = &gen.market;
    let c = market.cloudlet(i);
    gen.offload_cost(l, i) + c.congestion_price() + market.provider(l).instantiation_cost
}

/// Runs `JoOffloadCache` on a generated market.
///
/// Phase 1 (simultaneous, uncoordinated): every provider runs a
/// Gibbs-sampling optimization of its own joint objective over all
/// cloudlets (plus remote if allowed), producing a preference ranking.
/// Phase 2 (admission): the infrastructure provider admits placements in
/// arrival (id) order; a provider whose preferred cloudlet has filled up
/// falls back to its next preference, then to remote.
///
/// # Panics
///
/// Panics if a provider can neither be placed nor stay remote.
pub fn jo_offload_cache(gen: &GeneratedMarket, config: &JoConfig) -> BaselineOutcome {
    let market = &gen.market;
    let n = market.provider_count();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Phase 1: independent decisions against the pre-deployment state.
    let mut preferences: Vec<Vec<Option<CloudletId>>> = Vec::with_capacity(n);
    for l in market.providers() {
        let candidates: Vec<Option<CloudletId>> = market
            .cloudlets()
            .map(Some)
            .chain(market.provider(l).can_stay_remote().then_some(None))
            .collect();
        assert!(
            !candidates.is_empty(),
            "provider {l} has no candidates at all"
        );
        let cost_of = |c: &Option<CloudletId>| -> f64 {
            match c {
                Some(i) => perceived_cost(gen, l, *i),
                None => market.provider(l).remote_cost,
            }
        };

        // Gibbs sampling over the candidate set with geometric cooling —
        // the sampler of [23], annealed toward the joint minimizer.
        let costs: Vec<f64> = candidates.iter().map(&cost_of).collect();
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut temperature = config.initial_temperature;
        let mut best_idx = 0;
        let mut best_cost = f64::INFINITY;
        for _ in 0..config.iterations.max(1) {
            let weights: Vec<f64> = costs
                .iter()
                .map(|c| {
                    if c.is_finite() {
                        (-(c - min) / temperature.max(1e-6)).exp()
                    } else {
                        0.0
                    }
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut draw = rng.random_range(0.0..total.max(1e-300));
            let mut picked = 0;
            for (k, w) in weights.iter().enumerate() {
                picked = k;
                if draw < *w {
                    break;
                }
                draw -= w;
            }
            if costs[picked] < best_cost {
                best_cost = costs[picked];
                best_idx = picked;
            }
            temperature *= config.cooling;
        }

        // Preference order: the sampled best first, then the remaining
        // candidates by perceived cost.
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            (a != best_idx).cmp(&(b != best_idx)).then(
                costs[a]
                    .partial_cmp(&costs[b])
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        preferences.push(order.into_iter().map(|k| candidates[k]).collect());
    }

    // Phase 2: admission in arrival order.
    let mut profile = Profile::all_remote(n);
    let mut residual: Vec<(f64, f64)> = market
        .cloudlets()
        .map(|i| {
            let c = market.cloudlet(i);
            (c.compute_capacity, c.bandwidth_capacity)
        })
        .collect();
    for l in market.providers() {
        let mut placed = false;
        for cand in &preferences[l.index()] {
            match cand {
                Some(i) if market.fits(l, residual[i.index()]) => {
                    let spec = market.provider(l);
                    residual[i.index()].0 -= spec.compute_demand;
                    residual[i.index()].1 -= spec.bandwidth_demand;
                    profile.set(l, Placement::Cloudlet(*i));
                    placed = true;
                    break;
                }
                None => {
                    profile.set(l, Placement::Remote);
                    placed = true;
                    break;
                }
                _ => {}
            }
        }
        if !placed {
            assert!(
                market.provider(l).can_stay_remote(),
                "provider {l} cannot be placed and may not stay remote"
            );
            profile.set(l, Placement::Remote);
        }
    }

    let social_cost = profile.social_cost(market);
    BaselineOutcome {
        profile,
        social_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_workload::{gtitm_scenario, Params};

    fn scenario(providers: usize, seed: u64) -> GeneratedMarket {
        gtitm_scenario(100, &Params::paper().with_providers(providers), seed).generated
    }

    #[test]
    fn produces_feasible_profile() {
        let gen = scenario(40, 1);
        let out = jo_offload_cache(&gen, &JoConfig::default());
        assert!(out.profile.is_feasible(&gen.market));
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = scenario(30, 2);
        let a = jo_offload_cache(&gen, &JoConfig::default());
        let b = jo_offload_cache(&gen, &JoConfig::default());
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn different_seeds_may_differ_but_stay_feasible() {
        let gen = scenario(30, 3);
        for seed in 0..5 {
            let out = jo_offload_cache(
                &gen,
                &JoConfig {
                    seed,
                    ..JoConfig::default()
                },
            );
            assert!(out.profile.is_feasible(&gen.market));
        }
    }

    #[test]
    fn joint_beats_decoupled_on_perceived_objective() {
        // JoOffloadCache sees congestion while OffloadCache does not, so at
        // equal capacity pressure its perceived objective is no worse for
        // the deciding provider. We check the measured social cost over a
        // few seeds: Jo should not be systematically worse than Offload.
        let mut jo_wins = 0;
        for seed in 0..6 {
            let gen = scenario(50, 100 + seed);
            let jo = jo_offload_cache(&gen, &JoConfig::default());
            let of = crate::offload_cache::offload_cache(&gen);
            if jo.social_cost <= of.social_cost {
                jo_wins += 1;
            }
        }
        assert!(jo_wins >= 4, "JoOffloadCache won only {jo_wins}/6 runs");
    }

    #[test]
    fn social_cost_matches_profile() {
        let gen = scenario(20, 4);
        let out = jo_offload_cache(&gen, &JoConfig::default());
        assert!((out.social_cost - out.profile.social_cost(&gen.market)).abs() < 1e-9);
    }
}
