//! Eviction-policy baselines on dynamic traces: LRU, LFU, and GDSF
//! placement vs the game-theoretic placement, replaying the same
//! `mec-scenario` schedule.
//!
//! Classical cache simulators (the SNIPPETS.md exemplar) treat one cache
//! and one object stream; here the "cache" is the cloudlet fleet and the
//! "objects" are services with two-dimensional demands, so each policy
//! becomes a *placement* policy: a missed service is instantiated at its
//! cheapest-flat-cost cloudlet, evicting victims chosen by the policy
//! when capacity runs out. Evicted services fall back to remote serving
//! (Eq. 1), exactly like a market player parking at the data center.
//!
//! Demand enters the economics the way the paper's cost model says it
//! should: every per-request cost term scales with the request rate
//! `r_l`, so each epoch the evaluation market scales provider `l`'s
//! remote cost by its observed demand factor (an EWMA of its share of
//! the epoch's requests, clamped). All policies are scored against the
//! *same* per-epoch scaled market — the game placement re-plans on it
//! (demand-driven re-caching), the eviction policies react to the raw
//! hit/miss stream, and the social-cost comparison is apples to apples.

use mec_core::strategy::{Placement, Profile};
use mec_core::{BestResponseDynamics, Market, MoveOrder, ProviderId, ProviderSpec};
use mec_scenario::Trace;
use mec_topology::CloudletId;

/// EWMA smoothing constant for observed request rates (weight of the
/// newest epoch).
pub const DEMAND_EWMA_ALPHA: f64 = 0.3;

/// Demand factors are clamped to `[FACTOR_MIN, FACTOR_MAX]` so one cold
/// epoch cannot zero a provider's economics and a flash crowd cannot
/// blow them up unboundedly.
pub const FACTOR_MIN: f64 = 0.25;
/// See [`FACTOR_MIN`].
pub const FACTOR_MAX: f64 = 4.0;

/// Which placement policy replays the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePolicy {
    /// Best-response dynamics on the demand-scaled market each epoch —
    /// the paper's game placement, made demand-driven.
    Game,
    /// Least-recently-used eviction.
    Lru,
    /// Least-frequently-used eviction.
    Lfu,
    /// Greedy-Dual-Size-Frequency: priority `L + freq · cost / size`,
    /// with per-cloudlet inflation aging.
    Gdsf,
}

impl TracePolicy {
    /// Stable lowercase name (bench rows, tailgate parsing).
    pub fn name(self) -> &'static str {
        match self {
            TracePolicy::Game => "game",
            TracePolicy::Lru => "lru",
            TracePolicy::Lfu => "lfu",
            TracePolicy::Gdsf => "gdsf",
        }
    }

    /// Every policy the scenario bench sweeps, game first.
    pub fn all() -> [TracePolicy; 4] {
        [
            TracePolicy::Game,
            TracePolicy::Lru,
            TracePolicy::Lfu,
            TracePolicy::Gdsf,
        ]
    }
}

/// Outcome of replaying one trace under one policy.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// Policy name (see [`TracePolicy::name`]).
    pub policy: &'static str,
    /// Total requests replayed.
    pub requests: u64,
    /// Requests that found their service cached at a cloudlet.
    pub hits: u64,
    /// Remote→cloudlet placements made during the replay (cache
    /// insertions / demand-driven re-caches).
    pub recaches: u64,
    /// Social cost (Eq. 6) on the per-epoch demand-scaled market,
    /// averaged over epochs.
    pub mean_social_cost: f64,
    /// The placement at the end of the trace.
    pub final_profile: Profile,
}

impl TraceOutcome {
    /// Fraction of requests served from a cloudlet cache.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Per-epoch demand factors from the trace: an EWMA of each service's
/// request rate, normalized by the mean rate and clamped to
/// `[FACTOR_MIN, FACTOR_MAX]`. `factors[e][l]` scales provider `l`'s
/// per-request economics during epoch `e`. Identical for every policy —
/// the factors depend only on the trace.
pub fn demand_factors(trace: &Trace) -> Vec<Vec<f64>> {
    let n = trace.services;
    let mut ewma = vec![0.0f64; n];
    let mut out = Vec::with_capacity(trace.epoch_count());
    for e in 0..trace.epoch_count() {
        let counts = trace.counts(e);
        for (l, &c) in counts.iter().enumerate() {
            ewma[l] = DEMAND_EWMA_ALPHA * c as f64 + (1.0 - DEMAND_EWMA_ALPHA) * ewma[l];
        }
        let mean = (ewma.iter().sum::<f64>() / n as f64).max(f64::MIN_POSITIVE);
        out.push(
            ewma.iter()
                .map(|&w| (w / mean).clamp(FACTOR_MIN, FACTOR_MAX))
                .collect(),
        );
    }
    out
}

/// Rebuilds `base` with every provider's remote cost scaled by its
/// demand factor. Demands and capacities are untouched, so any profile
/// feasible on `base` stays feasible on the scaled market.
///
/// # Panics
///
/// Panics if `factors.len() != base.provider_count()`.
pub fn scaled_market(base: &Market, factors: &[f64]) -> Market {
    let n = base.provider_count();
    let m = base.cloudlet_count();
    assert_eq!(factors.len(), n, "one demand factor per provider");
    let mut builder = Market::builder();
    for i in base.cloudlets() {
        builder = builder.cloudlet(base.cloudlet(i).clone());
    }
    for l in base.providers() {
        let spec = base.provider(l);
        builder = builder.provider(ProviderSpec::new(
            spec.compute_demand,
            spec.bandwidth_demand,
            spec.instantiation_cost,
            spec.remote_cost * factors[l.index()],
        ));
    }
    let mut matrix = Vec::with_capacity(n * m);
    for l in base.providers() {
        for i in base.cloudlets() {
            matrix.push(base.update_cost(l, i));
        }
    }
    builder.update_cost_matrix(matrix).build()
}

/// Replays `trace` against `market` under `policy`.
///
/// All four policies see the same request stream and are scored against
/// the same per-epoch demand-scaled market; they differ only in how
/// placements respond. The game re-plans at each epoch boundary on the
/// *previous* epoch's factors (a one-epoch observation lag, like the
/// serve daemon's maintenance quanta); eviction policies mutate the
/// cache request by request.
///
/// # Panics
///
/// Panics if the trace universe does not match the market's provider
/// count.
pub fn evaluate_trace(market: &Market, trace: &Trace, policy: TracePolicy) -> TraceOutcome {
    assert_eq!(
        trace.services,
        market.provider_count(),
        "trace universe ({}) must match the market ({} providers)",
        trace.services,
        market.provider_count()
    );
    let factors = demand_factors(trace);
    match policy {
        TracePolicy::Game => replay_game(market, trace, &factors),
        _ => replay_eviction(market, trace, &factors, policy),
    }
}

/// The game placement: at each epoch boundary, best-response dynamics on
/// the demand-scaled market, starting from the carried-over profile.
fn replay_game(market: &Market, trace: &Trace, factors: &[Vec<f64>]) -> TraceOutcome {
    let n = market.provider_count();
    let movable = vec![true; n];
    let driver = BestResponseDynamics::new(MoveOrder::RoundRobin);
    let mut profile = Profile::all_remote(n);
    let mut hits = 0u64;
    let mut requests = 0u64;
    let mut recaches = 0u64;
    let mut cost_sum = 0.0;
    for e in 0..trace.epoch_count() {
        // Decide on what was observed so far: base market before any
        // observation, else the previous epoch's factors.
        let decision = if e == 0 {
            market.clone()
        } else {
            scaled_market(market, &factors[e - 1])
        };
        let before: Vec<Placement> = (0..n).map(|l| profile.placement(ProviderId(l))).collect();
        driver.run(&decision, &mut profile, &movable);
        for (l, &prev) in before.iter().enumerate() {
            let now = profile.placement(ProviderId(l));
            if matches!(now, Placement::Cloudlet(_)) && now != prev {
                recaches += 1;
            }
        }
        for &svc in trace.requests_in(e) {
            requests += 1;
            if matches!(
                profile.placement(ProviderId(svc as usize)),
                Placement::Cloudlet(_)
            ) {
                hits += 1;
            }
        }
        cost_sum += profile.social_cost(&scaled_market(market, &factors[e]));
    }
    TraceOutcome {
        policy: TracePolicy::Game.name(),
        requests,
        hits,
        recaches,
        mean_social_cost: cost_sum / trace.epoch_count() as f64,
        final_profile: profile,
    }
}

/// Per-service bookkeeping for the eviction policies.
struct CacheState {
    placements: Vec<Placement>,
    residual: Vec<(f64, f64)>,
    freq: Vec<u64>,
    last_used: Vec<u64>,
    /// GDSF priority per cached service.
    priority: Vec<f64>,
    /// GDSF inflation value per cloudlet (rises to each evicted
    /// victim's priority, so old frequencies age out).
    inflation: Vec<f64>,
    clock: u64,
}

impl CacheState {
    fn new(market: &Market) -> CacheState {
        CacheState {
            placements: vec![Placement::Remote; market.provider_count()],
            residual: market
                .cloudlets()
                .map(|i| {
                    let c = market.cloudlet(i);
                    (c.compute_capacity, c.bandwidth_capacity)
                })
                .collect(),
            freq: vec![0; market.provider_count()],
            last_used: vec![0; market.provider_count()],
            priority: vec![0.0; market.provider_count()],
            inflation: vec![0.0; market.cloudlet_count()],
            clock: 0,
        }
    }

    /// Normalized two-dimensional size of service `l` (GDSF divisor).
    fn size(&self, market: &Market, l: ProviderId) -> f64 {
        let spec = market.provider(l);
        let c = market.max_compute_demand().max(f64::MIN_POSITIVE);
        let b = market.max_bandwidth_demand().max(f64::MIN_POSITIVE);
        (spec.compute_demand / c + spec.bandwidth_demand / b).max(f64::MIN_POSITIVE)
    }

    /// GDSF priority of `l` if cached at `i`.
    fn gdsf_priority(&self, market: &Market, l: ProviderId, i: CloudletId) -> f64 {
        self.inflation[i.index()]
            + self.freq[l.index()] as f64 * market.flat_cost(l, i) / self.size(market, l)
    }

    /// Services currently cached at cloudlet `i` that may be evicted
    /// (their spec allows remote serving).
    fn evictable_at(&self, market: &Market, i: CloudletId) -> Vec<usize> {
        (0..self.placements.len())
            .filter(|&l| {
                matches!(self.placements[l], Placement::Cloudlet(c) if c == i)
                    && market.provider(ProviderId(l)).can_stay_remote()
            })
            .collect()
    }
}

/// Victim order for one eviction round; smaller sorts first (evicted
/// first).
fn victim_key(state: &CacheState, policy: TracePolicy, l: usize) -> (f64, u64, u64, usize) {
    match policy {
        TracePolicy::Lru => (0.0, state.last_used[l], state.freq[l], l),
        TracePolicy::Lfu => (0.0, state.freq[l], state.last_used[l], l),
        TracePolicy::Gdsf => (state.priority[l], state.last_used[l], state.freq[l], l),
        TracePolicy::Game => unreachable!("game placement has no victims"), // lint: allow(panics)
    }
}

/// Tries to admit missed service `l`: place at the cheapest-flat-cost
/// cloudlet, evicting per `policy` when full. Returns `true` if the
/// service was cached.
fn try_admit(state: &mut CacheState, market: &Market, policy: TracePolicy, l: ProviderId) -> bool {
    let spec = market.provider(l).clone();
    let mut order: Vec<CloudletId> = market.cloudlets().collect();
    order.sort_by(|&a, &b| {
        market
            .flat_cost(l, a)
            .partial_cmp(&market.flat_cost(l, b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index().cmp(&b.index()))
    });

    // First choice: any cloudlet with free room, cheapest first.
    if let Some(&i) = order
        .iter()
        .find(|&&i| market.fits(l, state.residual[i.index()]))
    {
        place(state, market, policy, l, i);
        return true;
    }

    // Otherwise evict at the cheapest cloudlet that could ever hold the
    // service.
    for &i in &order {
        let cap = market.cloudlet(i);
        if spec.compute_demand > cap.compute_capacity
            || spec.bandwidth_demand > cap.bandwidth_capacity
        {
            continue;
        }
        let mut victims = state.evictable_at(market, i);
        victims.sort_by(|&a, &b| {
            victim_key(state, policy, a)
                .partial_cmp(&victim_key(state, policy, b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let candidate_pri = state.gdsf_priority(market, l, i);
        let mut free = state.residual[i.index()];
        let mut chosen = Vec::new();
        for v in victims {
            if market.fits(l, free) {
                break;
            }
            // GDSF admission control: never evict a victim worth more
            // than the candidate.
            if policy == TracePolicy::Gdsf && state.priority[v] > candidate_pri {
                break;
            }
            let vs = market.provider(ProviderId(v));
            free.0 += vs.compute_demand;
            free.1 += vs.bandwidth_demand;
            chosen.push(v);
        }
        if !market.fits(l, free) {
            continue; // not enough evictable value here; try next cloudlet
        }
        for v in chosen {
            let vs = market.provider(ProviderId(v));
            state.residual[i.index()].0 += vs.compute_demand;
            state.residual[i.index()].1 += vs.bandwidth_demand;
            state.placements[v] = Placement::Remote;
            if policy == TracePolicy::Gdsf {
                // Aging: the cloudlet's inflation rises to the evicted
                // priority, so long-idle high-frequency entries decay
                // relative to fresh arrivals.
                if state.priority[v] > state.inflation[i.index()] {
                    state.inflation[i.index()] = state.priority[v];
                }
            }
        }
        place(state, market, policy, l, i);
        return true;
    }
    false
}

fn place(
    state: &mut CacheState,
    market: &Market,
    policy: TracePolicy,
    l: ProviderId,
    i: CloudletId,
) {
    let spec = market.provider(l);
    state.residual[i.index()].0 -= spec.compute_demand;
    state.residual[i.index()].1 -= spec.bandwidth_demand;
    state.placements[l.index()] = Placement::Cloudlet(i);
    if policy == TracePolicy::Gdsf {
        state.priority[l.index()] = state.gdsf_priority(market, l, i);
    }
}

/// Replays the trace under an eviction policy, request by request.
fn replay_eviction(
    market: &Market,
    trace: &Trace,
    factors: &[Vec<f64>],
    policy: TracePolicy,
) -> TraceOutcome {
    let mut state = CacheState::new(market);
    let mut hits = 0u64;
    let mut requests = 0u64;
    let mut recaches = 0u64;
    let mut cost_sum = 0.0;
    for (e, epoch_factors) in factors.iter().enumerate().take(trace.epoch_count()) {
        for &svc in trace.requests_in(e) {
            let l = ProviderId(svc as usize);
            state.clock += 1;
            state.freq[l.index()] += 1;
            state.last_used[l.index()] = state.clock;
            requests += 1;
            match state.placements[l.index()] {
                Placement::Cloudlet(i) => {
                    hits += 1;
                    if policy == TracePolicy::Gdsf {
                        state.priority[l.index()] = state.gdsf_priority(market, l, i);
                    }
                }
                Placement::Remote => {
                    if try_admit(&mut state, market, policy, l) {
                        recaches += 1;
                    }
                }
            }
        }
        let profile = Profile::new(state.placements.clone());
        cost_sum += profile.social_cost(&scaled_market(market, epoch_factors));
    }
    TraceOutcome {
        policy: policy.name(),
        requests,
        hits,
        recaches,
        mean_social_cost: cost_sum / trace.epoch_count() as f64,
        final_profile: Profile::new(state.placements),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_scenario::standard_traces;
    use mec_workload::{gtitm_scenario, Params};

    fn market(providers: usize, seed: u64) -> Market {
        gtitm_scenario(100, &Params::paper().with_providers(providers), seed)
            .generated
            .market
    }

    #[test]
    fn every_policy_produces_a_feasible_final_profile() {
        let m = market(30, 1);
        let traces = standard_traces(30, 10, 80, 7);
        for t in &traces {
            for p in TracePolicy::all() {
                let out = evaluate_trace(&m, t, p);
                assert!(
                    out.final_profile.is_feasible(&m),
                    "{} infeasible on {}",
                    p.name(),
                    t.label
                );
                assert_eq!(out.requests, t.total_requests());
                assert!(out.hits <= out.requests);
            }
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let m = market(20, 2);
        let t = &standard_traces(20, 8, 60, 3)[1];
        for p in TracePolicy::all() {
            let a = evaluate_trace(&m, t, p);
            let b = evaluate_trace(&m, t, p);
            assert_eq!(a.final_profile, b.final_profile, "{}", p.name());
            assert_eq!(a.hits, b.hits);
            assert!((a.mean_social_cost - b.mean_social_cost).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_popularity_yields_hits() {
        let m = market(25, 4);
        let t = &standard_traces(25, 12, 150, 5)[0];
        for p in TracePolicy::all() {
            let out = evaluate_trace(&m, t, p);
            assert!(out.hits > 0, "{} never hit", p.name());
            assert!(out.hit_rate() <= 1.0);
        }
    }

    #[test]
    fn flash_crowd_triggers_recaching() {
        let m = market(25, 6);
        let flash = &standard_traces(25, 15, 120, 11)[1];
        for p in TracePolicy::all() {
            let out = evaluate_trace(&m, flash, p);
            assert!(
                out.recaches > 0,
                "{} never re-cached under a flash crowd",
                p.name()
            );
        }
    }

    #[test]
    fn game_social_cost_beats_every_eviction_policy() {
        // The claim the `tailgate scenarios` CI gate enforces on the
        // committed bench file, checked here at unit scale.
        let m = market(40, 42);
        for t in &standard_traces(40, 12, 200, 42) {
            let game = evaluate_trace(&m, t, TracePolicy::Game).mean_social_cost;
            for p in [TracePolicy::Lru, TracePolicy::Lfu, TracePolicy::Gdsf] {
                let base = evaluate_trace(&m, t, p).mean_social_cost;
                assert!(
                    game <= base + 1e-9,
                    "game {game} > {} {base} on {}",
                    p.name(),
                    t.label
                );
            }
        }
    }

    #[test]
    fn demand_factors_track_the_flash() {
        let t = &standard_traces(20, 15, 100, 9)[1];
        let f = demand_factors(t);
        let target = t.flash_targets[0] as usize;
        // Mid-flash the target's factor should exceed its pre-flash one.
        let pre = f[3][target];
        let mid = f[9][target];
        assert!(mid > pre, "flash target factor never rose: {pre} -> {mid}");
    }

    #[test]
    fn scaled_market_preserves_feasibility_and_scales_remote() {
        let m = market(15, 8);
        let factors = vec![2.0; 15];
        let s = scaled_market(&m, &factors);
        for l in m.providers() {
            let base = m.provider(l).remote_cost;
            let scaled = s.provider(l).remote_cost;
            assert!((scaled - 2.0 * base).abs() < 1e-9);
            assert!((s.provider(l).compute_demand - m.provider(l).compute_demand).abs() < 1e-12);
        }
    }
}
