//! `OffloadCache` — the greedy decoupled baseline (paper Section IV-A,
//! after \[20\]).
//!
//! Each provider first selects the cloudlet that minimizes its *offloading*
//! cost (user→cloudlet transmission only), then the service is instantiated
//! at that cloudlet — or, if it no longer has room, at the next-best
//! cloudlet by offloading cost, falling back to remote serving. Congestion
//! and consistency-update costs are ignored during the decision, which is
//! exactly why the paper finds this baseline's social cost the highest.

use mec_core::strategy::{Placement, Profile};
use mec_core::ProviderId;
use mec_workload::GeneratedMarket;

/// Outcome of a baseline algorithm run.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// The placement every provider ended up with.
    pub profile: Profile,
    /// Social cost evaluated with the *true* congestion-aware model (Eq. 6).
    pub social_cost: f64,
}

/// Runs `OffloadCache` on a generated market.
///
/// Providers are processed in id order (the "arrival order" of their cache
/// requests); capacities are respected, and a provider whose preferred
/// cloudlets are all full stays remote (or, when remote is forbidden, takes
/// any cloudlet with room).
///
/// # Panics
///
/// Panics if a provider can neither be placed nor stay remote.
pub fn offload_cache(gen: &GeneratedMarket) -> BaselineOutcome {
    let market = &gen.market;
    let n = market.provider_count();
    let mut profile = Profile::all_remote(n);
    let mut residual: Vec<(f64, f64)> = market
        .cloudlets()
        .map(|i| {
            let c = market.cloudlet(i);
            (c.compute_capacity, c.bandwidth_capacity)
        })
        .collect();

    for l in market.providers() {
        // Cloudlets ordered by pure offloading cost.
        let mut order: Vec<_> = market.cloudlets().collect();
        order.sort_by(|&a, &b| {
            gen.offload_cost(l, a)
                .partial_cmp(&gen.offload_cost(l, b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index().cmp(&b.index()))
        });
        let placed = order
            .into_iter()
            .find(|&i| market.fits(l, residual[i.index()]));
        match placed {
            Some(i) => {
                let spec = market.provider(l);
                residual[i.index()].0 -= spec.compute_demand;
                residual[i.index()].1 -= spec.bandwidth_demand;
                profile.set(l, Placement::Cloudlet(i));
            }
            None => {
                assert!(
                    market.provider(l).can_stay_remote(),
                    "provider {l} cannot be placed and may not stay remote"
                );
                profile.set(l, Placement::Remote);
            }
        }
    }

    let social_cost = profile.social_cost(market);
    BaselineOutcome {
        profile,
        social_cost,
    }
}

/// Cost of `l`'s cache request as `OffloadCache` evaluates it (offloading
/// transmission only) — exposed for tests and diagnostics.
pub fn offload_objective(gen: &GeneratedMarket, l: ProviderId) -> f64 {
    gen.market
        .cloudlets()
        .map(|i| gen.offload_cost(l, i))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_workload::{gtitm_scenario, Params};

    fn scenario(providers: usize, seed: u64) -> GeneratedMarket {
        gtitm_scenario(100, &Params::paper().with_providers(providers), seed).generated
    }

    #[test]
    fn produces_feasible_profile() {
        let gen = scenario(40, 1);
        let out = offload_cache(&gen);
        assert!(out.profile.is_feasible(&gen.market));
        assert_eq!(out.profile.len(), 40);
    }

    #[test]
    fn social_cost_matches_profile() {
        let gen = scenario(25, 2);
        let out = offload_cache(&gen);
        assert!((out.social_cost - out.profile.social_cost(&gen.market)).abs() < 1e-9);
    }

    #[test]
    fn providers_prefer_their_cheapest_offload_cloudlet() {
        let gen = scenario(5, 3); // few providers: no capacity pressure
        let out = offload_cache(&gen);
        for l in gen.market.providers() {
            if let Placement::Cloudlet(i) = out.profile.placement(l) {
                let best = gen
                    .market
                    .cloudlets()
                    .map(|j| gen.offload_cost(l, j))
                    .fold(f64::INFINITY, f64::min);
                assert!((gen.offload_cost(l, i) - best).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic() {
        let gen = scenario(30, 4);
        let a = offload_cache(&gen);
        let b = offload_cache(&gen);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn objective_finite() {
        let gen = scenario(10, 5);
        for l in gen.market.providers() {
            assert!(offload_objective(&gen, l).is_finite());
        }
    }
}
