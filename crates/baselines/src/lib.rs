//! Baseline algorithms the paper compares `LCF` against (Section IV-A).
//!
//! * [`jo_offload_cache`](mod@jo_offload_cache) — per-provider joint caching + offloading after
//!   \[23\], run independently by every provider;
//! * [`offload_cache`](mod@offload_cache) — greedy decoupled offload-then-cache after \[20\];
//! * [`eviction`] — classical cache-eviction placement policies (LRU,
//!   LFU, GDSF) replaying `mec-scenario` dynamic-popularity traces
//!   against the demand-driven game placement.
//!
//! All baselines respect cloudlet capacities and are evaluated under the
//! true congestion-aware social-cost model of `mec-core`.
//!
//! # Examples
//!
//! ```
//! use mec_baselines::{jo_offload_cache, offload_cache, JoConfig};
//! use mec_workload::{gtitm_scenario, Params};
//!
//! let s = gtitm_scenario(100, &Params::paper().with_providers(20), 1);
//! let greedy = offload_cache(&s.generated);
//! let joint = jo_offload_cache(&s.generated, &JoConfig::default());
//! assert!(greedy.profile.is_feasible(&s.generated.market));
//! assert!(joint.profile.is_feasible(&s.generated.market));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eviction;
pub mod jo_offload_cache;
pub mod offload_cache;
pub mod reference;

pub use eviction::{demand_factors, evaluate_trace, scaled_market, TraceOutcome, TracePolicy};
pub use jo_offload_cache::{jo_offload_cache, JoConfig};
pub use offload_cache::{offload_cache, offload_objective, BaselineOutcome};
pub use reference::{centralized_greedy, nearest_cloudlet, random_placement};
