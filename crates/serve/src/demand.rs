//! Demand observation: the bridge between the I/O side (which sees
//! queries) and the shard writers (which decide placement).
//!
//! Queries never reach a market thread — they are answered from the
//! published [`crate::view::MarketView`] — so the writers would be blind
//! to *where the requests actually go*. A [`DemandTracker`] closes the
//! loop: the I/O threads [`DemandTracker::note`] every query at
//! answer time (one relaxed atomic increment), and each writer folds the
//! accumulated counts into per-provider EWMAs at the start of every
//! maintenance quantum, then scans providers **hottest first**.
//!
//! The scan order is the only thing demand influences. Best responses
//! stay exact (Eq. 3 against the true residuals), so every placement the
//! dynamics settle on is still a Nash equilibrium of the caching game —
//! demand just picks *which* equilibrium the bounded quanta reach first,
//! biasing scarce cloudlet capacity toward the services that are
//! actually being asked for. When no demand has been observed the order
//! degrades to the legacy round-robin rotation, so demand-free
//! deployments behave exactly as before.

use std::sync::atomic::{AtomicU64, Ordering};

/// Smoothing factor for the per-provider request-rate EWMAs folded once
/// per maintenance quantum: `ewma ← (1 − α)·ewma + α·count`. At 0.25 a
/// flash crowd dominates the ordering within ~3 quanta and fades within
/// ~8 quiet ones.
pub const DEMAND_EWMA_ALPHA: f64 = 0.25;

/// Lock-free per-provider query counters, shared by every I/O thread and
/// every shard writer. Writers drain counts with [`DemandTracker::take`]
/// (swap-to-zero), so each observation is folded exactly once even
/// though readers and writers race freely.
#[derive(Debug)]
pub struct DemandTracker {
    counts: Vec<AtomicU64>,
}

impl DemandTracker {
    /// A tracker covering `providers` services, all counts zero.
    pub fn new(providers: usize) -> DemandTracker {
        DemandTracker {
            counts: (0..providers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// An empty tracker: every [`DemandTracker::note`] is ignored and
    /// every [`DemandTracker::take`] returns zero. Contexts built without
    /// an I/O side (the drain benchmark, the legacy in-process driver)
    /// use this so the hot-first ordering stays inert.
    pub fn disabled() -> DemandTracker {
        DemandTracker::new(0)
    }

    /// Number of tracked providers.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when the tracker covers no providers (see
    /// [`DemandTracker::disabled`]).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Records one observed request for `provider`. Out-of-range ids are
    /// ignored (queries for unknown providers carry no demand signal).
    #[inline]
    pub fn note(&self, provider: usize) {
        if let Some(c) = self.counts.get(provider) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drains and returns the count accumulated for `provider` since the
    /// last take. Zero for out-of-range ids.
    #[inline]
    pub fn take(&self, provider: usize) -> u64 {
        self.counts
            .get(provider)
            .map_or(0, |c| c.swap(0, Ordering::Relaxed))
    }
}

/// The provider scan order for one maintenance quantum over `n`
/// providers: hottest first by EWMA (ties broken by index, so the order
/// is total and deterministic), or — when nothing has been observed at
/// all — the legacy round-robin rotation starting at `cursor`.
pub fn demand_order(n: usize, ewma: &[f64], cursor: usize) -> Vec<usize> {
    let any_demand = ewma.iter().take(n).any(|&e| e > 0.0);
    if any_demand {
        let mut order: Vec<usize> = (0..n).collect();
        // Descending by EWMA; missing entries sort as cold.
        order.sort_by(|&a, &b| {
            let ea = ewma.get(a).copied().unwrap_or(0.0);
            let eb = ewma.get(b).copied().unwrap_or(0.0);
            eb.total_cmp(&ea).then(a.cmp(&b))
        });
        order
    } else {
        let start = if n == 0 { 0 } else { cursor % n };
        (start..n).chain(0..start).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_take_roundtrip() {
        let t = DemandTracker::new(3);
        t.note(1);
        t.note(1);
        t.note(2);
        t.note(99); // ignored
        assert_eq!(t.take(0), 0);
        assert_eq!(t.take(1), 2);
        assert_eq!(t.take(1), 0, "take drains");
        assert_eq!(t.take(2), 1);
        assert_eq!(t.take(99), 0);
    }

    #[test]
    fn disabled_tracker_is_inert() {
        let t = DemandTracker::disabled();
        assert!(t.is_empty());
        t.note(0);
        assert_eq!(t.take(0), 0);
    }

    #[test]
    fn order_without_demand_is_cursor_rotation() {
        assert_eq!(demand_order(4, &[0.0; 4], 0), vec![0, 1, 2, 3]);
        assert_eq!(demand_order(4, &[0.0; 4], 2), vec![2, 3, 0, 1]);
        assert_eq!(demand_order(4, &[0.0; 4], 6), vec![2, 3, 0, 1]);
        assert!(demand_order(0, &[], 3).is_empty());
    }

    #[test]
    fn order_with_demand_is_hottest_first() {
        let ewma = [0.5, 4.0, 0.0, 4.0];
        // Ties (1 vs 3) break by index; cold providers trail.
        assert_eq!(demand_order(4, &ewma, 2), vec![1, 3, 0, 2]);
    }

    #[test]
    fn order_tolerates_short_ewma_slice() {
        // A rebuilt book may briefly carry fewer entries than providers.
        assert_eq!(demand_order(3, &[2.0], 0), vec![0, 1, 2]);
    }

    #[test]
    fn tracker_is_shared_across_threads() {
        use std::sync::Arc;
        let t = Arc::new(DemandTracker::new(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            // Short-lived probe threads, joined below. lint: allow(thread-spawn)
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    t.note(0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.take(0), 4000);
    }
}
