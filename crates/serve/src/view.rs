//! Immutable market snapshots for reader threads.
//!
//! The market thread is the only writer; readers (connection threads
//! answering `query`/`stats`) never touch it. After every applied command
//! or maintenance epoch the market thread publishes a fresh
//! [`MarketView`] into a [`SharedView`] — a hand-rolled arc-swap built
//! from `Mutex<Arc<_>>`. Readers take the lock only long enough to clone
//! the `Arc` (two reference-count bumps), then answer any number of
//! requests from the immutable snapshot without contending with the
//! writer.

use std::sync::{Arc, Mutex};

use mec_core::Placement;

/// One immutable published state of the market: everything a reader
/// needs to answer `query` and `stats` without the market thread.
#[derive(Debug, Clone)]
pub struct MarketView {
    /// State version; bumped by the market thread on every mutation.
    pub seq: u64,
    /// Placement per provider (the full universe).
    pub placements: Vec<Placement>,
    /// Current cost per provider (Eq. 3 when cached, remote cost
    /// otherwise). Meaningful only while the provider is active.
    pub costs: Vec<f64>,
    /// Admission flag per provider.
    pub active: Vec<bool>,
    /// Social cost (Eq. 6) summed over the *active* providers.
    pub social_cost: f64,
    /// Congestion count per cloudlet (cached providers at each). In a
    /// sharded daemon only the publishing shard's own region carries
    /// real load; foreign regions read zero here.
    pub congestion: Vec<usize>,
    /// Residual `(compute, bandwidth)` capacity per cloudlet. Peer
    /// shards read this (plus [`MarketView::congestion`]) to estimate
    /// whether migrating a provider into the region could pay off; the
    /// estimate is advisory — admission re-checks on the owning thread.
    pub residual: Vec<(f64, f64)>,
    /// `(compute, bandwidth)` demand per provider, from the publishing
    /// shard's market copy. Feeds the admin placement drill-down.
    pub demands: Vec<(f64, f64)>,
    /// Observed request-rate EWMA per provider (folded from I/O-side
    /// query counts once per maintenance quantum; zero when the daemon
    /// runs without a demand tracker). In a sharded daemon only the
    /// publishing shard's own providers carry a live signal.
    pub demand_ewma: Vec<f64>,
    /// Equilibrium-maintenance epochs run so far.
    pub epochs: u64,
    /// Improving moves applied by those epochs.
    pub moves: u64,
    /// `true` if the most recent full sweep found no improving move.
    pub equilibrium: bool,
}

impl MarketView {
    /// An empty pre-boot view over `providers` providers (all remote,
    /// all inactive).
    pub fn empty(providers: usize) -> Self {
        MarketView {
            seq: 0,
            placements: vec![Placement::Remote; providers],
            costs: vec![0.0; providers],
            active: vec![false; providers],
            social_cost: 0.0,
            congestion: Vec::new(),
            residual: Vec::new(),
            demands: vec![(0.0, 0.0); providers],
            demand_ewma: vec![0.0; providers],
            epochs: 0,
            moves: 0,
            equilibrium: false,
        }
    }

    /// Providers currently admitted.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Providers currently cached at some cloudlet.
    pub fn cached_count(&self) -> usize {
        self.placements
            .iter()
            .filter(|p| matches!(p, Placement::Cloudlet(_)))
            .count()
    }
}

/// A swappable `Arc<MarketView>`: single writer, many readers.
///
/// The vendored tree has no lock-free arc-swap, so this is the simplest
/// correct substitute: readers hold the mutex for an `Arc::clone` only,
/// never across their actual work.
#[derive(Debug)]
pub struct SharedView {
    inner: Mutex<Arc<MarketView>>,
}

impl SharedView {
    /// Creates a shared view seeded with `view`.
    pub fn new(view: MarketView) -> Self {
        SharedView {
            inner: Mutex::new(Arc::new(view)),
        }
    }

    /// Snapshot the current view (cheap: one `Arc` clone under the lock).
    pub fn load(&self) -> Arc<MarketView> {
        // A poisoned lock still guards a structurally valid Arc: the
        // writer replaces the whole Arc atomically under the lock.
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Publishes a new view (writer side).
    pub fn store(&self, view: MarketView) {
        *self.inner.lock().unwrap_or_else(|e| e.into_inner()) = Arc::new(view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sees_latest_store() {
        let shared = SharedView::new(MarketView::empty(3));
        assert_eq!(shared.load().seq, 0);
        let mut v = MarketView::empty(3);
        v.seq = 7;
        v.active[1] = true;
        shared.store(v);
        let got = shared.load();
        assert_eq!(got.seq, 7);
        assert_eq!(got.active_count(), 1);
    }

    #[test]
    fn old_snapshots_stay_valid_after_swap() {
        let shared = SharedView::new(MarketView::empty(2));
        let old = shared.load();
        let mut v = MarketView::empty(2);
        v.seq = 1;
        shared.store(v);
        // The reader that grabbed the old Arc still sees a coherent state.
        assert_eq!(old.seq, 0);
        assert_eq!(shared.load().seq, 1);
    }

    #[test]
    fn counts_distinguish_cached_from_active() {
        use mec_topology::CloudletId;
        let mut v = MarketView::empty(3);
        v.active = vec![true, true, false];
        v.placements[0] = Placement::Cloudlet(CloudletId(0));
        // Provider 1 is active but parked remotely (evicted).
        assert_eq!(v.active_count(), 2);
        assert_eq!(v.cached_count(), 1);
    }
}
