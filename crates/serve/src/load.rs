//! The `marketload` engine: concurrent provider sessions driving a
//! daemon, with per-op latency histograms.
//!
//! The provider universe is split into disjoint slices, one per session.
//! Each session opens its own connection and replays a
//! [`mec_workload::churn`] script over its slice — arrivals become
//! `join`s, departures `leave`s — interleaved with `query` reads and
//! periodic `update` demand changes. Each epoch's requests go out as one
//! *pipelined batch* ([`Client::pipeline`]): one write syscall carries
//! the whole epoch, and the daemon's event loop streams the responses
//! back in order. Latency is measured per op from the start of the batch
//! write to that op's response — the pipelined analogue of round-trip
//! time, so queueing delay inside the daemon still shows up in the tail.
//!
//! Session starts are *staggered* by a small per-session delay: with
//! hundreds of sessions, connecting all at once turns the accept queue
//! into a thundering herd whose connection-setup spike pollutes the
//! first epoch's latencies.
//!
//! Latencies are recorded per op type into always-compiled
//! [`mec_obs::Histogram`]s (nanosecond unit), so the report works
//! without any cargo feature; building with `--features obs`
//! additionally streams the same measurements into the observability
//! trace.

use std::time::{Duration, Instant};

use mec_obs::{json, Histogram};
use mec_workload::churn::{generate_script, ChurnConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::client::Client;
use crate::proto::{Request, Response, StatsReport};

/// Shape of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent sessions (connections); the provider universe is split
    /// evenly across them.
    pub sessions: usize,
    /// Churn epochs each session replays.
    pub epochs: usize,
    /// Queries issued per session per epoch.
    pub queries_per_epoch: usize,
    /// Issue one demand `update` every this many epochs (0 disables).
    pub update_every: usize,
    /// Delay between consecutive session starts (stagger); session `s`
    /// connects `s * stagger` after the run begins.
    pub stagger: Duration,
    /// Base RNG seed; session `s` uses `seed + s`.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            sessions: 8,
            epochs: 20,
            queries_per_epoch: 4,
            update_every: 5,
            stagger: Duration::from_micros(500),
            seed: 1,
        }
    }
}

/// Latency histogram plus outcome counters for one op type.
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    /// Latency distribution in nanoseconds.
    pub latency: Histogram,
    /// Requests answered with `{"ok":0,...}`.
    pub errors: u64,
}

impl OpStats {
    fn record(&mut self, latency: Duration, resp: &Response) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.latency.record(nanos);
        if matches!(resp, Response::Error { .. }) {
            self.errors += 1;
        }
    }

    fn merge(&mut self, other: &OpStats) {
        self.latency.merge(&other.latency);
        self.errors += other.errors;
    }

    /// Tail amplification: p99 over p50 (0 when the histogram is empty).
    pub fn tail_ratio(&self) -> f64 {
        let p50 = self.latency.percentile(0.50);
        if p50 == 0 {
            return 0.0;
        }
        self.latency.percentile(0.99) as f64 / p50 as f64
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Sessions that ran.
    pub sessions: usize,
    /// Size of the provider universe.
    pub providers: usize,
    /// Churn epochs replayed per session.
    pub epochs: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// `join` latencies/outcomes.
    pub join: OpStats,
    /// `leave` latencies/outcomes.
    pub leave: OpStats,
    /// `update` latencies/outcomes.
    pub update: OpStats,
    /// `query` latencies/outcomes.
    pub query: OpStats,
    /// Joins answered `rejected` (admission control, not errors).
    pub rejected: u64,
    /// Daemon stats sampled right after the run.
    pub server: StatsReport,
}

impl LoadReport {
    /// Total requests issued.
    pub fn ops(&self) -> u64 {
        self.write_ops() + self.query.latency.count()
    }

    /// Mutating requests issued (`join` + `leave` + `update`) — the ops
    /// that round-trip through the market thread, as opposed to queries
    /// answered from the published view.
    pub fn write_ops(&self) -> u64 {
        self.join.latency.count() + self.leave.latency.count() + self.update.latency.count()
    }

    /// Aggregate throughput over the whole run.
    pub fn ops_per_sec(&self) -> f64 {
        per_sec(self.ops(), self.elapsed)
    }

    /// Mutating-request throughput — the market thread's write rate,
    /// reported next to the blended number so a query-heavy mix cannot
    /// flatter the daemon.
    pub fn write_ops_per_sec(&self) -> f64 {
        per_sec(self.write_ops(), self.elapsed)
    }

    /// Serializes the report as one flat JSON object (the
    /// `BENCH_serve.json` format), parseable by [`mec_obs::json`].
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"benchmark\":\"serve\"");
        for (k, v) in [
            ("sessions", self.sessions as u64),
            ("providers", self.providers as u64),
            ("epochs", self.epochs as u64),
            ("ops", self.ops()),
            ("write_ops", self.write_ops()),
            ("rejected", self.rejected),
            ("server_seq", self.server.seq),
            ("server_epochs", self.server.epochs),
            ("server_moves", self.server.moves),
            ("server_active", self.server.active as u64),
            ("server_cached", self.server.cached as u64),
            ("server_equilibrium", u64::from(self.server.equilibrium)),
        ] {
            s.push_str(&format!(",\"{k}\":{v}"));
        }
        s.push_str(",\"elapsed_s\":");
        json::push_f64(&mut s, self.elapsed.as_secs_f64());
        s.push_str(",\"ops_per_sec\":");
        json::push_f64(&mut s, self.ops_per_sec());
        s.push_str(",\"write_ops_per_sec\":");
        json::push_f64(&mut s, self.write_ops_per_sec());
        s.push_str(",\"server_social_cost\":");
        json::push_f64(&mut s, self.server.social_cost);
        // Per-shard breakdown (sharded daemons only): lifetime writes,
        // last-drain queue depth, and each shard's write throughput over
        // the run, so a skewed partition shows up as one hot shard.
        if !self.server.shards.is_empty() {
            s.push_str(&format!(",\"shards\":{}", self.server.shards.len()));
            for (k, sh) in self.server.shards.iter().enumerate() {
                s.push_str(&format!(
                    ",\"s{k}_writes\":{},\"s{k}_depth\":{},\"s{k}_write_ops_per_sec\":",
                    sh.writes, sh.depth
                ));
                json::push_f64(&mut s, per_sec(sh.writes, self.elapsed));
            }
        }
        for (name, op) in [
            ("join", &self.join),
            ("leave", &self.leave),
            ("update", &self.update),
            ("query", &self.query),
        ] {
            s.push_str(&format!(
                ",\"{name}_count\":{},\"{name}_errors\":{}",
                op.latency.count(),
                op.errors
            ));
            for (tag, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                s.push_str(&format!(
                    ",\"{name}_{tag}_ns\":{}",
                    op.latency.percentile(q)
                ));
            }
            s.push_str(&format!(",\"{name}_max_ns\":{}", op.latency.max()));
            s.push_str(&format!(",\"{name}_mean_ns\":", name = name));
            json::push_f64(&mut s, op.latency.mean());
            s.push_str(&format!(",\"{name}_p99_p50\":", name = name));
            json::push_f64(&mut s, op.tail_ratio());
        }
        s.push('}');
        s
    }
}

fn per_sec(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

/// What one session thread brings home.
struct SessionResult {
    join: OpStats,
    leave: OpStats,
    update: OpStats,
    query: OpStats,
    rejected: u64,
}

/// Which [`OpStats`] bucket a pipelined request settles into, plus the
/// state bookkeeping its response triggers.
enum OpKind {
    Join(usize),
    Leave,
    Update,
    Query,
}

/// Runs the load against a daemon at `addr` whose provider universe has
/// `providers` entries.
///
/// # Errors
///
/// Fails on connection errors or if any session hits a transport error.
///
/// # Panics
///
/// Panics if `sessions == 0`, `providers < sessions`, or a session
/// thread panics.
pub fn run_load(addr: &str, providers: usize, cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    assert!(cfg.sessions > 0, "need at least one session");
    assert!(
        providers >= cfg.sessions,
        "cannot split {providers} providers across {} sessions",
        cfg.sessions
    );
    let started = Instant::now();
    let results: Vec<std::io::Result<SessionResult>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.sessions)
            .map(|s| {
                // Split [0, providers) into near-equal contiguous slices.
                let lo = s * providers / cfg.sessions;
                let hi = (s + 1) * providers / cfg.sessions;
                scope.spawn(move |_| {
                    // Staggered start: spread the connection setup so the
                    // accept queue never sees the whole fleet at once.
                    let offset = cfg.stagger * s as u32;
                    if !offset.is_zero() {
                        std::thread::sleep(offset);
                    }
                    run_session(addr, lo, hi, cfg, cfg.seed + s as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    })
    .unwrap_or_else(|e| std::panic::resume_unwind(e));

    let elapsed = started.elapsed();
    let mut report = LoadReport {
        sessions: cfg.sessions,
        providers,
        epochs: cfg.epochs,
        elapsed,
        join: OpStats::default(),
        leave: OpStats::default(),
        update: OpStats::default(),
        query: OpStats::default(),
        rejected: 0,
        server: Client::connect(addr)?.stats()?,
    };
    for r in results {
        let r = r?;
        report.join.merge(&r.join);
        report.leave.merge(&r.leave);
        report.update.merge(&r.update);
        report.query.merge(&r.query);
        report.rejected += r.rejected;
    }
    // Mirror the merged distributions into the obs registry so a trace
    // built with `--features obs` carries them too (no-ops otherwise).
    for (name, op) in [
        ("marketload.join.ns", &report.join),
        ("marketload.leave.ns", &report.leave),
        ("marketload.update.ns", &report.update),
        ("marketload.query.ns", &report.query),
    ] {
        for q in [0.50, 0.95, 0.99] {
            mec_obs::record(name, op.latency.percentile(q));
        }
        mec_obs::counter_add(name, op.latency.count());
    }
    mec_obs::counter_add("marketload.rejected", report.rejected);
    Ok(report)
}

/// One session: replay a churn script over the providers `[lo, hi)`, one
/// pipelined batch per epoch.
fn run_session(
    addr: &str,
    lo: usize,
    hi: usize,
    cfg: &LoadConfig,
    seed: u64,
) -> std::io::Result<SessionResult> {
    let slice = hi - lo;
    let mut rng = StdRng::seed_from_u64(seed);
    let script = generate_script(slice, &session_churn(slice, cfg, seed));
    let mut client = Client::connect(addr)?;
    let mut out = SessionResult {
        join: OpStats::default(),
        leave: OpStats::default(),
        update: OpStats::default(),
        query: OpStats::default(),
        rejected: 0,
    };
    let mut joined: Vec<usize> = Vec::with_capacity(slice);
    let mut reqs: Vec<Request> = Vec::new();
    let mut kinds: Vec<OpKind> = Vec::new();
    for (epoch, event) in script.iter().enumerate() {
        reqs.clear();
        kinds.clear();
        for d in &event.departures {
            let global = lo + d.index();
            // The script may depart a provider whose join was rejected;
            // only providers actually admitted get a `leave`.
            if !joined.contains(&global) {
                continue;
            }
            reqs.push(Request::Leave { provider: global });
            kinds.push(OpKind::Leave);
            joined.retain(|&g| g != global);
        }
        for a in &event.arrivals {
            let global = lo + a.index();
            reqs.push(Request::Join {
                provider: global,
                cloudlet: None,
            });
            kinds.push(OpKind::Join(global));
        }
        for _ in 0..cfg.queries_per_epoch {
            let global = lo + rng.random_range(0..slice);
            reqs.push(Request::Query { provider: global });
            kinds.push(OpKind::Query);
        }
        if cfg.update_every > 0 && epoch % cfg.update_every == cfg.update_every - 1 {
            if let Some(&global) = joined.first() {
                // Jitter the demand vector within the workload's typical
                // range; the daemon evicts if the new demand no longer fits.
                let compute = 0.5 + rng.random_range(0..150) as f64 / 100.0;
                let bandwidth = 2.0 + rng.random_range(0..600) as f64 / 100.0;
                reqs.push(Request::UpdateDemand {
                    provider: global,
                    compute,
                    bandwidth,
                });
                kinds.push(OpKind::Update);
            }
        }
        if reqs.is_empty() {
            continue;
        }
        // The whole epoch rides one write; responses come back in request
        // order with per-op latencies from the batch start.
        for (kind, (resp, latency)) in kinds.iter().zip(client.pipeline(&reqs)?) {
            match kind {
                OpKind::Join(global) => {
                    out.join.record(latency, &resp);
                    match resp {
                        Response::Admitted { .. } => joined.push(*global),
                        Response::Rejected { .. } => out.rejected += 1,
                        _ => {}
                    }
                }
                OpKind::Leave => out.leave.record(latency, &resp),
                OpKind::Update => out.update.record(latency, &resp),
                OpKind::Query => out.query.record(latency, &resp),
            }
        }
    }
    Ok(out)
}

/// Scales the default churn shape to a session's slice so the script's
/// ramp never overflows the slice universe.
fn session_churn(slice: usize, cfg: &LoadConfig, seed: u64) -> ChurnConfig {
    let ramp_epochs = (cfg.epochs / 4).clamp(1, slice);
    let ramp_arrivals = (slice / ramp_epochs).max(1).min(slice);
    ChurnConfig {
        epochs: cfg.epochs,
        ramp_epochs,
        ramp_arrivals,
        steady_turnover: (slice / 8).max(1),
        diurnal_period: Some((cfg.epochs / 2).max(2)),
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_shape_fits_every_slice_size() {
        let cfg = LoadConfig::default();
        for slice in 1..40 {
            let c = session_churn(slice, &cfg, 0);
            assert!(
                c.ramp_epochs * c.ramp_arrivals <= slice,
                "slice {slice}: ramp {}x{} overflows",
                c.ramp_epochs,
                c.ramp_arrivals
            );
            // generate_script panics on an invalid shape; run it to be sure.
            let script = generate_script(slice, &c);
            assert_eq!(script.len(), cfg.epochs);
        }
    }

    #[test]
    fn report_json_is_flat_and_parseable() {
        let mut join = OpStats::default();
        join.record(Duration::from_micros(10), &Response::Left);
        join.record(Duration::from_micros(40), &Response::Left);
        let report = LoadReport {
            sessions: 2,
            providers: 10,
            epochs: 5,
            elapsed: Duration::from_millis(1500),
            join,
            leave: OpStats::default(),
            update: OpStats::default(),
            query: OpStats::default(),
            rejected: 3,
            server: StatsReport {
                seq: 9,
                providers: 10,
                active: 4,
                cached: 4,
                social_cost: 12.5,
                epochs: 2,
                moves: 6,
                equilibrium: true,
                shards: vec![
                    crate::proto::ShardStat {
                        seq: 5,
                        depth: 1,
                        writes: 30,
                    },
                    crate::proto::ShardStat {
                        seq: 4,
                        depth: 0,
                        writes: 12,
                    },
                ],
            },
        };
        let text = report.to_json();
        let fields = json::parse_object(&text).unwrap();
        assert_eq!(json::get_str(&fields, "benchmark").unwrap(), "serve");
        assert_eq!(json::get_u64(&fields, "rejected").unwrap(), 3);
        assert_eq!(json::get_u64(&fields, "server_equilibrium").unwrap(), 1);
        assert!(json::get_f64(&fields, "ops_per_sec").unwrap() >= 0.0);
        assert_eq!(json::get_u64(&fields, "write_ops").unwrap(), 2);
        assert!(json::get_f64(&fields, "write_ops_per_sec").unwrap() > 0.0);
        assert!(json::get_f64(&fields, "join_p99_p50").unwrap() >= 1.0);
        assert!(json::get_u64(&fields, "join_p99_ns").unwrap() > 0);
        // Empty histogram: the ratio is exactly the 0.0 sentinel.
        // lint: allow(float-cmp)
        assert_eq!(json::get_f64(&fields, "query_p99_p50").unwrap(), 0.0);
        // Per-shard breakdown rides along when the daemon is sharded.
        assert_eq!(json::get_u64(&fields, "shards").unwrap(), 2);
        assert_eq!(json::get_u64(&fields, "s0_writes").unwrap(), 30);
        assert_eq!(json::get_u64(&fields, "s1_depth").unwrap(), 0);
        assert!(json::get_f64(&fields, "s0_write_ops_per_sec").unwrap() > 0.0);
    }

    #[test]
    fn op_stats_count_errors_and_merge() {
        let mut a = OpStats::default();
        a.record(Duration::from_micros(5), &Response::Left);
        a.record(
            Duration::from_micros(5),
            &Response::Error {
                msg: "x".to_string(),
            },
        );
        let mut b = OpStats::default();
        b.record(Duration::from_micros(5), &Response::Left);
        a.merge(&b);
        assert_eq!(a.latency.count(), 3);
        assert_eq!(a.errors, 1);
    }

    #[test]
    fn tail_ratio_is_p99_over_p50() {
        let mut op = OpStats::default();
        for _ in 0..99 {
            op.record(Duration::from_nanos(1000), &Response::Left);
        }
        op.record(Duration::from_nanos(5000), &Response::Left);
        let r = op.tail_ratio();
        assert!(r >= 1.0, "ratio {r} must be at least 1");
        // Empty histogram: the ratio is exactly the 0.0 sentinel.
        // lint: allow(float-cmp)
        assert_eq!(OpStats::default().tail_ratio(), 0.0);
    }
}
