//! Replaying a [`mec_scenario::Trace`] against a live market writer:
//! the socket-free bridge between the dynamic-popularity trace engine
//! and the daemon's demand-driven re-caching.
//!
//! [`run_scenario`] boots one shard writer thread (the same
//! [`crate::market::run_shard`] loop the daemon runs), then walks the
//! trace epoch by epoch:
//!
//! 1. every request in the epoch is noted into the shared
//!    [`DemandTracker`] — exactly what the I/O threads do when they
//!    answer queries;
//! 2. services that drew requests this epoch join the market (if not
//!    already admitted) and services that drew none leave — the
//!    membership churn of the paper's dynamic service market;
//! 3. the driver waits for the maintenance quanta to restore
//!    equilibrium, then scores the epoch's requests against the
//!    published view (a request is a **hit** when its service is cached
//!    at some cloudlet) and counts the **re-cache moves** — admitted
//!    services whose placement changed purely through maintenance.
//!
//! Because every quantum folds the tracker into the hot-first scan
//! order, a flash crowd observed in epoch `e` reshapes which services
//! win scarce capacity from epoch `e+1` on — the demand loop the
//! `scenarios` bench and the CI smoke cell exercise end to end.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mec_core::model::Market;
use mec_core::{Placement, Profile};
use mec_scenario::Trace;

use crate::chan::{self, Sender};
use crate::demand::DemandTracker;
use crate::market::{run_shard, Command, MarketConfig, MarketOutcome, Reply, ShardCtx};
use crate::proto::Response;
use crate::shard::{Coordinator, Router, ShardGauges};
use crate::view::{MarketView, SharedView};

/// How long [`run_scenario`] waits for the writer to reach equilibrium
/// after an epoch's membership churn before scoring anyway. Generously
/// sized: the dynamics are potential-game-terminating, so this only
/// fires if the writer thread is starved.
const EPOCH_SETTLE_MAX: Duration = Duration::from_secs(10);

/// Knobs of the trace replay.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Improving moves allowed per maintenance quantum (matches
    /// [`MarketConfig::epoch_moves`]).
    pub epoch_moves: usize,
    /// Queue-drain batch bound (matches [`MarketConfig::batch_max`]).
    pub batch_max: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            epoch_moves: 32,
            batch_max: 256,
        }
    }
}

/// What one trace replay measured.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Trace label (`zipf_diurnal`, `flash_crowd`, ...).
    pub label: String,
    /// Epochs replayed.
    pub epochs: usize,
    /// Requests scored.
    pub requests: u64,
    /// Requests whose service was cached at a cloudlet when scored.
    pub hits: u64,
    /// Maintenance-driven placement changes of admitted services
    /// (re-caches observed across epoch boundaries).
    pub recaches: u64,
    /// Join commands admitted.
    pub joins: u64,
    /// Join commands rejected for capacity.
    pub rejected: u64,
    /// Leave commands settled.
    pub leaves: u64,
    /// Social cost of the final published view.
    pub final_social_cost: f64,
    /// `true` if the drained placement was a Nash equilibrium.
    pub equilibrium: bool,
    /// Exit-certification violations (non-empty only under `verify`).
    pub violations: Vec<String>,
}

impl ScenarioReport {
    /// Fraction of requests served from a cloudlet cache.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Sends `cmd`-built command for `provider` and returns the reply.
fn roundtrip(tx: &Sender<Command>, build: impl FnOnce(Reply) -> Command) -> Response {
    let (otx, orx) = chan::oneshot();
    assert!(
        tx.send(build(Reply::Oneshot(otx))).is_ok(),
        "market thread exited mid-scenario"
    );
    // lint: allow(panics) — a dead writer mid-replay is unrecoverable.
    orx.recv().expect("market thread dropped a reply")
}

/// Replays `trace` against `market` on a single live writer thread.
///
/// Service `k` of the trace is provider `k` of the market, so the trace
/// must not name more services than the market has providers.
pub fn run_scenario(market: Market, trace: &Trace, cfg: &ScenarioConfig) -> ScenarioReport {
    let n = market.provider_count();
    let m = market.cloudlet_count();
    assert!(
        trace.services <= n,
        "trace names {} services, market has {} providers",
        trace.services,
        n
    );

    let view = Arc::new(SharedView::new(MarketView::empty(n)));
    let demand = Arc::new(DemandTracker::new(n));
    let ctx = ShardCtx::new(
        0,
        1,
        vec![true; m],
        Arc::new(Router::new(n, 1)),
        Vec::new(),
        Vec::new(),
        Arc::new(Coordinator::new(1, vec![0; m], 0)),
        Arc::new(ShardGauges::new(1)),
        None,
    )
    .with_demand(demand.clone());
    // Queue sized for one epoch's worth of churn plus the shutdown.
    let (tx, rx) = chan::bounded::<Command>(n + 8);
    let market_cfg = MarketConfig {
        epoch_moves: cfg.epoch_moves,
        batch_max: cfg.batch_max,
        snapshot_path: None,
    };
    let view_w = view.clone();
    // The writer under test; joined at the end of the replay.
    // lint: allow(thread-spawn)
    let writer = std::thread::spawn(move || -> MarketOutcome {
        run_shard(
            market,
            Profile::all_remote(n),
            vec![false; n],
            0,
            &rx,
            &view_w,
            &market_cfg,
            &ctx,
        )
    });

    let mut report = ScenarioReport {
        label: trace.label.clone(),
        epochs: trace.epoch_count(),
        requests: 0,
        hits: 0,
        recaches: 0,
        joins: 0,
        rejected: 0,
        leaves: 0,
        final_social_cost: 0.0,
        equilibrium: false,
        violations: Vec::new(),
    };
    let mut joined = vec![false; n];
    // Membership and placement as of the previous epoch's settled view:
    // the baseline re-cache moves are measured against.
    let mut prev_joined = vec![false; n];
    let mut prev_placements: Vec<Placement> = vec![Placement::Remote; n];

    for e in 0..trace.epoch_count() {
        // 1. The epoch's requests become demand observations, exactly as
        //    the I/O threads would note them at query-answer time.
        for &s in trace.requests_in(e) {
            demand.note(s as usize);
        }
        let counts = trace.counts(e);

        // 2. Membership churn: cold services leave first (freeing
        //    capacity), then warm services join. Each command breaks
        //    equilibrium, so the writer's next idle gap runs quanta —
        //    which is where the demand fold and hot-first re-caching
        //    happen.
        for (s, &c) in counts.iter().enumerate() {
            if c == 0 && joined[s] {
                let resp = roundtrip(&tx, |reply| Command::Leave { provider: s, reply });
                if matches!(resp, Response::Left) {
                    joined[s] = false;
                    report.leaves += 1;
                }
            }
        }
        for (s, &c) in counts.iter().enumerate() {
            if c > 0 && !joined[s] {
                let resp = roundtrip(&tx, |reply| Command::Join {
                    provider: s,
                    cloudlet: None,
                    reply,
                });
                match resp {
                    Response::Admitted { .. } => {
                        joined[s] = true;
                        report.joins += 1;
                    }
                    Response::Rejected { .. } => report.rejected += 1,
                    // lint: allow(panics) — protocol breach, not a data error.
                    other => panic!("unexpected join reply: {other:?}"),
                }
            }
        }

        // 3. Wait out the maintenance quanta, then score the epoch.
        let settled = wait_equilibrium(&view);
        for (s, was) in prev_placements.iter_mut().enumerate() {
            let now = settled.placements[s];
            // A service admitted at *both* epoch boundaries whose
            // placement moved onto a cloudlet can only have been moved by
            // maintenance — a demand-driven re-cache (a re-home between
            // cloudlets, or a rescue from a remote eviction). Fresh joins
            // place directly and are excluded by `prev_joined`.
            if prev_joined[s] && joined[s] && now != *was && matches!(now, Placement::Cloudlet(_)) {
                report.recaches += 1;
            }
            *was = now;
        }
        prev_joined.copy_from_slice(&joined);
        for &s in trace.requests_in(e) {
            report.requests += 1;
            let s = s as usize;
            if settled.active[s] && matches!(settled.placements[s], Placement::Cloudlet(_)) {
                report.hits += 1;
            }
        }
    }

    let resp = roundtrip(&tx, |reply| Command::Shutdown { reply });
    assert!(matches!(resp, Response::Draining), "shutdown not honored");
    drop(tx);
    // lint: allow(panics) — propagate writer panics to the caller.
    let outcome = writer.join().expect("writer thread panicked");
    report.final_social_cost = view.load().social_cost;
    report.equilibrium = outcome.equilibrium;
    report.violations = outcome.violations;
    report
}

/// Polls the published view until the writer reports equilibrium (or the
/// settle backstop fires) and returns the settled snapshot.
fn wait_equilibrium(view: &SharedView) -> Arc<MarketView> {
    let started = Instant::now();
    loop {
        let v = view.load();
        if v.equilibrium || started.elapsed() > EPOCH_SETTLE_MAX {
            return v;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_scenario::{standard_traces, TraceConfig};
    use mec_workload::{gtitm_scenario, Params};

    fn market(providers: usize) -> Market {
        gtitm_scenario(100, &Params::paper().with_providers(providers), 11)
            .generated
            .market
    }

    #[test]
    fn replay_scores_every_request() {
        let trace = TraceConfig::new("unit", 12, 6, 40, 5).generate();
        let r = run_scenario(market(12), &trace, &ScenarioConfig::default());
        assert_eq!(r.requests, trace.total_requests());
        assert_eq!(r.epochs, 6);
        assert!(r.equilibrium, "writer must drain at equilibrium");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.hits <= r.requests);
    }

    #[test]
    fn warm_services_get_cached() {
        // Plenty of capacity: everything that joins should be cached, so
        // the hit rate is high (cold epochs aside).
        let trace = TraceConfig::new("warm", 8, 5, 80, 3).generate();
        let r = run_scenario(market(8), &trace, &ScenarioConfig::default());
        assert!(
            r.hit_rate() > 0.5,
            "expected mostly hits with ample capacity, got {}",
            r.hit_rate()
        );
        assert!(r.joins > 0);
    }

    #[test]
    fn flash_crowd_trace_replays_cleanly() {
        let traces = standard_traces(16, 9, 60, 42);
        let flash = traces
            .iter()
            .find(|t| t.label == "flash_crowd")
            .expect("standard flash trace");
        let r = run_scenario(market(16), flash, &ScenarioConfig::default());
        assert_eq!(r.label, "flash_crowd");
        assert!(r.equilibrium);
        assert!(r.requests > 0);
    }
}
