//! The single-writer market thread: batched admission control,
//! preemptible equilibrium maintenance, snapshots, and graceful drain.
//!
//! One thread owns the [`Market`] and an incremental [`GameState`] over
//! it. I/O threads enqueue [`Command`]s on a bounded channel; the market
//! thread drains the queue in *batches* — everything queued is taken in
//! one lock, applied in one pass over the state, and covered by a single
//! published [`MarketView`]. Publishing is the expensive step (`O(N)`
//! placement/cost vectors per view), so amortizing one publish over a
//! whole batch is where the daemon's write throughput comes from.
//!
//! Read-your-writes is preserved batch-wide: the view covering a batch
//! is published *before* any command in the batch is acknowledged, so a
//! client holding a reply can immediately observe its write through
//! `query`/`stats` — whichever thread answers the read.
//!
//! Whenever a drain comes back empty and the active players are not yet
//! at equilibrium, the thread spends the gap on one *maintenance
//! quantum*: a bounded best-response sweep applying at most
//! `epoch_moves` improving moves (Lemma 3 dynamics). Quanta interleave
//! with queue drains, so maintenance is preemptible — a request burst
//! waits for at most one quantum, never a full convergence run — while
//! the exact-potential argument still guarantees the dynamics terminate
//! once the queue goes quiet. At equilibrium with an empty queue the
//! thread blocks on the channel and costs nothing.
//!
//! [`GameState`] borrows the market, so commands that must mutate the
//! market itself (demand updates, restores) publish and acknowledge the
//! batch prefix, exit the serving loop, mutate, and rebuild the state in
//! `O(N + M)` — the `'rebuild` pattern. The unapplied batch remainder is
//! carried across the rebuild and applied against the fresh state.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mec_core::game::IMPROVEMENT_TOL;
use mec_core::model::Market;
use mec_core::{
    load_snapshot, save_snapshot, save_snapshot_sharded, GameState, Placement, Profile, ProviderId,
    ShardMeta,
};
use mec_topology::CloudletId;

use crate::chan::{OneSender, Receiver, RecvTimeout, Sender, TrySendError};
use crate::demand::{demand_order, DemandTracker, DEMAND_EWMA_ALPHA};
use crate::eventloop::Completions;
use crate::proto::{Request, Response, StatsReport};
use crate::shard::{
    parse_manifest, shard_snapshot_path, write_manifest, CoordKind, CoordOp, Coordinator, DrainOp,
    Manifest, Router, ShardGauges,
};
use crate::view::{MarketView, SharedView};

/// Same slack as [`Market::fits`], used when debiting reservations.
const CAP_SLACK: f64 = 1e-9;

/// How long an idle sharded writer sleeps between housekeeping ticks
/// (rebalance scans, noticing the I/O side went away). Single-shard
/// markets keep the legacy behavior of blocking indefinitely.
const IDLE_TICK: Duration = Duration::from_millis(10);

/// Housekeeping ticks between cross-shard rebalance scans.
const REBALANCE_TICKS: u64 = 8;

/// Minimum relative cost improvement before a cross-shard migration is
/// worth the handoff (on top of [`IMPROVEMENT_TOL`]).
const MIGRATION_MARGIN: f64 = 0.01;

/// Backstop for the drain linger: if a peer shard wedges, stop waiting
/// for the quiesce barrier after this long and finish anyway.
const DRAIN_LINGER_MAX: Duration = Duration::from_secs(5);

/// Where a command's response goes once the market thread settles it.
pub enum Reply {
    /// A blocking oneshot slot (in-process drivers, unit tests).
    Oneshot(OneSender<Response>),
    /// An event-loop route: the response is pushed into the owning I/O
    /// thread's completion mailbox, keyed by connection and request id,
    /// and the loop serializes it in request order.
    Conn {
        /// The owning I/O thread's completion mailbox.
        mailbox: Arc<Completions>,
        /// Connection id within that thread.
        conn: u64,
        /// Request id within that connection.
        req: u64,
    },
}

impl Reply {
    /// Delivers the response to whoever is waiting.
    pub fn send(self, resp: Response) {
        match self {
            Reply::Oneshot(tx) => tx.send(resp),
            Reply::Conn { mailbox, conn, req } => mailbox.push(conn, req, resp),
        }
    }
}

impl From<OneSender<Response>> for Reply {
    fn from(tx: OneSender<Response>) -> Reply {
        Reply::Oneshot(tx)
    }
}

/// A mutating request, carried from an I/O thread to the market thread
/// with its reply route. Reads (`query`/`stats`) never become commands —
/// they are answered from the published [`MarketView`].
pub enum Command {
    /// Admit a provider (optionally at a specific cloudlet).
    Join {
        /// Provider id.
        provider: usize,
        /// Requested cloudlet, if any.
        cloudlet: Option<usize>,
        /// Reply route.
        reply: Reply,
    },
    /// Deactivate a provider.
    Leave {
        /// Provider id.
        provider: usize,
        /// Reply route.
        reply: Reply,
    },
    /// Replace a provider's demand vector.
    Update {
        /// Provider id.
        provider: usize,
        /// New compute demand.
        compute: f64,
        /// New bandwidth demand.
        bandwidth: f64,
        /// Reply route.
        reply: Reply,
    },
    /// Write the snapshot file now.
    Snapshot {
        /// Reply route.
        reply: Reply,
    },
    /// Reload state from the snapshot file.
    Restore {
        /// Reply route.
        reply: Reply,
    },
    /// Begin a graceful drain.
    Shutdown {
        /// Reply route.
        reply: Reply,
    },
    /// (cross-shard) A join handed over from another shard. Ownership has
    /// already transferred to the receiver; the provider's authoritative
    /// demands ride along so the receiver can sync its market copy.
    JoinForward {
        /// Provider id.
        provider: usize,
        /// Requested cloudlet, if any.
        cloudlet: Option<usize>,
        /// Authoritative compute demand.
        compute: f64,
        /// Authoritative bandwidth demand.
        bandwidth: f64,
        /// Shards tried so far (a generic join gives up after a full lap).
        hop: usize,
        /// Reply route.
        reply: Reply,
    },
    /// (cross-shard) Phase 1 of a migration handoff: reserve capacity at
    /// `cloudlet` on the receiving shard.
    MigrateReserve {
        /// Provider id.
        provider: usize,
        /// Target cloudlet (in the receiver's region).
        cloudlet: usize,
        /// Compute demand to reserve.
        compute: f64,
        /// Bandwidth demand to reserve.
        bandwidth: f64,
        /// Source shard awaiting the grant.
        from: usize,
    },
    /// (cross-shard) The target's answer to a reservation.
    MigrateGrant {
        /// Provider id.
        provider: usize,
        /// `true` if capacity was reserved.
        granted: bool,
    },
    /// (cross-shard) Phase 2: the source released the provider; place it.
    MigrateCommit {
        /// Provider id.
        provider: usize,
        /// Reserved cloudlet.
        cloudlet: usize,
        /// Authoritative compute demand.
        compute: f64,
        /// Authoritative bandwidth demand.
        bandwidth: f64,
    },
    /// (cross-shard) Cancel a granted reservation.
    MigrateAbort {
        /// Provider id.
        provider: usize,
    },
    /// (coordinated) Phase 1 of a multi-shard snapshot/restore: pause
    /// migrations and ack once in-flight handoffs have resolved.
    Prepare {
        /// The coordinated operation.
        op: Arc<CoordOp>,
    },
    /// (coordinated) Phase 2: write/load this shard's slice.
    Apply {
        /// The coordinated operation.
        op: Arc<CoordOp>,
    },
    /// (coordinated) Graceful drain of a sharded daemon.
    DrainAll {
        /// The shared drain barrier.
        op: Arc<DrainOp>,
    },
}

/// Builds the market command for a mutating request. Read requests are
/// answered from the view and never reach the market thread; asking for
/// a command for one returns the error response to send instead.
pub fn command_for(req: Request, reply: Reply) -> Result<Command, Response> {
    Ok(match req {
        Request::Join { provider, cloudlet } => Command::Join {
            provider,
            cloudlet,
            reply,
        },
        Request::Leave { provider } => Command::Leave { provider, reply },
        Request::UpdateDemand {
            provider,
            compute,
            bandwidth,
        } => Command::Update {
            provider,
            compute,
            bandwidth,
            reply,
        },
        Request::Snapshot => Command::Snapshot { reply },
        Request::Restore => Command::Restore { reply },
        Request::Shutdown => Command::Shutdown { reply },
        Request::Query { .. } | Request::Stats => {
            return Err(Response::Error {
                msg: "read requests are answered from the view".to_string(),
            })
        }
    })
}

/// Tuning knobs of the market thread.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Improving moves allowed per maintenance quantum.
    pub epoch_moves: usize,
    /// Most commands taken from the queue per drain (one published view
    /// covers the whole batch).
    pub batch_max: usize,
    /// Snapshot file; `None` disables `snapshot`/`restore` and the final
    /// drain snapshot.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            epoch_moves: 32,
            batch_max: 256,
            snapshot_path: None,
        }
    }
}

/// Everything one shard's writer thread shares with the rest of the
/// daemon: its region, the ownership router, peer queues and views, and
/// the coordination barriers. The legacy single-market entry point
/// ([`run_market`]) builds a trivial one-shard context.
pub struct ShardCtx {
    /// This shard's index.
    pub index: usize,
    /// Total shard count.
    pub shards: usize,
    /// Cloudlet→"belongs to this shard" mask over the full topology.
    pub mine: Vec<bool>,
    /// Provider→shard ownership map (shared with the I/O threads).
    pub router: Arc<Router>,
    /// Command senders to every shard, self included (empty in the
    /// legacy wrapper — nothing is ever forwarded at one shard).
    pub peers: Vec<Sender<Command>>,
    /// Published views of every shard, self included (used for
    /// cross-shard rebalance estimates).
    pub views: Vec<Arc<SharedView>>,
    /// Shared epochs and drain/quiesce barriers.
    pub coord: Arc<Coordinator>,
    /// Per-shard depth/write gauges read by `stats`.
    pub gauges: Arc<ShardGauges>,
    /// Live I/O-side senders; at zero the shard self-drains. `None` in
    /// the legacy wrapper, which relies on channel disconnection.
    pub io_live: Option<Arc<AtomicUsize>>,
    /// Per-provider query counters noted by the I/O side; folded into
    /// demand EWMAs at quantum start. Defaults to the inert
    /// [`DemandTracker::disabled`] — attach a live one with
    /// [`ShardCtx::with_demand`].
    pub demand: Arc<DemandTracker>,
    /// Interned probe name for this shard's publish latency.
    publish_probe: &'static str,
}

/// Literal per-shard publish probes (the common shard counts); higher
/// indices intern a leaked name once per shard thread.
const PUBLISH_PROBES: [&str; 4] = [
    "serve.publish.s0.ns",
    "serve.publish.s1.ns",
    "serve.publish.s2.ns",
    "serve.publish.s3.ns",
];

impl ShardCtx {
    /// Builds the context for shard `index` of `shards`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        shards: usize,
        mine: Vec<bool>,
        router: Arc<Router>,
        peers: Vec<Sender<Command>>,
        views: Vec<Arc<SharedView>>,
        coord: Arc<Coordinator>,
        gauges: Arc<ShardGauges>,
        io_live: Option<Arc<AtomicUsize>>,
    ) -> ShardCtx {
        assert!(index < shards, "shard index out of range");
        let publish_probe = if shards == 1 {
            "serve.publish.ns"
        } else if let Some(name) = PUBLISH_PROBES.get(index).copied() {
            name
        } else {
            Box::leak(format!("serve.publish.s{index}.ns").into_boxed_str())
        };
        ShardCtx {
            index,
            shards,
            mine,
            router,
            peers,
            views,
            coord,
            gauges,
            io_live,
            demand: Arc::new(DemandTracker::disabled()),
            publish_probe,
        }
    }

    /// Attaches the live demand tracker shared with the I/O threads
    /// (builder-style; the default context carries an inert tracker).
    pub fn with_demand(mut self, demand: Arc<DemandTracker>) -> ShardCtx {
        self.demand = demand;
        self
    }

    /// `true` if cloudlet `c` belongs to this shard's region.
    fn owns_cloudlet(&self, c: usize) -> bool {
        self.mine.get(c).copied().unwrap_or(false)
    }

    /// `true` once every I/O-side sender has exited (sharded daemons
    /// cannot rely on channel disconnection — peers hold senders too).
    fn io_gone(&self) -> bool {
        self.io_live
            .as_ref()
            .is_some_and(|l| l.load(Ordering::Acquire) == 0)
    }
}

/// What the market thread hands back when it drains.
#[derive(Debug)]
pub struct MarketOutcome {
    /// Final state version.
    pub seq: u64,
    /// Final placement profile.
    pub profile: Profile,
    /// Final admission mask.
    pub active: Vec<bool>,
    /// Maintenance quanta run over the daemon's lifetime.
    pub epochs: u64,
    /// Improving moves those quanta applied.
    pub moves: u64,
    /// `true` if the drained placement is a Nash equilibrium of the
    /// active providers.
    pub equilibrium: bool,
    /// Violations found by the exit certification (always empty unless
    /// the `verify` feature is on and something is wrong).
    pub violations: Vec<String>,
}

/// A reply whose command forced a `'rebuild` — it is answered (and the
/// rebuilt view published) before the new serving loop starts.
enum Pending {
    /// `update_demand`: settle eviction on the rebuilt state.
    Update(ProviderId, Reply),
    /// `restore`: acknowledge with the restored sequence number.
    Restore(u64, Reply),
    /// A forwarded join whose demands were synced into the market.
    Forward {
        /// Provider id.
        provider: usize,
        /// Requested cloudlet, if any.
        cloudlet: Option<usize>,
        /// Shards tried so far.
        hop: usize,
        /// Reply route.
        reply: Reply,
    },
    /// A migration commit whose demands were synced into the market.
    Commit {
        /// Provider id.
        provider: usize,
        /// Reserved cloudlet.
        cloudlet: usize,
    },
    /// A coordinated restore: ack the apply barrier once the rebuilt
    /// view is published.
    CoordRestore(Arc<CoordOp>),
}

/// Capacity debited at a cloudlet for an in-flight incoming migration.
struct Reservation {
    provider: usize,
    cloudlet: usize,
    compute: f64,
    bandwidth: f64,
}

/// This shard's at-most-one outgoing migration handoff.
struct Outgoing {
    provider: usize,
    target: usize,
    cloudlet: usize,
    /// Set by a drain: answer the pending grant with an abort.
    cancelled: bool,
}

/// Mutable book-keeping that survives `'rebuild` iterations.
struct Book {
    active: Vec<bool>,
    seq: u64,
    epochs: u64,
    moves: u64,
    equilibrium: bool,
    /// Round-robin scan position for maintenance quanta (the fallback
    /// order when no demand has been observed).
    cursor: usize,
    /// Per-provider request-rate EWMAs ([`DEMAND_EWMA_ALPHA`]), folded
    /// from the shared [`DemandTracker`] at every quantum start. Drives
    /// the hot-first maintenance scan and is published in the view.
    demand_ewma: Vec<f64>,
    /// Cross-shard sends that hit a full peer queue, drained FIFO so
    /// per-target ordering is preserved. The writer never blocks on a
    /// peer queue — that is what makes shard-to-shard cycles safe.
    outbound: VecDeque<(usize, Command)>,
    /// Capacity debits granted to in-flight incoming migrations.
    reserved: Vec<Reservation>,
    /// The at-most-one outgoing migration handoff.
    outgoing: Option<Outgoing>,
    /// Providers whose client left between reserve-grant and commit; the
    /// commit is dropped instead of resurrecting them.
    tombstones: Vec<usize>,
    /// `true` between a coordinated prepare and its apply: no new
    /// migrations originate and no reservations are granted.
    paused: bool,
    /// Prepare fan-outs deferred until the outgoing handoff resolves.
    parked_preps: Vec<Arc<CoordOp>>,
    /// Idle housekeeping ticks (throttles rebalance scans).
    ticks: u64,
}

impl Book {
    fn new(active: Vec<bool>, seq: u64) -> Book {
        let n = active.len();
        Book {
            active,
            seq,
            epochs: 0,
            moves: 0,
            equilibrium: false,
            cursor: 0,
            demand_ewma: vec![0.0; n],
            outbound: VecDeque::new(),
            reserved: Vec::new(),
            outgoing: None,
            tombstones: Vec::new(),
            paused: false,
            parked_preps: Vec::new(),
            ticks: 0,
        }
    }
}

/// Runs the market thread to completion. `market`/`profile`/`active`/`seq`
/// are the boot state (possibly restored from a snapshot by the caller);
/// the function returns when a `shutdown` command drains it or every
/// sender disappears. This is the legacy single-shard entry point; a
/// sharded daemon runs [`run_shard`] once per region.
pub fn run_market(
    market: Market,
    profile: Profile,
    active: Vec<bool>,
    seq: u64,
    rx: &Receiver<Command>,
    view: &SharedView,
    cfg: &MarketConfig,
) -> MarketOutcome {
    let n = market.provider_count();
    let m = market.cloudlet_count();
    let ctx = ShardCtx::new(
        0,
        1,
        vec![true; m],
        Arc::new(Router::new(n, 1)),
        Vec::new(),
        Vec::new(),
        Arc::new(Coordinator::new(1, vec![0; m], 0)),
        Arc::new(ShardGauges::new(1)),
        None,
    );
    run_shard(market, profile, active, seq, rx, view, cfg, &ctx)
}

/// Runs one shard's writer thread to completion: the single-shard serving
/// loop plus cross-shard forwarding, two-phase migration, and the
/// coordinated snapshot/restore/drain protocol.
#[allow(clippy::too_many_arguments)]
pub fn run_shard(
    mut market: Market,
    mut profile: Profile,
    active: Vec<bool>,
    seq: u64,
    rx: &Receiver<Command>,
    view: &SharedView,
    cfg: &MarketConfig,
    ctx: &ShardCtx,
) -> MarketOutcome {
    let mut book = Book::new(active, seq);
    // Commands that mutate the market itself finish after the rebuild.
    let mut pending: Option<Pending> = None;
    // The unapplied remainder of a batch interrupted by a rebuild.
    let mut carry: VecDeque<Command> = VecDeque::new();
    let mut batch: Vec<Command> = Vec::new();
    // Replies settled in the current batch, flushed only after the
    // covering view is published.
    let mut acks: Vec<(Reply, Response)> = Vec::new();

    'rebuild: loop {
        let mut state = GameState::new(&market, profile.clone());
        // Publish before acknowledging: a client that sees the reply must
        // be able to read its own write from the view (`query`/`stats`
        // never round-trip through this thread).
        let mut settled: Option<(Response, Reply)> = None;
        let mut restored_op: Option<Arc<CoordOp>> = None;
        match pending.take() {
            None => {}
            Some(Pending::Update(l, reply)) => {
                settled = Some((settle_update(&mut state, &mut book, l), reply));
            }
            Some(Pending::Restore(seq, reply)) => {
                settled = Some((Response::Restored { seq }, reply));
            }
            Some(Pending::Forward {
                provider,
                cloudlet,
                hop,
                reply,
            }) => {
                if let Some((reply, resp)) =
                    handle_join(&mut state, &mut book, ctx, provider, cloudlet, hop, reply)
                {
                    settled = Some((resp, reply));
                }
            }
            Some(Pending::Commit { provider, cloudlet }) => {
                place_commit(&mut state, &mut book, ctx, provider, cloudlet);
            }
            Some(Pending::CoordRestore(op)) => {
                op.fold_seq(book.seq);
                restored_op = Some(op);
            }
        }
        publish_timed(view, &state, &book, ctx);
        if let Some((resp, reply)) = settled {
            reply.send(resp);
        }
        if let Some(op) = restored_op {
            complete_apply(&op, cfg);
        }

        loop {
            drain_outbound(&mut book, ctx);
            if carry.is_empty() {
                // Block only at equilibrium; otherwise peek nonblockingly
                // and spend empty gaps on maintenance quanta. A sharded
                // writer never blocks forever: peers hold its sender, so
                // disconnection cannot signal teardown — it wakes on an
                // idle tick to rebalance and to notice the I/O side died.
                let timeout = if !book.equilibrium {
                    Some(Duration::ZERO)
                } else if ctx.shards > 1 {
                    Some(IDLE_TICK)
                } else {
                    None
                };
                match rx.recv_batch(&mut batch, cfg.batch_max, timeout) {
                    Ok((taken, depth)) => {
                        mec_obs::record("serve.drain.batch", taken as u64);
                        mec_obs::record("serve.drain.depth", depth as u64);
                        mec_obs::gauge("serve.queue.depth", book.seq, depth as f64);
                        ctx.gauges.set_depth(ctx.index, depth);
                        carry.extend(batch.drain(..));
                    }
                    Err(RecvTimeout::Timeout) => {
                        if !book.equilibrium {
                            run_quantum(&mut state, &mut book, ctx, cfg.epoch_moves);
                            publish_timed(view, &state, &book, ctx);
                        } else {
                            maybe_rebalance(&state, &mut book, ctx);
                        }
                        if ctx.shards > 1 && ctx.io_gone() {
                            return drain_and_finish(state, book, cfg, ctx, rx, &mut carry);
                        }
                        continue;
                    }
                    // Every sender (I/O threads) is gone: the server is
                    // tearing down without a drain command.
                    Err(RecvTimeout::Disconnected) => {
                        if ctx.shards > 1 {
                            return drain_and_finish(state, book, cfg, ctx, rx, &mut carry);
                        }
                        return finish(state, book, cfg, ctx);
                    }
                }
            }
            // One pass over the batch; one publish; acks after.
            while let Some(cmd) = carry.pop_front() {
                match cmd {
                    Command::Join {
                        provider,
                        cloudlet,
                        reply,
                    } => {
                        if misrouted(ctx, provider) {
                            chase_owner(
                                &mut book,
                                ctx,
                                provider,
                                Command::Join {
                                    provider,
                                    cloudlet,
                                    reply,
                                },
                            );
                        } else if let Some((reply, resp)) =
                            handle_join(&mut state, &mut book, ctx, provider, cloudlet, 0, reply)
                        {
                            ctx.gauges.add_writes(ctx.index, 1);
                            acks.push((reply, resp));
                        }
                    }
                    Command::Leave { provider, reply } => {
                        if misrouted(ctx, provider) {
                            chase_owner(
                                &mut book,
                                ctx,
                                provider,
                                Command::Leave { provider, reply },
                            );
                        } else {
                            let resp = handle_leave(&mut state, &mut book, provider);
                            ctx.gauges.add_writes(ctx.index, 1);
                            acks.push((reply, resp));
                        }
                    }
                    Command::JoinForward {
                        provider,
                        cloudlet,
                        compute,
                        bandwidth,
                        hop,
                        reply,
                    } => {
                        if provider >= state.len() {
                            acks.push((reply, unknown_provider(provider)));
                        } else if demands_differ(&state, provider, compute, bandwidth) {
                            // Sync the authoritative demands before
                            // settling the join — rebuild dance.
                            publish_timed(view, &state, &book, ctx);
                            flush_acks(&mut acks);
                            profile = state.into_profile();
                            market.set_provider_demand(ProviderId(provider), compute, bandwidth);
                            book.seq += 1;
                            book.equilibrium = false;
                            pending = Some(Pending::Forward {
                                provider,
                                cloudlet,
                                hop,
                                reply,
                            });
                            continue 'rebuild;
                        } else if let Some((reply, resp)) =
                            handle_join(&mut state, &mut book, ctx, provider, cloudlet, hop, reply)
                        {
                            ctx.gauges.add_writes(ctx.index, 1);
                            acks.push((reply, resp));
                        }
                    }
                    Command::MigrateReserve {
                        provider,
                        cloudlet,
                        compute,
                        bandwidth,
                        from,
                    } => {
                        // Authoritative Eq. 4–5 admission on the target's
                        // own thread; never granted while a coordinated
                        // snapshot is between prepare and apply (a commit
                        // admitted then could land behind the apply and
                        // vanish from every slice).
                        let granted = !book.paused
                            && provider < state.len()
                            && ctx.owns_cloudlet(cloudlet)
                            && !book.active[provider]
                            && {
                                let (a, b) = free_at(&state, &book, CloudletId(cloudlet));
                                compute <= a + CAP_SLACK && bandwidth <= b + CAP_SLACK
                            };
                        if granted {
                            book.reserved.push(Reservation {
                                provider,
                                cloudlet,
                                compute,
                                bandwidth,
                            });
                        }
                        send_peer(
                            &mut book,
                            ctx,
                            from,
                            Command::MigrateGrant { provider, granted },
                        );
                    }
                    Command::MigrateGrant { provider, granted } => {
                        handle_grant(&mut state, &mut book, ctx, provider, granted);
                    }
                    Command::MigrateCommit {
                        provider,
                        cloudlet,
                        compute,
                        bandwidth,
                    } => {
                        book.reserved.retain(|r| r.provider != provider);
                        if let Some(ix) = book.tombstones.iter().position(|p| *p == provider) {
                            // The client left while the handoff was in
                            // flight; we own an inactive remote provider.
                            book.tombstones.swap_remove(ix);
                        } else if provider < state.len() && !book.active[provider] {
                            if demands_differ(&state, provider, compute, bandwidth) {
                                publish_timed(view, &state, &book, ctx);
                                flush_acks(&mut acks);
                                profile = state.into_profile();
                                market.set_provider_demand(
                                    ProviderId(provider),
                                    compute,
                                    bandwidth,
                                );
                                pending = Some(Pending::Commit { provider, cloudlet });
                                continue 'rebuild;
                            }
                            place_commit(&mut state, &mut book, ctx, provider, cloudlet);
                            ctx.gauges.add_writes(ctx.index, 1);
                        }
                    }
                    Command::MigrateAbort { provider } => {
                        book.reserved.retain(|r| r.provider != provider);
                        book.tombstones.retain(|p| *p != provider);
                    }
                    Command::Prepare { op } => {
                        book.paused = true;
                        if book.outgoing.is_some() {
                            // Ack only once the in-flight handoff has sent
                            // commit or abort — that FIFO-orders any commit
                            // ahead of the apply fan-out on the target.
                            book.parked_preps.push(op);
                        } else {
                            complete_prepare(&mut book, ctx, &op);
                        }
                    }
                    Command::Apply { op } => match op.kind {
                        CoordKind::Snapshot => {
                            if let Err(msg) = write_shard_slice(&state, &book, cfg, ctx, op.epoch) {
                                op.push_error(msg);
                            }
                            book.paused = false;
                            complete_apply(&op, cfg);
                        }
                        CoordKind::Restore => {
                            book.paused = false;
                            match load_my_slice(cfg, ctx) {
                                Ok(snap) => {
                                    publish_timed(view, &state, &book, ctx);
                                    flush_acks(&mut acks);
                                    drop(state.into_profile());
                                    market = snap.market;
                                    profile = snap.profile;
                                    book.active = snap.active;
                                    book.seq = snap.seq;
                                    book.equilibrium = false;
                                    book.cursor = 0;
                                    book.reserved.clear();
                                    book.tombstones.clear();
                                    if let Some(meta) = &snap.shard {
                                        for (p, owned) in meta.owned.iter().enumerate() {
                                            if *owned {
                                                ctx.router.set_owner(p, ctx.index);
                                            }
                                        }
                                    }
                                    pending = Some(Pending::CoordRestore(op));
                                    continue 'rebuild;
                                }
                                Err(msg) => {
                                    op.push_error(msg);
                                    complete_apply(&op, cfg);
                                }
                            }
                        }
                    },
                    Command::DrainAll { op } => {
                        publish_timed(view, &state, &book, ctx);
                        flush_acks(&mut acks);
                        if op.ack() {
                            if let Some(reply) = op.take_reply() {
                                reply.send(Response::Draining);
                            }
                        }
                        return drain_and_finish(state, book, cfg, ctx, rx, &mut carry);
                    }
                    Command::Update {
                        provider,
                        compute,
                        bandwidth,
                        reply,
                    } => {
                        if misrouted(ctx, provider) {
                            chase_owner(
                                &mut book,
                                ctx,
                                provider,
                                Command::Update {
                                    provider,
                                    compute,
                                    bandwidth,
                                    reply,
                                },
                            );
                            continue;
                        }
                        ctx.gauges.add_writes(ctx.index, 1);
                        let bad = [compute, bandwidth]
                            .iter()
                            .any(|v| !v.is_finite() || *v < 0.0);
                        if provider >= state.len() {
                            acks.push((reply, unknown_provider(provider)));
                        } else if bad {
                            acks.push((
                                reply,
                                Response::Error {
                                    msg: format!(
                                        "demands must be finite and non-negative, \
                                         got ({compute}, {bandwidth})"
                                    ),
                                },
                            ));
                        } else {
                            // The state borrows the market: publish and
                            // acknowledge the batch prefix, then release,
                            // mutate, and rebuild. The remainder stays in
                            // `carry` for the rebuilt state; this reply
                            // waits for the rebuild so it can report the
                            // post-update cost.
                            publish_timed(view, &state, &book, ctx);
                            flush_acks(&mut acks);
                            let l = ProviderId(provider);
                            profile = state.into_profile();
                            market.set_provider_demand(l, compute, bandwidth);
                            book.seq += 1;
                            book.equilibrium = false;
                            pending = Some(Pending::Update(l, reply));
                            continue 'rebuild;
                        }
                    }
                    Command::Restore { reply } => {
                        if ctx.shards > 1 {
                            // Sharded daemons restore through the
                            // coordinated Prepare/Apply fan-out.
                            acks.push((
                                reply,
                                Response::Error {
                                    msg: "sharded restore must go through the coordinator"
                                        .to_string(),
                                },
                            ));
                            continue;
                        }
                        let Some(path) = cfg.snapshot_path.as_deref() else {
                            acks.push((
                                reply,
                                Response::Error {
                                    msg: "daemon was started without --snapshot".to_string(),
                                },
                            ));
                            continue;
                        };
                        match load_snapshot(path) {
                            Ok(snap) => {
                                // Acknowledged only after the rebuild
                                // publishes the rewound view (see the
                                // 'rebuild prologue).
                                publish_timed(view, &state, &book, ctx);
                                flush_acks(&mut acks);
                                drop(state.into_profile());
                                market = snap.market;
                                profile = snap.profile;
                                book.active = snap.active;
                                book.seq = snap.seq;
                                book.equilibrium = false;
                                book.cursor = 0;
                                pending = Some(Pending::Restore(snap.seq, reply));
                                continue 'rebuild;
                            }
                            Err(e) => acks.push((
                                reply,
                                Response::Error {
                                    msg: format!("restore failed: {e}"),
                                },
                            )),
                        }
                    }
                    Command::Snapshot { reply } => {
                        if ctx.shards > 1 {
                            acks.push((
                                reply,
                                Response::Error {
                                    msg: "sharded snapshot must go through the coordinator"
                                        .to_string(),
                                },
                            ));
                        } else {
                            acks.push((reply, write_snapshot(&state, &book, cfg)));
                        }
                    }
                    Command::Shutdown { reply } => {
                        // Settle the batch prefix, announce the drain, and
                        // refuse whatever raced in behind us.
                        publish_timed(view, &state, &book, ctx);
                        flush_acks(&mut acks);
                        reply.send(Response::Draining);
                        if ctx.shards > 1 {
                            // A stray legacy shutdown on a sharded daemon
                            // drains this shard with the full protocol so
                            // in-flight migrations still resolve.
                            return drain_and_finish(state, book, cfg, ctx, rx, &mut carry);
                        }
                        for cmd in carry.drain(..) {
                            refuse(cmd);
                        }
                        for cmd in rx.try_drain() {
                            refuse(cmd);
                        }
                        return finish(state, book, cfg, ctx);
                    }
                }
            }
            publish_timed(view, &state, &book, ctx);
            flush_acks(&mut acks);
        }
    }
}

fn flush_acks(acks: &mut Vec<(Reply, Response)>) {
    for (reply, resp) in acks.drain(..) {
        reply.send(resp);
    }
}

fn unknown_provider(provider: usize) -> Response {
    Response::Error {
        msg: format!("unknown provider {provider}"),
    }
}

/// Bit-exact demand drift check against the shard's local market copy.
fn demands_differ(state: &GameState<'_>, provider: usize, compute: f64, bandwidth: f64) -> bool {
    let spec = state.market().provider(ProviderId(provider));
    spec.compute_demand.to_bits() != compute.to_bits()
        || spec.bandwidth_demand.to_bits() != bandwidth.to_bits()
}

/// Residual capacity at `i` net of migration reservations — the free
/// space admission and best responses are allowed to see.
fn free_at(state: &GameState<'_>, book: &Book, i: CloudletId) -> (f64, f64) {
    let (mut a, mut b) = state.residual(i);
    for r in &book.reserved {
        if r.cloudlet == i.index() {
            a -= r.compute;
            b -= r.bandwidth;
        }
    }
    (a, b)
}

/// `true` if this shard no longer owns `provider` (the router moved it
/// after the I/O thread picked a queue).
fn misrouted(ctx: &ShardCtx, provider: usize) -> bool {
    ctx.shards > 1 && ctx.router.owner(provider) != ctx.index
}

/// Re-routes a misrouted command to the current owner. The chase
/// converges because ownership only changes when the new owner actually
/// processes work for the provider.
fn chase_owner(book: &mut Book, ctx: &ShardCtx, provider: usize, cmd: Command) {
    mec_obs::counter_add("serve.shard.route", 1);
    let owner = ctx.router.owner(provider);
    send_peer(book, ctx, owner, cmd);
}

/// Enqueues a cross-shard command, never blocking: anything that does not
/// fit the peer queue right now waits in `book.outbound` (global FIFO, so
/// per-target ordering is preserved) and is retried every loop iteration.
fn send_peer(book: &mut Book, ctx: &ShardCtx, target: usize, cmd: Command) {
    book.outbound.push_back((target, cmd));
    drain_outbound(book, ctx);
}

fn drain_outbound(book: &mut Book, ctx: &ShardCtx) {
    while let Some((target, cmd)) = book.outbound.pop_front() {
        let Some(tx) = ctx.peers.get(target) else {
            // Legacy wrapper: no peers, nothing to deliver.
            continue;
        };
        match tx.try_send(cmd) {
            Ok(()) => {}
            Err(TrySendError::Full(cmd)) => {
                // Stop at the first full queue: draining past it could
                // reorder two sends to the same target.
                book.outbound.push_front((target, cmd));
                break;
            }
            // Peer thread already exited (teardown): drop the message.
            Err(TrySendError::Closed(_)) => {}
        }
    }
}

/// Hands a join (and the provider's ownership) to `target`.
#[allow(clippy::too_many_arguments)]
fn forward_join(
    state: &GameState<'_>,
    book: &mut Book,
    ctx: &ShardCtx,
    provider: usize,
    cloudlet: Option<usize>,
    hop: usize,
    reply: Reply,
    target: usize,
) {
    let spec = state.market().provider(ProviderId(provider));
    ctx.router.set_owner(provider, target);
    mec_obs::counter_add("serve.shard.route", 1);
    send_peer(
        book,
        ctx,
        target,
        Command::JoinForward {
            provider,
            cloudlet,
            compute: spec.compute_demand,
            bandwidth: spec.bandwidth_demand,
            hop,
            reply,
        },
    );
}

/// Settles the target's answer to this shard's outgoing reservation: on a
/// usable grant, release the provider locally, transfer ownership, and
/// commit on the target; otherwise abort any reserved capacity.
fn handle_grant(
    state: &mut GameState<'_>,
    book: &mut Book,
    ctx: &ShardCtx,
    provider: usize,
    granted: bool,
) {
    let Some(out) = book.outgoing.take() else {
        return; // stale grant: nothing in flight
    };
    if out.provider != provider {
        book.outgoing = Some(out);
        return;
    }
    let usable = !out.cancelled
        && book.active.get(provider).copied().unwrap_or(false)
        && ctx.router.owner(provider) == ctx.index;
    if granted && usable {
        let l = ProviderId(provider);
        let spec = state.market().provider(l);
        let (compute, bandwidth) = (spec.compute_demand, spec.bandwidth_demand);
        state.apply_move(l, Placement::Remote);
        book.active[provider] = false;
        book.seq += 1;
        book.equilibrium = false;
        ctx.router.set_owner(provider, out.target);
        mec_obs::counter_add("serve.shard.migrate", 1);
        ctx.gauges.add_migrations(out.target, 1);
        send_peer(
            book,
            ctx,
            out.target,
            Command::MigrateCommit {
                provider,
                cloudlet: out.cloudlet,
                compute,
                bandwidth,
            },
        );
    } else if granted {
        send_peer(book, ctx, out.target, Command::MigrateAbort { provider });
    }
    resolve_parked(book, ctx);
}

/// Activates a committed provider on the receiving shard. Capacity was
/// reserved at grant time, but demands may have moved underneath the
/// reservation — re-check and fall back to remote (still active; the
/// maintenance quanta re-place it when capacity frees up).
fn place_commit(
    state: &mut GameState<'_>,
    book: &mut Book,
    ctx: &ShardCtx,
    provider: usize,
    cloudlet: usize,
) {
    let l = ProviderId(provider);
    let market = state.market();
    let placement = if cloudlet < market.cloudlet_count()
        && ctx.owns_cloudlet(cloudlet)
        && market.fits(l, free_at(state, book, CloudletId(cloudlet)))
    {
        Placement::Cloudlet(CloudletId(cloudlet))
    } else {
        Placement::Remote
    };
    state.apply_move(l, placement);
    book.active[provider] = true;
    book.seq += 1;
    book.equilibrium = false;
}

/// Acks a prepare; the last shard to ack fans the apply out to everyone
/// (through its outbound, so per-target FIFO holds).
fn complete_prepare(book: &mut Book, ctx: &ShardCtx, op: &Arc<CoordOp>) {
    if op.ack_prepare() {
        for k in 0..ctx.shards {
            send_peer(book, ctx, k, Command::Apply { op: op.clone() });
        }
    }
}

/// Fires deferred prepare-acks once the outgoing handoff has resolved.
fn resolve_parked(book: &mut Book, ctx: &ShardCtx) {
    if book.outgoing.is_some() {
        return;
    }
    for op in std::mem::take(&mut book.parked_preps) {
        complete_prepare(book, ctx, &op);
    }
}

/// Acks an apply; the last shard answers the client — and, for a clean
/// snapshot, writes the manifest first (manifest last on disk, so a crash
/// leaves either the previous complete set or the new one).
fn complete_apply(op: &Arc<CoordOp>, cfg: &MarketConfig) {
    if !op.ack_apply() {
        return;
    }
    let errors = op.take_errors();
    let Some(reply) = op.take_reply() else { return };
    let resp = if !errors.is_empty() {
        Response::Error {
            msg: errors.join("; "),
        }
    } else {
        match op.kind {
            CoordKind::Snapshot => match cfg.snapshot_path.as_deref() {
                Some(base) => match write_manifest(
                    base,
                    &Manifest {
                        epoch: op.epoch,
                        shards: op.shards,
                    },
                ) {
                    Ok(()) => Response::Snapshotted { seq: op.epoch },
                    Err(e) => Response::Error {
                        msg: format!("manifest write failed: {e}"),
                    },
                },
                None => Response::Error {
                    msg: "daemon was started without --snapshot".to_string(),
                },
            },
            CoordKind::Restore => Response::Restored { seq: op.seq() },
        }
    };
    reply.send(resp);
}

/// Writes this shard's slice of the epoch-`epoch` snapshot set.
fn write_shard_slice(
    state: &GameState<'_>,
    book: &Book,
    cfg: &MarketConfig,
    ctx: &ShardCtx,
    epoch: u64,
) -> Result<(), String> {
    let base = cfg
        .snapshot_path
        .as_deref()
        .ok_or_else(|| "daemon was started without --snapshot".to_string())?;
    write_shard_slice_at(state, book, ctx, base, epoch)
}

fn write_shard_slice_at(
    state: &GameState<'_>,
    book: &Book,
    ctx: &ShardCtx,
    base: &Path,
    epoch: u64,
) -> Result<(), String> {
    let meta = ShardMeta {
        epoch,
        index: ctx.index,
        count: ctx.shards,
        owned: (0..state.len())
            .map(|p| ctx.router.owner(p) == ctx.index)
            .collect(),
    };
    save_snapshot_sharded(
        &shard_snapshot_path(base, epoch, ctx.index),
        book.seq,
        state.market(),
        state.profile(),
        &book.active,
        &meta,
    )
    .map_err(|e| format!("shard {} snapshot failed: {e}", ctx.index))
}

/// Loads this shard's slice of the newest manifest-complete snapshot set.
fn load_my_slice(cfg: &MarketConfig, ctx: &ShardCtx) -> Result<mec_core::MarketSnapshot, String> {
    let base = cfg
        .snapshot_path
        .as_deref()
        .ok_or_else(|| "daemon was started without --snapshot".to_string())?;
    let text =
        std::fs::read_to_string(base).map_err(|e| format!("restore failed: {base:?}: {e}"))?;
    let manifest =
        parse_manifest(&text).ok_or_else(|| "snapshot path holds no shard manifest".to_string())?;
    if manifest.shards != ctx.shards {
        return Err(format!(
            "snapshot set has {} shards, daemon runs {}; restart to re-partition",
            manifest.shards, ctx.shards
        ));
    }
    load_snapshot(&shard_snapshot_path(base, manifest.epoch, ctx.index))
        .map_err(|e| format!("shard {} restore failed: {e}", ctx.index))
}

/// Periodic cross-shard rebalance, piggybacked on idle housekeeping
/// ticks: find the owned active provider with the largest estimated gain
/// from moving into a peer region (advisory congestion/residuals read
/// from the peer's published view) and start a reserve→commit handoff.
/// At most one outgoing handoff is in flight per shard.
fn maybe_rebalance(state: &GameState<'_>, book: &mut Book, ctx: &ShardCtx) {
    if ctx.shards == 1 || book.paused || book.outgoing.is_some() {
        return;
    }
    book.ticks += 1;
    if !book.ticks.is_multiple_of(REBALANCE_TICKS) {
        return;
    }
    let views: Vec<Arc<MarketView>> = ctx.views.iter().map(|v| v.load()).collect();
    // One map load per pass: a concurrent admin reload swaps the Arc,
    // and this pass keeps targeting under the map it started with.
    let region_of = ctx.coord.region_map();
    let market = state.market();
    let mut best: Option<(usize, usize, f64)> = None;
    for l in market.providers() {
        let p = l.index();
        if !book.active[p] || ctx.router.owner(p) != ctx.index {
            continue;
        }
        let current = state.provider_cost(l);
        let spec = market.provider(l);
        for i in market.cloudlets() {
            let c = i.index();
            if ctx.owns_cloudlet(c) {
                continue;
            }
            let r = region_of.get(c).copied().unwrap_or(0);
            if r == ctx.index {
                // A reloaded map can point an unowned cloudlet back at
                // this shard; capacity ownership is fixed at boot, so a
                // handoff to ourselves could never be granted.
                continue;
            }
            let Some(v) = views.get(r) else {
                continue;
            };
            let (Some(&cong), Some(&(ra, rb))) = (v.congestion.get(c), v.residual.get(c)) else {
                continue;
            };
            if spec.compute_demand > ra + CAP_SLACK || spec.bandwidth_demand > rb + CAP_SLACK {
                continue;
            }
            let est = market.caching_cost(l, i, cong + 1);
            let gain = current - est;
            if est + IMPROVEMENT_TOL < current * (1.0 - MIGRATION_MARGIN)
                && best.is_none_or(|(_, _, g)| gain > g)
            {
                best = Some((p, c, gain));
            }
        }
    }
    let Some((provider, cloudlet, _)) = best else {
        return;
    };
    let spec = market.provider(ProviderId(provider));
    let target = region_of.get(cloudlet).copied().unwrap_or(0);
    book.outgoing = Some(Outgoing {
        provider,
        target,
        cloudlet,
        cancelled: false,
    });
    mec_obs::record("serve.shard.rebalance.moves", 1);
    send_peer(
        book,
        ctx,
        target,
        Command::MigrateReserve {
            provider,
            cloudlet,
            compute: spec.compute_demand,
            bandwidth: spec.bandwidth_demand,
            from: ctx.index,
        },
    );
}

/// [`GameState::best_response`] restricted to this shard's region, with
/// migration reservations debited from the residuals. Falls through to
/// the exact core implementation when nothing restricts the view.
fn region_best_response(
    state: &GameState<'_>,
    book: &Book,
    ctx: &ShardCtx,
    l: ProviderId,
) -> Option<(Placement, f64)> {
    if ctx.shards == 1 && book.reserved.is_empty() {
        return state.best_response(l);
    }
    let market = state.market();
    let current = state.placement(l);
    let spec = market.provider(l);
    let mut best: Option<(Placement, f64)> = None;
    let mut consider = |p: Placement, cost: f64| {
        let better = match best {
            None => true,
            Some((bp, bc)) => {
                cost < bc - IMPROVEMENT_TOL
                    || ((cost - bc).abs() <= IMPROVEMENT_TOL && p == current && bp != current)
            }
        };
        if better {
            best = Some((p, cost));
        }
    };
    if spec.can_stay_remote() {
        consider(Placement::Remote, spec.remote_cost);
    }
    for i in market.cloudlets() {
        if !ctx.owns_cloudlet(i.index()) {
            continue;
        }
        let (mut free_a, mut free_b) = free_at(state, book, i);
        let mut others = state.congestion(i);
        if current == Placement::Cloudlet(i) {
            free_a += spec.compute_demand;
            free_b += spec.bandwidth_demand;
            others -= 1;
        }
        if market.fits(l, (free_a, free_b)) {
            consider(
                Placement::Cloudlet(i),
                market.caching_cost(l, i, others + 1),
            );
        }
    }
    best
}

/// Admission control (Eq. 4–5 against the maintained residuals, net of
/// migration reservations): place at the requested cloudlet if it fits,
/// else — with no explicit request — at the cheapest fitting cloudlet of
/// this shard's region by Eq. 3. A pinned join for a foreign region is
/// handed to that region's shard; a generic join that does not fit here
/// tries the next shard, giving up after a full lap. Returns the ack to
/// send, or `None` when the join (and the provider's ownership) was
/// forwarded — the receiving shard answers.
fn handle_join(
    state: &mut GameState<'_>,
    book: &mut Book,
    ctx: &ShardCtx,
    provider: usize,
    cloudlet: Option<usize>,
    hop: usize,
    reply: Reply,
) -> Option<(Reply, Response)> {
    if provider >= state.len() {
        return Some((reply, unknown_provider(provider)));
    }
    let l = ProviderId(provider);
    if book.active[provider] {
        return Some((
            reply,
            Response::Error {
                msg: format!("provider {provider} already joined"),
            },
        ));
    }
    let market = state.market();
    if let Some(c) = cloudlet {
        if c >= market.cloudlet_count() {
            return Some((
                reply,
                Response::Error {
                    msg: format!("unknown cloudlet {c}"),
                },
            ));
        }
        if !ctx.owns_cloudlet(c) {
            let target = ctx.coord.region_of(c);
            // Under the boot map the owner is one direct hop away. After
            // an admin topology reload the map can disagree with the
            // boot-time ownership masks (capacity ownership never moves
            // at runtime): a map that points back at this shard, or a
            // forward chain that has done a full lap without finding the
            // mask owner, must reject cleanly instead of bouncing the
            // command between shards forever.
            if target == ctx.index || hop >= ctx.shards {
                mec_obs::counter_add("serve.join.rejected", 1);
                return Some((
                    reply,
                    Response::Rejected {
                        reason: format!(
                            "cloudlet {c} is not owned by any shard under the current \
                             region map (reload moved it off its boot owner; restart \
                             to re-partition)"
                        ),
                    },
                ));
            }
            forward_join(state, book, ctx, provider, cloudlet, hop + 1, reply, target);
            return None;
        }
    }
    let chosen = match cloudlet {
        Some(c) => {
            let i = CloudletId(c);
            market.fits(l, free_at(state, book, i)).then_some(i)
        }
        None => market
            .cloudlets()
            .filter(|&i| ctx.owns_cloudlet(i.index()) && market.fits(l, free_at(state, book, i)))
            .min_by(|&a, &b| {
                let ca = market.caching_cost(l, a, state.congestion(a) + 1);
                let cb = market.caching_cost(l, b, state.congestion(b) + 1);
                ca.total_cmp(&cb)
            }),
    };
    match chosen {
        Some(i) => {
            state.apply_move(l, Placement::Cloudlet(i));
            book.active[provider] = true;
            book.seq += 1;
            book.equilibrium = false;
            mec_obs::counter_add("serve.join.admitted", 1);
            Some((
                reply,
                Response::Admitted {
                    cloudlet: i.index(),
                    cost: state.provider_cost(l),
                },
            ))
        }
        None => {
            if cloudlet.is_none() && ctx.shards > 1 && hop + 1 < ctx.shards {
                let target = (ctx.index + 1) % ctx.shards;
                forward_join(state, book, ctx, provider, None, hop + 1, reply, target);
                return None;
            }
            mec_obs::counter_add("serve.join.rejected", 1);
            Some((
                reply,
                Response::Rejected {
                    reason: match cloudlet {
                        Some(c) => format!("cloudlet {c} lacks capacity for provider {provider}"),
                        None => format!("no cloudlet has capacity for provider {provider}"),
                    },
                },
            ))
        }
    }
}

fn handle_leave(state: &mut GameState<'_>, book: &mut Book, provider: usize) -> Response {
    if provider >= state.len() {
        return unknown_provider(provider);
    }
    if !book.active[provider] {
        // An incoming migration commit may be about to land (the client's
        // leave overtook it): honor the leave by tombstoning the handoff.
        if book.reserved.iter().any(|r| r.provider == provider) {
            book.reserved.retain(|r| r.provider != provider);
            if !book.tombstones.contains(&provider) {
                book.tombstones.push(provider);
            }
            mec_obs::counter_add("serve.leave", 1);
            return Response::Left;
        }
        return Response::Error {
            msg: format!("provider {provider} is not joined"),
        };
    }
    state.apply_move(ProviderId(provider), Placement::Remote);
    book.active[provider] = false;
    book.seq += 1;
    book.equilibrium = false;
    mec_obs::counter_add("serve.leave", 1);
    Response::Left
}

/// Post-rebuild half of `update`: if the new demand no longer fits the
/// provider's current cloudlet, evict to the remote cloud (still active —
/// maintenance quanta will re-place it when capacity frees up).
fn settle_update(state: &mut GameState<'_>, book: &mut Book, l: ProviderId) -> Response {
    let mut evicted = false;
    if let Placement::Cloudlet(i) = state.placement(l) {
        let (a, b) = state.residual(i);
        if a < -1e-9 || b < -1e-9 {
            state.apply_move(l, Placement::Remote);
            book.seq += 1;
            evicted = true;
        }
    }
    mec_obs::counter_add("serve.update", 1);
    if evicted {
        mec_obs::counter_add("serve.update.evicted", 1);
    }
    Response::Updated {
        cost: state.provider_cost(l),
        evicted,
    }
}

fn write_snapshot(state: &GameState<'_>, book: &Book, cfg: &MarketConfig) -> Response {
    let Some(path) = cfg.snapshot_path.as_deref() else {
        return Response::Error {
            msg: "daemon was started without --snapshot".to_string(),
        };
    };
    match save_snapshot(
        path,
        book.seq,
        state.market(),
        state.profile(),
        &book.active,
    ) {
        Ok(()) => Response::Snapshotted { seq: book.seq },
        Err(e) => Response::Error {
            msg: format!("snapshot failed: {e}"),
        },
    }
}

/// Folds the query counts the I/O side accumulated since the last
/// quantum into this shard's per-provider demand EWMAs. Counts for
/// providers owned by other shards are left in the tracker for their
/// owner's next fold; owned EWMAs decay toward zero through quiet
/// quanta (the same update with a zero count).
fn fold_demand(book: &mut Book, ctx: &ShardCtx) {
    if ctx.demand.is_empty() {
        return;
    }
    let n = book.demand_ewma.len().min(ctx.demand.len());
    for p in 0..n {
        if ctx.shards > 1 && ctx.router.owner(p) != ctx.index {
            continue;
        }
        let count = ctx.demand.take(p) as f64;
        let e = &mut book.demand_ewma[p];
        *e = (1.0 - DEMAND_EWMA_ALPHA) * *e + DEMAND_EWMA_ALPHA * count;
    }
}

/// One bounded maintenance quantum: scan the providers **hottest first**
/// (by the demand EWMAs just folded from the I/O side; round-robin from
/// the saved cursor when no demand has ever been observed), applying
/// best responses of *active* providers until `max_moves` improvements
/// land or a full quiet sweep proves the active players are at
/// equilibrium. Demand biases only the order — every move is still an
/// exact best response, so the fixed points stay Nash equilibria; under
/// a bounded quantum the hot services simply get first claim on scarce
/// capacity. Bounding the moves is what makes maintenance preemptible —
/// the serving loop re-checks the queue after every quantum, so a
/// request burst waits for one quantum at most.
fn run_quantum(state: &mut GameState<'_>, book: &mut Book, ctx: &ShardCtx, max_moves: usize) {
    let n = state.len();
    book.epochs += 1;
    mec_obs::counter_add("serve.epoch", 1);
    fold_demand(book, ctx);
    let order = demand_order(n, &book.demand_ewma, book.cursor);
    let mut pos = 0usize;
    let mut applied = 0usize;
    let mut recached = 0u64;
    let mut quiet_streak = 0usize;
    while applied < max_moves && quiet_streak < n {
        let l = ProviderId(order[pos % n]);
        pos += 1;
        if !book.active[l.index()] || (ctx.shards > 1 && ctx.router.owner(l.index()) != ctx.index) {
            quiet_streak += 1;
            continue;
        }
        let current = state.provider_cost(l);
        match region_best_response(state, book, ctx, l) {
            Some((p, cost)) if p != state.placement(l) && cost < current - IMPROVEMENT_TOL => {
                state.apply_move(l, p);
                if matches!(p, Placement::Cloudlet(_)) {
                    recached += 1;
                }
                applied += 1;
                quiet_streak = 0;
            }
            _ => quiet_streak += 1,
        }
    }
    // Advance the fallback rotation exactly as the legacy per-step
    // cursor bump did: one examined provider per iteration.
    book.cursor = (book.cursor + pos) % n.max(1);
    mec_obs::record("serve.quantum.moves", applied as u64);
    if applied > 0 {
        book.moves += applied as u64;
        book.seq += 1;
        mec_obs::counter_add("serve.epoch.moves", applied as u64);
    }
    if recached > 0 {
        mec_obs::counter_add("serve.recache", recached);
    }
    // A full pass with no improving move is exactly the Nash condition
    // restricted to the active players (Lemma 3 terminates the dynamics).
    book.equilibrium = quiet_streak >= n;
}

fn publish(view: &SharedView, state: &GameState<'_>, book: &Book) {
    let market = state.market();
    let placements: Vec<Placement> = market.providers().map(|l| state.placement(l)).collect();
    let costs: Vec<f64> = market.providers().map(|l| state.provider_cost(l)).collect();
    let social_cost = state.subset_cost(market.providers().filter(|l| book.active[l.index()]));
    let congestion = state.congestion_counts().to_vec();
    // Peers read the residuals to estimate migrations: show them the free
    // space net of already-granted reservations so they never over-target.
    let mut residual: Vec<(f64, f64)> = market.cloudlets().map(|i| state.residual(i)).collect();
    for r in &book.reserved {
        residual[r.cloudlet].0 -= r.compute;
        residual[r.cloudlet].1 -= r.bandwidth;
    }
    let demands: Vec<(f64, f64)> = market
        .providers()
        .map(|l| {
            let spec = market.provider(l);
            (spec.compute_demand, spec.bandwidth_demand)
        })
        .collect();
    view.store(MarketView {
        seq: book.seq,
        placements,
        costs,
        active: book.active.clone(),
        social_cost,
        congestion,
        residual,
        demands,
        demand_ewma: book.demand_ewma.clone(),
        epochs: book.epochs,
        moves: book.moves,
        equilibrium: book.equilibrium,
    });
}

/// [`publish`], with the per-batch view-build latency recorded when the
/// probes are armed (`enabled()` is `const`, so the timer folds away in
/// no-op builds). Sharded daemons record per-shard probes
/// (`serve.publish.s<k>.ns`); `obsreport` folds them back together.
fn publish_timed(view: &SharedView, state: &GameState<'_>, book: &Book, ctx: &ShardCtx) {
    if mec_obs::enabled() {
        let t0 = std::time::Instant::now();
        publish(view, state, book);
        mec_obs::record(ctx.publish_probe, t0.elapsed().as_nanos() as u64);
    } else {
        publish(view, state, book);
    }
}

/// Builds the wire stats record from a published view.
pub fn stats_of(view: &MarketView) -> StatsReport {
    StatsReport {
        seq: view.seq,
        providers: view.placements.len(),
        active: view.active_count(),
        cached: view.cached_count(),
        social_cost: view.social_cost,
        epochs: view.epochs,
        moves: view.moves,
        equilibrium: view.equilibrium,
        shards: Vec::new(),
    }
}

/// Folds every shard's published view (plus the shared gauges) into one
/// daemon-wide stats record: totals summed, equilibrium ANDed, and a
/// per-shard breakdown appended. With one shard this is exactly
/// [`stats_of`] — the wire encoding stays byte-identical to the
/// pre-sharding protocol.
pub fn composite_stats(views: &[Arc<SharedView>], gauges: &ShardGauges) -> StatsReport {
    if views.len() == 1 {
        return stats_of(&views[0].load());
    }
    let mut st = StatsReport {
        seq: 0,
        providers: 0,
        active: 0,
        cached: 0,
        social_cost: 0.0,
        epochs: 0,
        moves: 0,
        equilibrium: true,
        shards: Vec::with_capacity(views.len()),
    };
    for (k, view) in views.iter().enumerate() {
        let v = view.load();
        st.seq += v.seq;
        st.providers = v.placements.len();
        st.active += v.active_count();
        st.cached += v.cached_count();
        st.social_cost += v.social_cost;
        st.epochs += v.epochs;
        st.moves += v.moves;
        st.equilibrium &= v.equilibrium;
        st.shards.push(crate::proto::ShardStat {
            seq: v.seq,
            depth: gauges.depth(k) as u64,
            writes: gauges.writes(k),
        });
    }
    st
}

/// Answers a command with the draining error (used for everything queued
/// behind a shutdown, and by I/O threads whose queue closed under them).
pub(crate) fn refuse(cmd: Command) {
    let draining = || Response::Error {
        msg: "daemon is draining".to_string(),
    };
    match cmd {
        Command::Join { reply, .. }
        | Command::Leave { reply, .. }
        | Command::Update { reply, .. }
        | Command::Snapshot { reply }
        | Command::Restore { reply }
        | Command::JoinForward { reply, .. } => reply.send(draining()),
        Command::Shutdown { reply } => reply.send(Response::Draining),
        // Cross-shard bookkeeping has no client waiting on it.
        Command::MigrateReserve { .. }
        | Command::MigrateGrant { .. }
        | Command::MigrateCommit { .. }
        | Command::MigrateAbort { .. } => {}
        // Coordinated ops: fail this shard's share of the barrier so the
        // last arriver answers the client with the drain error.
        Command::Prepare { op } => {
            op.push_error("daemon is draining".to_string());
            let _ = op.ack_prepare();
        }
        Command::Apply { op } => {
            op.push_error("daemon is draining".to_string());
            if op.ack_apply() {
                if let Some(reply) = op.take_reply() {
                    reply.send(draining());
                }
            }
        }
        Command::DrainAll { op } => {
            if op.ack() {
                if let Some(reply) = op.take_reply() {
                    reply.send(Response::Draining);
                }
            }
        }
    }
}

/// Coordinated drain of one shard: announce quiesce (or cancel the
/// in-flight outgoing handoff first), keep servicing migration traffic
/// until every shard has quiesced, then finish independently.
fn drain_and_finish(
    mut state: GameState<'_>,
    mut book: Book,
    cfg: &MarketConfig,
    ctx: &ShardCtx,
    rx: &Receiver<Command>,
    carry: &mut VecDeque<Command>,
) -> MarketOutcome {
    // Quiesce: this shard originates no further migrations. An in-flight
    // outgoing handoff must resolve first (the pending grant is answered
    // with an abort), so commits are never stranded.
    if let Some(out) = book.outgoing.as_mut() {
        out.cancelled = true;
    } else {
        ctx.coord.arrive_quiesced();
    }
    // Coordinated snapshots parked behind the handoff fail with the drain
    // error — their barriers still complete so no client is stranded.
    for op in std::mem::take(&mut book.parked_preps) {
        op.push_error("daemon is draining".to_string());
        complete_prepare(&mut book, ctx, &op);
    }
    // Whatever was already batched rides through the drain handler so
    // in-flight commits still land.
    while let Some(cmd) = carry.pop_front() {
        drain_cmd(&mut state, &mut book, ctx, cmd);
    }
    // Linger until every shard has quiesced, servicing migration traffic
    // (reservation requests are refused, commits/aborts applied). The
    // deadline is a backstop against a wedged peer.
    let deadline = Instant::now() + DRAIN_LINGER_MAX;
    loop {
        drain_outbound(&mut book, ctx);
        if book.outgoing.is_none() && ctx.coord.all_quiesced() {
            break;
        }
        if Instant::now() >= deadline {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(cmd) => drain_cmd(&mut state, &mut book, ctx, cmd),
            Err(RecvTimeout::Timeout) => {}
            Err(RecvTimeout::Disconnected) => break,
        }
    }
    drain_outbound(&mut book, ctx);
    for cmd in rx.try_drain() {
        drain_cmd(&mut state, &mut book, ctx, cmd);
    }
    // Any reservation left now belongs to a handoff that died with its
    // source; drop them so the final equilibrium is unconstrained.
    book.reserved.clear();
    finish(state, book, cfg, ctx)
}

/// Command handling during a drain: client traffic is refused, migration
/// traffic is settled so no provider is lost mid-handoff.
fn drain_cmd(state: &mut GameState<'_>, book: &mut Book, ctx: &ShardCtx, cmd: Command) {
    match cmd {
        Command::MigrateReserve { provider, from, .. } => {
            send_peer(
                book,
                ctx,
                from,
                Command::MigrateGrant {
                    provider,
                    granted: false,
                },
            );
        }
        Command::MigrateGrant { provider, granted } => {
            let resolved = book
                .outgoing
                .as_ref()
                .is_some_and(|out| out.provider == provider);
            if resolved {
                // `resolved` just witnessed `outgoing` is Some for this
                // provider; nothing between the check and the take.
                // lint: allow(panics)
                let out = book.outgoing.take().expect("outgoing checked above");
                if granted {
                    send_peer(book, ctx, out.target, Command::MigrateAbort { provider });
                }
                ctx.coord.arrive_quiesced();
            }
        }
        Command::MigrateCommit {
            provider, cloudlet, ..
        } => {
            // Demand drift cannot rebuild mid-drain; the local demands are
            // used for the capacity re-check and the final slice, which
            // keeps the certificates self-consistent.
            book.reserved.retain(|r| r.provider != provider);
            if let Some(ix) = book.tombstones.iter().position(|p| *p == provider) {
                book.tombstones.swap_remove(ix);
            } else if provider < state.len() && !book.active[provider] {
                place_commit(state, book, ctx, provider, cloudlet);
            }
        }
        Command::MigrateAbort { provider } => {
            book.reserved.retain(|r| r.provider != provider);
            book.tombstones.retain(|p| *p != provider);
        }
        other => refuse(other),
    }
}

/// Drain: run maintenance quanta until the active players reach
/// equilibrium, write the final snapshot (a shard writes its slice of the
/// drain-epoch set; the last shard to finish writes the manifest), and
/// (with the `verify` feature) re-certify the placement from first
/// principles.
fn finish(
    mut state: GameState<'_>,
    mut book: Book,
    cfg: &MarketConfig,
    ctx: &ShardCtx,
) -> MarketOutcome {
    // Equilibrium is guaranteed to be reached: best-response dynamics on
    // the exact-potential game terminate (Lemma 3). The cap is a backstop
    // against a cost-model bug turning the drain into a hot loop.
    let mut guard = 0usize;
    while !book.equilibrium && guard < 100_000 {
        run_quantum(&mut state, &mut book, ctx, usize::MAX);
        guard += 1;
    }
    if let Some(path) = cfg.snapshot_path.as_deref() {
        // Failure here must not abort the drain; the error goes into the
        // outcome for the caller to report.
        if ctx.shards > 1 {
            let epoch = ctx.coord.drain_epoch();
            let wrote = write_shard_slice_at(&state, &book, ctx, path, epoch);
            if wrote.is_err() {
                ctx.coord.mark_drain_failed();
            }
            if ctx.coord.arrive_finished() && !ctx.coord.drain_failed() {
                if let Err(e) = write_manifest(
                    path,
                    &Manifest {
                        epoch,
                        shards: ctx.shards,
                    },
                ) {
                    return outcome(state, book, vec![format!("final manifest failed: {e}")]);
                }
            }
            if let Err(msg) = wrote {
                return outcome(state, book, vec![format!("final snapshot failed: {msg}")]);
            }
        } else if let Err(e) = save_snapshot(
            path,
            book.seq,
            state.market(),
            state.profile(),
            &book.active,
        ) {
            return outcome(state, book, vec![format!("final snapshot failed: {e}")]);
        }
    }
    let violations = certify(&state, &book, ctx);
    outcome(state, book, violations)
}

fn outcome(state: GameState<'_>, book: Book, violations: Vec<String>) -> MarketOutcome {
    MarketOutcome {
        seq: book.seq,
        profile: state.into_profile(),
        active: book.active,
        epochs: book.epochs,
        moves: book.moves,
        equilibrium: book.equilibrium,
        violations,
    }
}

#[cfg(feature = "verify")]
fn certify(state: &GameState<'_>, book: &Book, ctx: &ShardCtx) -> Vec<String> {
    let market = state.market();
    let mut out: Vec<String> = Vec::new();
    out.extend(
        mec_core::check_capacity(market, state.profile())
            .into_iter()
            .map(|v| v.to_string()),
    );
    out.extend(
        mec_core::check_state(state, 1e-6)
            .into_iter()
            .map(|v| v.to_string()),
    );
    if ctx.shards == 1 {
        out.extend(
            mec_core::check_nash(market, state.profile(), &book.active, IMPROVEMENT_TOL)
                .into_iter()
                .map(|v| v.to_string()),
        );
    } else {
        out.extend(certify_region_nash(state, book, ctx));
    }
    out
}

/// Nash certification restricted to this shard's region. The shard's
/// market copy sees foreign cloudlets as empty (their load lives on other
/// shards), so a whole-market `check_nash` would report phantom improving
/// moves into them. Rebuild a sub-market of just the region's cloudlets,
/// re-index the owned placements into it, and certify that.
#[cfg(feature = "verify")]
fn certify_region_nash(state: &GameState<'_>, book: &Book, ctx: &ShardCtx) -> Vec<String> {
    let market = state.market();
    let keep: Vec<usize> = (0..market.cloudlet_count())
        .filter(|&c| ctx.owns_cloudlet(c))
        .collect();
    let mut local_of = vec![None; market.cloudlet_count()];
    for (j, &c) in keep.iter().enumerate() {
        local_of[c] = Some(j);
    }
    let mut b = Market::builder();
    for &c in &keep {
        b = b.cloudlet(market.cloudlet(CloudletId(c)).clone());
    }
    for l in market.providers() {
        b = b.provider(market.provider(l).clone());
    }
    let mut update_cost = Vec::with_capacity(market.provider_count() * keep.len());
    for l in market.providers() {
        for &c in &keep {
            update_cost.push(market.update_cost(l, CloudletId(c)));
        }
    }
    let sub = b.update_cost_matrix(update_cost).build();
    let mut violations = Vec::new();
    let mut placements = Vec::with_capacity(market.provider_count());
    let mut mask = vec![false; market.provider_count()];
    for l in market.providers() {
        let p = l.index();
        let owned = ctx.router.owner(p) == ctx.index;
        let place = match state.placement(l) {
            Placement::Cloudlet(i) if owned => match local_of[i.index()] {
                Some(j) => Placement::Cloudlet(CloudletId(j)),
                None => {
                    violations.push(format!(
                        "shard {}: owned provider {p} placed outside its region",
                        ctx.index
                    ));
                    Placement::Remote
                }
            },
            _ => Placement::Remote,
        };
        placements.push(place);
        mask[p] = owned && book.active[p];
    }
    let profile = Profile::new(placements);
    violations.extend(
        mec_core::check_nash(&sub, &profile, &mask, IMPROVEMENT_TOL)
            .into_iter()
            .map(|v| format!("shard {}: {v}", ctx.index)),
    );
    violations
}

#[cfg(not(feature = "verify"))]
fn certify(_state: &GameState<'_>, _book: &Book, _ctx: &ShardCtx) -> Vec<String> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chan;
    use mec_core::model::{CloudletSpec, ProviderSpec};

    fn tiny_market(providers: usize) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(4.0, 20.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(4.0, 20.0, 0.3, 0.2));
        for _ in 0..providers {
            b = b.provider(ProviderSpec::new(2.0, 8.0, 1.0, 30.0));
        }
        b.uniform_update_cost(0.2).build()
    }

    /// Drives `run_market` synchronously: every command is enqueued before
    /// the thread starts, followed by a shutdown.
    fn drive(market: Market, cmds: Vec<Command>) -> (Vec<Option<Response>>, MarketOutcome) {
        let n = market.provider_count();
        let (tx, rx) = chan::bounded(cmds.len() + 1);
        let view = SharedView::new(MarketView::empty(n));
        let mut receivers = Vec::new();
        for cmd in cmds {
            tx.send(cmd).map_err(|_| ()).unwrap();
        }
        let (sd_tx, sd_rx) = chan::oneshot();
        tx.send(Command::Shutdown {
            reply: sd_tx.into(),
        })
        .map_err(|_| ())
        .unwrap();
        drop(tx);
        let profile = Profile::all_remote(n);
        let outcome = run_market(
            market,
            profile,
            vec![false; n],
            0,
            &rx,
            &view,
            &MarketConfig::default(),
        );
        receivers.push(sd_rx.recv());
        (receivers, outcome)
    }

    fn join(provider: usize) -> (Command, chan::OneReceiver<Response>) {
        let (tx, rx) = chan::oneshot();
        (
            Command::Join {
                provider,
                cloudlet: None,
                reply: tx.into(),
            },
            rx,
        )
    }

    #[test]
    fn join_to_capacity_then_reject_then_leave_readmits() {
        // Each cloudlet fits exactly 2 of these providers (4.0 / 2.0).
        let market = tiny_market(5);
        let n = market.provider_count();
        let (tx, rx) = chan::bounded(16);
        let view = SharedView::new(MarketView::empty(n));

        let mut replies = Vec::new();
        for p in 0..5 {
            let (cmd, r) = join(p);
            tx.send(cmd).map_err(|_| ()).unwrap();
            replies.push(r);
        }
        let (leave_tx, leave_rx) = chan::oneshot();
        tx.send(Command::Leave {
            provider: 0,
            reply: leave_tx.into(),
        })
        .map_err(|_| ())
        .unwrap();
        let (rejoin, rejoin_rx) = join(4);
        tx.send(rejoin).map_err(|_| ()).unwrap();
        let (sd_tx, sd_rx) = chan::oneshot();
        tx.send(Command::Shutdown {
            reply: sd_tx.into(),
        })
        .map_err(|_| ())
        .unwrap();
        drop(tx);

        let outcome = run_market(
            market,
            Profile::all_remote(n),
            vec![false; n],
            0,
            &rx,
            &view,
            &MarketConfig::default(),
        );

        let admitted = replies
            .drain(..4)
            .map(|r| matches!(r.recv(), Some(Response::Admitted { .. })))
            .filter(|x| *x)
            .count();
        assert_eq!(admitted, 4, "four providers fit two 2-slot cloudlets");
        assert!(matches!(
            replies.pop().unwrap().recv(),
            Some(Response::Rejected { .. })
        ));
        assert_eq!(leave_rx.recv(), Some(Response::Left));
        assert!(matches!(rejoin_rx.recv(), Some(Response::Admitted { .. })));
        assert_eq!(sd_rx.recv(), Some(Response::Draining));
        assert_eq!(outcome.active.iter().filter(|a| **a).count(), 4);
        assert!(outcome.equilibrium);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    /// The demand signal must change *which* provider wins scarce
    /// capacity. One cloudlet, two providers: grow both past capacity
    /// (evicting both), shrink both back to a size where exactly one
    /// fits, and let the drain's maintenance quanta re-cache one of
    /// them. With no observations the round-robin cursor picks provider
    /// 0; with provider 1 hot, hot-first must pick provider 1.
    #[test]
    fn observed_demand_biases_recaching_toward_hot_providers() {
        fn run(notes: &[(usize, u64)]) -> (Placement, Placement) {
            let market = Market::builder()
                .cloudlet(CloudletSpec::new(4.0, 20.0, 0.5, 0.5))
                .provider(ProviderSpec::new(2.0, 8.0, 1.0, 30.0))
                .provider(ProviderSpec::new(2.0, 8.0, 1.0, 30.0))
                .uniform_update_cost(0.2)
                .build();
            let demand = Arc::new(DemandTracker::new(2));
            for &(p, c) in notes {
                for _ in 0..c {
                    demand.note(p);
                }
            }
            let ctx = ShardCtx::new(
                0,
                1,
                vec![true; 1],
                Arc::new(Router::new(2, 1)),
                Vec::new(),
                Vec::new(),
                Arc::new(Coordinator::new(1, vec![0; 1], 0)),
                Arc::new(ShardGauges::new(1)),
                None,
            )
            .with_demand(demand);

            let (tx, rx) = chan::bounded(16);
            let view = SharedView::new(MarketView::empty(2));
            let mut receivers = Vec::new();
            for p in 0..2 {
                let (cmd, r) = join(p);
                tx.send(cmd).map_err(|_| ()).unwrap();
                receivers.push(r);
            }
            // Grow past capacity (each eviction), then shrink to a size
            // where one — and only one — fits the cloudlet again.
            for &(compute, bandwidth) in &[(5.0, 8.0), (3.0, 8.0)] {
                for p in 0..2 {
                    let (otx, orx) = chan::oneshot();
                    tx.send(Command::Update {
                        provider: p,
                        compute,
                        bandwidth,
                        reply: otx.into(),
                    })
                    .map_err(|_| ())
                    .unwrap();
                    receivers.push(orx);
                }
            }
            let (sd_tx, sd_rx) = chan::oneshot();
            tx.send(Command::Shutdown {
                reply: sd_tx.into(),
            })
            .map_err(|_| ())
            .unwrap();
            drop(tx);

            let outcome = run_shard(
                market,
                Profile::all_remote(2),
                vec![false; 2],
                0,
                &rx,
                &view,
                &MarketConfig::default(),
                &ctx,
            );
            assert_eq!(sd_rx.recv(), Some(Response::Draining));
            assert!(outcome.equilibrium);
            assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
            (
                outcome.profile.placement(ProviderId(0)),
                outcome.profile.placement(ProviderId(1)),
            )
        }

        let (p0, p1) = run(&[]);
        assert!(
            matches!(p0, Placement::Cloudlet(_)),
            "without demand the round-robin cursor re-caches provider 0, got {p0:?}/{p1:?}"
        );
        assert_eq!(p1, Placement::Remote);

        let (p0, p1) = run(&[(1, 50), (0, 2)]);
        assert_eq!(p0, Placement::Remote);
        assert!(
            matches!(p1, Placement::Cloudlet(_)),
            "hot provider 1 must win the slot under demand-driven ordering, got {p0:?}/{p1:?}"
        );
    }

    #[test]
    fn double_join_and_unknown_ids_error() {
        let market = tiny_market(2);
        let (j0, r0) = join(0);
        let (j0_again, r0_again) = join(0);
        let (j_bad, r_bad) = join(99);
        let (replies, _outcome) = drive(market, vec![j0, j0_again, j_bad]);
        assert!(matches!(r0.recv(), Some(Response::Admitted { .. })));
        assert!(matches!(r0_again.recv(), Some(Response::Error { .. })));
        assert!(matches!(r_bad.recv(), Some(Response::Error { .. })));
        assert_eq!(replies[0], Some(Response::Draining));
    }

    #[test]
    fn update_evicts_when_demand_outgrows_cloudlet() {
        let market = tiny_market(1);
        let (j, jr) = join(0);
        let (u_tx, u_rx) = chan::oneshot();
        let grow = Command::Update {
            provider: 0,
            compute: 100.0,
            bandwidth: 8.0,
            reply: u_tx.into(),
        };
        let (_, outcome) = drive(market, vec![j, grow]);
        assert!(matches!(jr.recv(), Some(Response::Admitted { .. })));
        match u_rx.recv() {
            Some(Response::Updated { evicted, .. }) => assert!(evicted),
            other => panic!("expected Updated, got {other:?}"),
        }
        // Still active, parked remotely; no cloudlet fits 100 compute.
        assert!(outcome.active[0]);
        assert_eq!(outcome.profile.placement(ProviderId(0)), Placement::Remote);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    #[test]
    fn snapshot_without_path_is_an_error() {
        let market = tiny_market(1);
        let (s_tx, s_rx) = chan::oneshot();
        let (_, _) = drive(market, vec![Command::Snapshot { reply: s_tx.into() }]);
        assert!(matches!(s_rx.recv(), Some(Response::Error { .. })));
    }

    #[test]
    fn drain_reaches_equilibrium_of_active_players() {
        // Asymmetric cloudlets: join picks greedily, the drain quanta then
        // settle any provider that could improve.
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 1.5, 1.5))
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.1, 0.1));
        for _ in 0..6 {
            b = b.provider(ProviderSpec::new(1.0, 4.0, 0.5, 40.0));
        }
        let market = b.uniform_update_cost(0.1).build();
        let mut cmds = Vec::new();
        let mut joins = Vec::new();
        for p in 0..6 {
            let (c, r) = join(p);
            cmds.push(c);
            joins.push(r);
        }
        let (_, outcome) = drive(market, cmds);
        for r in joins {
            assert!(matches!(r.recv(), Some(Response::Admitted { .. })));
        }
        assert!(outcome.equilibrium);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    #[test]
    fn mid_batch_rebuild_carries_the_remainder() {
        // A batch of join → update (forces a rebuild) → join → leave must
        // settle every command against the right state: the second join
        // and the leave ride across the `'rebuild` in the carry queue.
        let market = tiny_market(3);
        let (j0, r0) = join(0);
        let (u_tx, u_rx) = chan::oneshot();
        let update = Command::Update {
            provider: 0,
            compute: 1.0,
            bandwidth: 4.0,
            reply: u_tx.into(),
        };
        let (j1, r1) = join(1);
        let (l_tx, l_rx) = chan::oneshot();
        let leave = Command::Leave {
            provider: 0,
            reply: l_tx.into(),
        };
        let (_, outcome) = drive(market, vec![j0, update, j1, leave]);
        assert!(matches!(r0.recv(), Some(Response::Admitted { .. })));
        assert!(matches!(
            u_rx.recv(),
            Some(Response::Updated { evicted: false, .. })
        ));
        assert!(matches!(r1.recv(), Some(Response::Admitted { .. })));
        assert_eq!(l_rx.recv(), Some(Response::Left));
        assert!(!outcome.active[0]);
        assert!(outcome.active[1]);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }
}
