//! The single-writer market thread: batched admission control,
//! preemptible equilibrium maintenance, snapshots, and graceful drain.
//!
//! One thread owns the [`Market`] and an incremental [`GameState`] over
//! it. I/O threads enqueue [`Command`]s on a bounded channel; the market
//! thread drains the queue in *batches* — everything queued is taken in
//! one lock, applied in one pass over the state, and covered by a single
//! published [`MarketView`]. Publishing is the expensive step (`O(N)`
//! placement/cost vectors per view), so amortizing one publish over a
//! whole batch is where the daemon's write throughput comes from.
//!
//! Read-your-writes is preserved batch-wide: the view covering a batch
//! is published *before* any command in the batch is acknowledged, so a
//! client holding a reply can immediately observe its write through
//! `query`/`stats` — whichever thread answers the read.
//!
//! Whenever a drain comes back empty and the active players are not yet
//! at equilibrium, the thread spends the gap on one *maintenance
//! quantum*: a bounded best-response sweep applying at most
//! `epoch_moves` improving moves (Lemma 3 dynamics). Quanta interleave
//! with queue drains, so maintenance is preemptible — a request burst
//! waits for at most one quantum, never a full convergence run — while
//! the exact-potential argument still guarantees the dynamics terminate
//! once the queue goes quiet. At equilibrium with an empty queue the
//! thread blocks on the channel and costs nothing.
//!
//! [`GameState`] borrows the market, so commands that must mutate the
//! market itself (demand updates, restores) publish and acknowledge the
//! batch prefix, exit the serving loop, mutate, and rebuild the state in
//! `O(N + M)` — the `'rebuild` pattern. The unapplied batch remainder is
//! carried across the rebuild and applied against the fresh state.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use mec_core::game::IMPROVEMENT_TOL;
use mec_core::model::Market;
use mec_core::{load_snapshot, save_snapshot, GameState, Placement, Profile, ProviderId};
use mec_topology::CloudletId;

use crate::chan::{OneSender, Receiver, RecvTimeout};
use crate::eventloop::Completions;
use crate::proto::{Request, Response, StatsReport};
use crate::view::{MarketView, SharedView};

/// Where a command's response goes once the market thread settles it.
pub enum Reply {
    /// A blocking oneshot slot (in-process drivers, unit tests).
    Oneshot(OneSender<Response>),
    /// An event-loop route: the response is pushed into the owning I/O
    /// thread's completion mailbox, keyed by connection and request id,
    /// and the loop serializes it in request order.
    Conn {
        /// The owning I/O thread's completion mailbox.
        mailbox: Arc<Completions>,
        /// Connection id within that thread.
        conn: u64,
        /// Request id within that connection.
        req: u64,
    },
}

impl Reply {
    /// Delivers the response to whoever is waiting.
    pub fn send(self, resp: Response) {
        match self {
            Reply::Oneshot(tx) => tx.send(resp),
            Reply::Conn { mailbox, conn, req } => mailbox.push(conn, req, resp),
        }
    }
}

impl From<OneSender<Response>> for Reply {
    fn from(tx: OneSender<Response>) -> Reply {
        Reply::Oneshot(tx)
    }
}

/// A mutating request, carried from an I/O thread to the market thread
/// with its reply route. Reads (`query`/`stats`) never become commands —
/// they are answered from the published [`MarketView`].
pub enum Command {
    /// Admit a provider (optionally at a specific cloudlet).
    Join {
        /// Provider id.
        provider: usize,
        /// Requested cloudlet, if any.
        cloudlet: Option<usize>,
        /// Reply route.
        reply: Reply,
    },
    /// Deactivate a provider.
    Leave {
        /// Provider id.
        provider: usize,
        /// Reply route.
        reply: Reply,
    },
    /// Replace a provider's demand vector.
    Update {
        /// Provider id.
        provider: usize,
        /// New compute demand.
        compute: f64,
        /// New bandwidth demand.
        bandwidth: f64,
        /// Reply route.
        reply: Reply,
    },
    /// Write the snapshot file now.
    Snapshot {
        /// Reply route.
        reply: Reply,
    },
    /// Reload state from the snapshot file.
    Restore {
        /// Reply route.
        reply: Reply,
    },
    /// Begin a graceful drain.
    Shutdown {
        /// Reply route.
        reply: Reply,
    },
}

/// Builds the market command for a mutating request. Read requests are
/// answered from the view and never reach the market thread; asking for
/// a command for one returns the error response to send instead.
pub fn command_for(req: Request, reply: Reply) -> Result<Command, Response> {
    Ok(match req {
        Request::Join { provider, cloudlet } => Command::Join {
            provider,
            cloudlet,
            reply,
        },
        Request::Leave { provider } => Command::Leave { provider, reply },
        Request::UpdateDemand {
            provider,
            compute,
            bandwidth,
        } => Command::Update {
            provider,
            compute,
            bandwidth,
            reply,
        },
        Request::Snapshot => Command::Snapshot { reply },
        Request::Restore => Command::Restore { reply },
        Request::Shutdown => Command::Shutdown { reply },
        Request::Query { .. } | Request::Stats => {
            return Err(Response::Error {
                msg: "read requests are answered from the view".to_string(),
            })
        }
    })
}

/// Tuning knobs of the market thread.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Improving moves allowed per maintenance quantum.
    pub epoch_moves: usize,
    /// Most commands taken from the queue per drain (one published view
    /// covers the whole batch).
    pub batch_max: usize,
    /// Snapshot file; `None` disables `snapshot`/`restore` and the final
    /// drain snapshot.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            epoch_moves: 32,
            batch_max: 256,
            snapshot_path: None,
        }
    }
}

/// What the market thread hands back when it drains.
#[derive(Debug)]
pub struct MarketOutcome {
    /// Final state version.
    pub seq: u64,
    /// Final placement profile.
    pub profile: Profile,
    /// Final admission mask.
    pub active: Vec<bool>,
    /// Maintenance quanta run over the daemon's lifetime.
    pub epochs: u64,
    /// Improving moves those quanta applied.
    pub moves: u64,
    /// `true` if the drained placement is a Nash equilibrium of the
    /// active providers.
    pub equilibrium: bool,
    /// Violations found by the exit certification (always empty unless
    /// the `verify` feature is on and something is wrong).
    pub violations: Vec<String>,
}

/// A reply whose command forced a `'rebuild` — it is answered (and the
/// rebuilt view published) before the new serving loop starts.
enum Pending {
    /// `update_demand`: settle eviction on the rebuilt state.
    Update(ProviderId, Reply),
    /// `restore`: acknowledge with the restored sequence number.
    Restore(u64, Reply),
}

/// Mutable book-keeping that survives `'rebuild` iterations.
struct Book {
    active: Vec<bool>,
    seq: u64,
    epochs: u64,
    moves: u64,
    equilibrium: bool,
    /// Round-robin scan position for maintenance quanta.
    cursor: usize,
}

/// Runs the market thread to completion. `market`/`profile`/`active`/`seq`
/// are the boot state (possibly restored from a snapshot by the caller);
/// the function returns when a `shutdown` command drains it or every
/// sender disappears.
pub fn run_market(
    mut market: Market,
    mut profile: Profile,
    active: Vec<bool>,
    seq: u64,
    rx: &Receiver<Command>,
    view: &SharedView,
    cfg: &MarketConfig,
) -> MarketOutcome {
    let mut book = Book {
        active,
        seq,
        epochs: 0,
        moves: 0,
        equilibrium: false,
        cursor: 0,
    };
    // Commands that mutate the market itself finish after the rebuild.
    let mut pending: Option<Pending> = None;
    // The unapplied remainder of a batch interrupted by a rebuild.
    let mut carry: VecDeque<Command> = VecDeque::new();
    let mut batch: Vec<Command> = Vec::new();
    // Replies settled in the current batch, flushed only after the
    // covering view is published.
    let mut acks: Vec<(Reply, Response)> = Vec::new();

    'rebuild: loop {
        let mut state = GameState::new(&market, profile.clone());
        // Publish before acknowledging: a client that sees the reply must
        // be able to read its own write from the view (`query`/`stats`
        // never round-trip through this thread).
        let settled = pending.take().map(|p| match p {
            Pending::Update(l, reply) => (settle_update(&mut state, &mut book, l), reply),
            Pending::Restore(seq, reply) => (Response::Restored { seq }, reply),
        });
        publish_timed(view, &state, &book);
        if let Some((resp, reply)) = settled {
            reply.send(resp);
        }

        loop {
            if carry.is_empty() {
                // Block only at equilibrium; otherwise peek nonblockingly
                // and spend empty gaps on maintenance quanta.
                let timeout = if book.equilibrium {
                    None
                } else {
                    Some(Duration::ZERO)
                };
                match rx.recv_batch(&mut batch, cfg.batch_max, timeout) {
                    Ok((taken, depth)) => {
                        mec_obs::record("serve.drain.batch", taken as u64);
                        mec_obs::record("serve.drain.depth", depth as u64);
                        mec_obs::gauge("serve.queue.depth", book.seq, depth as f64);
                        carry.extend(batch.drain(..));
                    }
                    Err(RecvTimeout::Timeout) => {
                        run_quantum(&mut state, &mut book, cfg.epoch_moves);
                        publish_timed(view, &state, &book);
                        continue;
                    }
                    // Every sender (I/O threads) is gone: the server is
                    // tearing down without a drain command.
                    Err(RecvTimeout::Disconnected) => {
                        return finish(state, book, cfg, &[]);
                    }
                }
            }
            // One pass over the batch; one publish; acks after.
            while let Some(cmd) = carry.pop_front() {
                match cmd {
                    Command::Join {
                        provider,
                        cloudlet,
                        reply,
                    } => {
                        let resp = handle_join(&mut state, &mut book, provider, cloudlet);
                        acks.push((reply, resp));
                    }
                    Command::Leave { provider, reply } => {
                        let resp = handle_leave(&mut state, &mut book, provider);
                        acks.push((reply, resp));
                    }
                    Command::Update {
                        provider,
                        compute,
                        bandwidth,
                        reply,
                    } => {
                        let bad = [compute, bandwidth]
                            .iter()
                            .any(|v| !v.is_finite() || *v < 0.0);
                        if provider >= state.len() {
                            acks.push((reply, unknown_provider(provider)));
                        } else if bad {
                            acks.push((
                                reply,
                                Response::Error {
                                    msg: format!(
                                        "demands must be finite and non-negative, \
                                         got ({compute}, {bandwidth})"
                                    ),
                                },
                            ));
                        } else {
                            // The state borrows the market: publish and
                            // acknowledge the batch prefix, then release,
                            // mutate, and rebuild. The remainder stays in
                            // `carry` for the rebuilt state; this reply
                            // waits for the rebuild so it can report the
                            // post-update cost.
                            publish_timed(view, &state, &book);
                            flush_acks(&mut acks);
                            let l = ProviderId(provider);
                            profile = state.into_profile();
                            market.set_provider_demand(l, compute, bandwidth);
                            book.seq += 1;
                            book.equilibrium = false;
                            pending = Some(Pending::Update(l, reply));
                            continue 'rebuild;
                        }
                    }
                    Command::Restore { reply } => {
                        let Some(path) = cfg.snapshot_path.as_deref() else {
                            acks.push((
                                reply,
                                Response::Error {
                                    msg: "daemon was started without --snapshot".to_string(),
                                },
                            ));
                            continue;
                        };
                        match load_snapshot(path) {
                            Ok(snap) => {
                                // Acknowledged only after the rebuild
                                // publishes the rewound view (see the
                                // 'rebuild prologue).
                                publish_timed(view, &state, &book);
                                flush_acks(&mut acks);
                                drop(state.into_profile());
                                market = snap.market;
                                profile = snap.profile;
                                book.active = snap.active;
                                book.seq = snap.seq;
                                book.equilibrium = false;
                                book.cursor = 0;
                                pending = Some(Pending::Restore(snap.seq, reply));
                                continue 'rebuild;
                            }
                            Err(e) => acks.push((
                                reply,
                                Response::Error {
                                    msg: format!("restore failed: {e}"),
                                },
                            )),
                        }
                    }
                    Command::Snapshot { reply } => {
                        acks.push((reply, write_snapshot(&state, &book, cfg)));
                    }
                    Command::Shutdown { reply } => {
                        // Settle the batch prefix, announce the drain, and
                        // refuse whatever raced in behind us.
                        publish_timed(view, &state, &book);
                        flush_acks(&mut acks);
                        reply.send(Response::Draining);
                        for cmd in carry.drain(..) {
                            refuse(cmd);
                        }
                        for cmd in rx.try_drain() {
                            refuse(cmd);
                        }
                        return finish(state, book, cfg, &[]);
                    }
                }
            }
            publish_timed(view, &state, &book);
            flush_acks(&mut acks);
        }
    }
}

fn flush_acks(acks: &mut Vec<(Reply, Response)>) {
    for (reply, resp) in acks.drain(..) {
        reply.send(resp);
    }
}

fn unknown_provider(provider: usize) -> Response {
    Response::Error {
        msg: format!("unknown provider {provider}"),
    }
}

/// Admission control (Eq. 4–5 against the maintained residuals): place at
/// the requested cloudlet if it fits, else — with no explicit request —
/// at the cheapest fitting cloudlet by Eq. 3. A full market answers
/// `rejected`, which is a business outcome, not an error.
fn handle_join(
    state: &mut GameState<'_>,
    book: &mut Book,
    provider: usize,
    cloudlet: Option<usize>,
) -> Response {
    if provider >= state.len() {
        return unknown_provider(provider);
    }
    let l = ProviderId(provider);
    if book.active[provider] {
        return Response::Error {
            msg: format!("provider {provider} already joined"),
        };
    }
    let market = state.market();
    let chosen = match cloudlet {
        Some(c) => {
            if c >= market.cloudlet_count() {
                return Response::Error {
                    msg: format!("unknown cloudlet {c}"),
                };
            }
            let i = CloudletId(c);
            market.fits(l, state.residual(i)).then_some(i)
        }
        None => market
            .cloudlets()
            .filter(|&i| market.fits(l, state.residual(i)))
            .min_by(|&a, &b| {
                let ca = market.caching_cost(l, a, state.congestion(a) + 1);
                let cb = market.caching_cost(l, b, state.congestion(b) + 1);
                ca.total_cmp(&cb)
            }),
    };
    match chosen {
        Some(i) => {
            state.apply_move(l, Placement::Cloudlet(i));
            book.active[provider] = true;
            book.seq += 1;
            book.equilibrium = false;
            mec_obs::counter_add("serve.join.admitted", 1);
            Response::Admitted {
                cloudlet: i.index(),
                cost: state.provider_cost(l),
            }
        }
        None => {
            mec_obs::counter_add("serve.join.rejected", 1);
            Response::Rejected {
                reason: match cloudlet {
                    Some(c) => format!("cloudlet {c} lacks capacity for provider {provider}"),
                    None => format!("no cloudlet has capacity for provider {provider}"),
                },
            }
        }
    }
}

fn handle_leave(state: &mut GameState<'_>, book: &mut Book, provider: usize) -> Response {
    if provider >= state.len() {
        return unknown_provider(provider);
    }
    if !book.active[provider] {
        return Response::Error {
            msg: format!("provider {provider} is not joined"),
        };
    }
    state.apply_move(ProviderId(provider), Placement::Remote);
    book.active[provider] = false;
    book.seq += 1;
    book.equilibrium = false;
    mec_obs::counter_add("serve.leave", 1);
    Response::Left
}

/// Post-rebuild half of `update`: if the new demand no longer fits the
/// provider's current cloudlet, evict to the remote cloud (still active —
/// maintenance quanta will re-place it when capacity frees up).
fn settle_update(state: &mut GameState<'_>, book: &mut Book, l: ProviderId) -> Response {
    let mut evicted = false;
    if let Placement::Cloudlet(i) = state.placement(l) {
        let (a, b) = state.residual(i);
        if a < -1e-9 || b < -1e-9 {
            state.apply_move(l, Placement::Remote);
            book.seq += 1;
            evicted = true;
        }
    }
    mec_obs::counter_add("serve.update", 1);
    if evicted {
        mec_obs::counter_add("serve.update.evicted", 1);
    }
    Response::Updated {
        cost: state.provider_cost(l),
        evicted,
    }
}

fn write_snapshot(state: &GameState<'_>, book: &Book, cfg: &MarketConfig) -> Response {
    let Some(path) = cfg.snapshot_path.as_deref() else {
        return Response::Error {
            msg: "daemon was started without --snapshot".to_string(),
        };
    };
    match save_snapshot(
        path,
        book.seq,
        state.market(),
        state.profile(),
        &book.active,
    ) {
        Ok(()) => Response::Snapshotted { seq: book.seq },
        Err(e) => Response::Error {
            msg: format!("snapshot failed: {e}"),
        },
    }
}

/// One bounded maintenance quantum: round-robin over the providers from
/// the saved cursor, applying best responses of *active* providers until
/// `max_moves` improvements land or a full quiet sweep proves the active
/// players are at equilibrium. Bounding the moves is what makes
/// maintenance preemptible — the serving loop re-checks the queue after
/// every quantum, so a request burst waits for one quantum at most.
fn run_quantum(state: &mut GameState<'_>, book: &mut Book, max_moves: usize) {
    let n = state.len();
    book.epochs += 1;
    mec_obs::counter_add("serve.epoch", 1);
    let mut applied = 0usize;
    let mut quiet_streak = 0usize;
    while applied < max_moves && quiet_streak < n {
        let l = ProviderId(book.cursor);
        book.cursor = (book.cursor + 1) % n;
        if !book.active[l.index()] {
            quiet_streak += 1;
            continue;
        }
        let current = state.provider_cost(l);
        match state.best_response(l) {
            Some((p, cost)) if p != state.placement(l) && cost < current - IMPROVEMENT_TOL => {
                state.apply_move(l, p);
                applied += 1;
                quiet_streak = 0;
            }
            _ => quiet_streak += 1,
        }
    }
    mec_obs::record("serve.quantum.moves", applied as u64);
    if applied > 0 {
        book.moves += applied as u64;
        book.seq += 1;
        mec_obs::counter_add("serve.epoch.moves", applied as u64);
    }
    // A full pass with no improving move is exactly the Nash condition
    // restricted to the active players (Lemma 3 terminates the dynamics).
    book.equilibrium = quiet_streak >= n;
}

fn publish(view: &SharedView, state: &GameState<'_>, book: &Book) {
    let market = state.market();
    let placements: Vec<Placement> = market.providers().map(|l| state.placement(l)).collect();
    let costs: Vec<f64> = market.providers().map(|l| state.provider_cost(l)).collect();
    let social_cost = state.subset_cost(market.providers().filter(|l| book.active[l.index()]));
    view.store(MarketView {
        seq: book.seq,
        placements,
        costs,
        active: book.active.clone(),
        social_cost,
        epochs: book.epochs,
        moves: book.moves,
        equilibrium: book.equilibrium,
    });
}

/// [`publish`], with the per-batch view-build latency recorded when the
/// probes are armed (`enabled()` is `const`, so the timer folds away in
/// no-op builds).
fn publish_timed(view: &SharedView, state: &GameState<'_>, book: &Book) {
    if mec_obs::enabled() {
        let t0 = std::time::Instant::now();
        publish(view, state, book);
        mec_obs::record("serve.publish.ns", t0.elapsed().as_nanos() as u64);
    } else {
        publish(view, state, book);
    }
}

/// Builds the wire stats record from a published view.
pub fn stats_of(view: &MarketView) -> StatsReport {
    StatsReport {
        seq: view.seq,
        providers: view.placements.len(),
        active: view.active_count(),
        cached: view.cached_count(),
        social_cost: view.social_cost,
        epochs: view.epochs,
        moves: view.moves,
        equilibrium: view.equilibrium,
    }
}

/// Answers a command with the draining error (used for everything queued
/// behind a shutdown, and by I/O threads whose queue closed under them).
pub(crate) fn refuse(cmd: Command) {
    let draining = || Response::Error {
        msg: "daemon is draining".to_string(),
    };
    match cmd {
        Command::Join { reply, .. }
        | Command::Leave { reply, .. }
        | Command::Update { reply, .. }
        | Command::Snapshot { reply }
        | Command::Restore { reply } => reply.send(draining()),
        Command::Shutdown { reply } => reply.send(Response::Draining),
    }
}

/// Drain: run maintenance quanta until the active players reach
/// equilibrium, write the final snapshot, and (with the `verify` feature)
/// re-certify the placement from first principles.
fn finish(
    mut state: GameState<'_>,
    mut book: Book,
    cfg: &MarketConfig,
    _extra: &[String],
) -> MarketOutcome {
    // Equilibrium is guaranteed to be reached: best-response dynamics on
    // the exact-potential game terminate (Lemma 3). The cap is a backstop
    // against a cost-model bug turning the drain into a hot loop.
    let mut guard = 0usize;
    while !book.equilibrium && guard < 100_000 {
        run_quantum(&mut state, &mut book, usize::MAX);
        guard += 1;
    }
    if let Some(path) = cfg.snapshot_path.as_deref() {
        // Failure here must not abort the drain; the error goes into the
        // outcome for the caller to report.
        if let Err(e) = save_snapshot(
            path,
            book.seq,
            state.market(),
            state.profile(),
            &book.active,
        ) {
            return outcome(state, book, vec![format!("final snapshot failed: {e}")]);
        }
    }
    let violations = certify(&state, &book);
    outcome(state, book, violations)
}

fn outcome(state: GameState<'_>, book: Book, violations: Vec<String>) -> MarketOutcome {
    MarketOutcome {
        seq: book.seq,
        profile: state.into_profile(),
        active: book.active,
        epochs: book.epochs,
        moves: book.moves,
        equilibrium: book.equilibrium,
        violations,
    }
}

#[cfg(feature = "verify")]
fn certify(state: &GameState<'_>, book: &Book) -> Vec<String> {
    let market = state.market();
    let mut out: Vec<String> = Vec::new();
    out.extend(
        mec_core::check_capacity(market, state.profile())
            .into_iter()
            .map(|v| v.to_string()),
    );
    out.extend(
        mec_core::check_state(state, 1e-6)
            .into_iter()
            .map(|v| v.to_string()),
    );
    out.extend(
        mec_core::check_nash(market, state.profile(), &book.active, IMPROVEMENT_TOL)
            .into_iter()
            .map(|v| v.to_string()),
    );
    out
}

#[cfg(not(feature = "verify"))]
fn certify(_state: &GameState<'_>, _book: &Book) -> Vec<String> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chan;
    use mec_core::model::{CloudletSpec, ProviderSpec};

    fn tiny_market(providers: usize) -> Market {
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(4.0, 20.0, 0.5, 0.5))
            .cloudlet(CloudletSpec::new(4.0, 20.0, 0.3, 0.2));
        for _ in 0..providers {
            b = b.provider(ProviderSpec::new(2.0, 8.0, 1.0, 30.0));
        }
        b.uniform_update_cost(0.2).build()
    }

    /// Drives `run_market` synchronously: every command is enqueued before
    /// the thread starts, followed by a shutdown.
    fn drive(market: Market, cmds: Vec<Command>) -> (Vec<Option<Response>>, MarketOutcome) {
        let n = market.provider_count();
        let (tx, rx) = chan::bounded(cmds.len() + 1);
        let view = SharedView::new(MarketView::empty(n));
        let mut receivers = Vec::new();
        for cmd in cmds {
            tx.send(cmd).map_err(|_| ()).unwrap();
        }
        let (sd_tx, sd_rx) = chan::oneshot();
        tx.send(Command::Shutdown {
            reply: sd_tx.into(),
        })
        .map_err(|_| ())
        .unwrap();
        drop(tx);
        let profile = Profile::all_remote(n);
        let outcome = run_market(
            market,
            profile,
            vec![false; n],
            0,
            &rx,
            &view,
            &MarketConfig::default(),
        );
        receivers.push(sd_rx.recv());
        (receivers, outcome)
    }

    fn join(provider: usize) -> (Command, chan::OneReceiver<Response>) {
        let (tx, rx) = chan::oneshot();
        (
            Command::Join {
                provider,
                cloudlet: None,
                reply: tx.into(),
            },
            rx,
        )
    }

    #[test]
    fn join_to_capacity_then_reject_then_leave_readmits() {
        // Each cloudlet fits exactly 2 of these providers (4.0 / 2.0).
        let market = tiny_market(5);
        let n = market.provider_count();
        let (tx, rx) = chan::bounded(16);
        let view = SharedView::new(MarketView::empty(n));

        let mut replies = Vec::new();
        for p in 0..5 {
            let (cmd, r) = join(p);
            tx.send(cmd).map_err(|_| ()).unwrap();
            replies.push(r);
        }
        let (leave_tx, leave_rx) = chan::oneshot();
        tx.send(Command::Leave {
            provider: 0,
            reply: leave_tx.into(),
        })
        .map_err(|_| ())
        .unwrap();
        let (rejoin, rejoin_rx) = join(4);
        tx.send(rejoin).map_err(|_| ()).unwrap();
        let (sd_tx, sd_rx) = chan::oneshot();
        tx.send(Command::Shutdown {
            reply: sd_tx.into(),
        })
        .map_err(|_| ())
        .unwrap();
        drop(tx);

        let outcome = run_market(
            market,
            Profile::all_remote(n),
            vec![false; n],
            0,
            &rx,
            &view,
            &MarketConfig::default(),
        );

        let admitted = replies
            .drain(..4)
            .map(|r| matches!(r.recv(), Some(Response::Admitted { .. })))
            .filter(|x| *x)
            .count();
        assert_eq!(admitted, 4, "four providers fit two 2-slot cloudlets");
        assert!(matches!(
            replies.pop().unwrap().recv(),
            Some(Response::Rejected { .. })
        ));
        assert_eq!(leave_rx.recv(), Some(Response::Left));
        assert!(matches!(rejoin_rx.recv(), Some(Response::Admitted { .. })));
        assert_eq!(sd_rx.recv(), Some(Response::Draining));
        assert_eq!(outcome.active.iter().filter(|a| **a).count(), 4);
        assert!(outcome.equilibrium);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    #[test]
    fn double_join_and_unknown_ids_error() {
        let market = tiny_market(2);
        let (j0, r0) = join(0);
        let (j0_again, r0_again) = join(0);
        let (j_bad, r_bad) = join(99);
        let (replies, _outcome) = drive(market, vec![j0, j0_again, j_bad]);
        assert!(matches!(r0.recv(), Some(Response::Admitted { .. })));
        assert!(matches!(r0_again.recv(), Some(Response::Error { .. })));
        assert!(matches!(r_bad.recv(), Some(Response::Error { .. })));
        assert_eq!(replies[0], Some(Response::Draining));
    }

    #[test]
    fn update_evicts_when_demand_outgrows_cloudlet() {
        let market = tiny_market(1);
        let (j, jr) = join(0);
        let (u_tx, u_rx) = chan::oneshot();
        let grow = Command::Update {
            provider: 0,
            compute: 100.0,
            bandwidth: 8.0,
            reply: u_tx.into(),
        };
        let (_, outcome) = drive(market, vec![j, grow]);
        assert!(matches!(jr.recv(), Some(Response::Admitted { .. })));
        match u_rx.recv() {
            Some(Response::Updated { evicted, .. }) => assert!(evicted),
            other => panic!("expected Updated, got {other:?}"),
        }
        // Still active, parked remotely; no cloudlet fits 100 compute.
        assert!(outcome.active[0]);
        assert_eq!(outcome.profile.placement(ProviderId(0)), Placement::Remote);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    #[test]
    fn snapshot_without_path_is_an_error() {
        let market = tiny_market(1);
        let (s_tx, s_rx) = chan::oneshot();
        let (_, _) = drive(market, vec![Command::Snapshot { reply: s_tx.into() }]);
        assert!(matches!(s_rx.recv(), Some(Response::Error { .. })));
    }

    #[test]
    fn drain_reaches_equilibrium_of_active_players() {
        // Asymmetric cloudlets: join picks greedily, the drain quanta then
        // settle any provider that could improve.
        let mut b = Market::builder()
            .cloudlet(CloudletSpec::new(10.0, 50.0, 1.5, 1.5))
            .cloudlet(CloudletSpec::new(10.0, 50.0, 0.1, 0.1));
        for _ in 0..6 {
            b = b.provider(ProviderSpec::new(1.0, 4.0, 0.5, 40.0));
        }
        let market = b.uniform_update_cost(0.1).build();
        let mut cmds = Vec::new();
        let mut joins = Vec::new();
        for p in 0..6 {
            let (c, r) = join(p);
            cmds.push(c);
            joins.push(r);
        }
        let (_, outcome) = drive(market, cmds);
        for r in joins {
            assert!(matches!(r.recv(), Some(Response::Admitted { .. })));
        }
        assert!(outcome.equilibrium);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    #[test]
    fn mid_batch_rebuild_carries_the_remainder() {
        // A batch of join → update (forces a rebuild) → join → leave must
        // settle every command against the right state: the second join
        // and the leave ride across the `'rebuild` in the carry queue.
        let market = tiny_market(3);
        let (j0, r0) = join(0);
        let (u_tx, u_rx) = chan::oneshot();
        let update = Command::Update {
            provider: 0,
            compute: 1.0,
            bandwidth: 4.0,
            reply: u_tx.into(),
        };
        let (j1, r1) = join(1);
        let (l_tx, l_rx) = chan::oneshot();
        let leave = Command::Leave {
            provider: 0,
            reply: l_tx.into(),
        };
        let (_, outcome) = drive(market, vec![j0, update, j1, leave]);
        assert!(matches!(r0.recv(), Some(Response::Admitted { .. })));
        assert!(matches!(
            u_rx.recv(),
            Some(Response::Updated { evicted: false, .. })
        ));
        assert!(matches!(r1.recv(), Some(Response::Admitted { .. })));
        assert_eq!(l_rx.recv(), Some(Response::Left));
        assert!(!outcome.active[0]);
        assert!(outcome.active[1]);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }
}
