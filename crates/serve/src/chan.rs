//! Hand-rolled bounded MPSC channel and oneshot reply slot.
//!
//! The workspace vendors no channel crate, so the daemon's single-writer
//! command queue is built from `Mutex` + `Condvar`: many connection
//! threads [`Sender::send`] commands, one market thread [`Receiver::recv`]s
//! them. The buffer is bounded — a flood of writers blocks at `send`
//! (backpressure) instead of growing the queue without limit. Replies
//! travel back on a [`oneshot`] slot per command.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Schedule-perturbation point: a pseudo-random yield under
/// `--features loom-model` (see the vendored loom stand-in), nothing in
/// production builds. Placed at the hazard windows of the channel
/// protocol — around lock acquisition and between a state change and
/// its condvar notify — so the interleaving models below push competing
/// senders and the draining receiver through many orderings.
#[inline]
fn fuzz() {
    #[cfg(feature = "loom-model")]
    loom::fuzz_yield();
}

struct ChanState<T> {
    buf: VecDeque<T>,
    cap: usize,
    /// Live [`Sender`] clones; 0 with an empty buffer means disconnected.
    senders: usize,
    /// Set when the receiver is dropped: sends fail immediately.
    closed: bool,
}

struct Chan<T> {
    state: Mutex<ChanState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half; clone freely across connection threads.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; exactly one exists per channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// The message could not be delivered (receiver gone); gives the value back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// A non-blocking send could not complete; gives the value back.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The buffer is at capacity (backpressure; retry after the receiver
    /// drains).
    Full(T),
    /// The receiver is gone; the channel will never accept again.
    Closed(T),
}

/// Why a timed receive returned without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeout {
    /// No message arrived within the timeout.
    Timeout,
    /// Every sender is gone and the buffer is drained.
    Disconnected,
}

/// Creates a bounded MPSC channel holding at most `cap` queued messages.
///
/// # Panics
///
/// Panics if `cap == 0`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "channel capacity must be positive");
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState {
            buf: VecDeque::with_capacity(cap),
            cap,
            senders: 1,
            closed: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `value`.
    ///
    /// # Errors
    ///
    /// Returns the value back if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        fuzz();
        let mut st = lock_ok(&self.chan.state);
        loop {
            if st.closed {
                return Err(SendError(value));
            }
            if st.buf.len() < st.cap {
                st.buf.push_back(value);
                fuzz();
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            st = wait_ok(&self.chan.not_full, st);
        }
    }

    /// Enqueues `value` if there is room right now, without blocking —
    /// the event loop must never sleep on the command queue, so a full
    /// buffer is reported back for the caller to hold in its backlog.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] at capacity, [`TrySendError::Closed`] if
    /// the receiver is gone; both return the value.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        fuzz();
        let mut st = lock_ok(&self.chan.state);
        if st.closed {
            return Err(TrySendError::Closed(value));
        }
        if st.buf.len() >= st.cap {
            return Err(TrySendError::Full(value));
        }
        st.buf.push_back(value);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock_ok(&self.chan.state).senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock_ok(&self.chan.state);
        st.senders -= 1;
        if st.senders == 0 {
            // Wake a receiver blocked on an empty buffer so it observes
            // the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvTimeout> {
        let mut st = lock_ok(&self.chan.state);
        loop {
            if let Some(v) = st.buf.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeout::Disconnected);
            }
            st = wait_ok(&self.chan.not_empty, st);
        }
    }

    /// Blocks up to `timeout` for a message. [`RecvTimeout::Timeout`] is
    /// the market thread's cue to spend the idle gap on an
    /// equilibrium-maintenance epoch.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeout> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = lock_ok(&self.chan.state);
        loop {
            if let Some(v) = st.buf.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeout::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeout::Timeout);
            }
            let (guard, _timed_out) = self
                .chan
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Receives a *batch*: blocks until at least one message is available
    /// (or `timeout` / disconnect), then drains everything queued — up to
    /// `max` messages total — into `buf` without further blocking. This
    /// is the market thread's drain primitive: one lock acquisition and
    /// one wakeup amortized over the whole batch. Returns the number of
    /// messages appended and the queue depth *before* the drain (for the
    /// `serve.queue.depth` gauge).
    ///
    /// # Errors
    ///
    /// [`RecvTimeout::Timeout`] if `timeout` elapsed with nothing queued
    /// (never with `timeout: None`, which waits indefinitely);
    /// [`RecvTimeout::Disconnected`] when every sender is gone and the
    /// buffer is empty.
    pub fn recv_batch(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        timeout: Option<Duration>,
    ) -> Result<(usize, usize), RecvTimeout> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        fuzz();
        let mut st = lock_ok(&self.chan.state);
        loop {
            if !st.buf.is_empty() {
                let depth = st.buf.len();
                let take = depth.min(max);
                buf.extend(st.buf.drain(..take));
                fuzz();
                // Potentially many senders were parked on a full buffer.
                self.chan.not_full.notify_all();
                return Ok((take, depth));
            }
            if st.senders == 0 {
                return Err(RecvTimeout::Disconnected);
            }
            match deadline {
                None => st = wait_ok(&self.chan.not_empty, st),
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d {
                        return Err(RecvTimeout::Timeout);
                    }
                    let (guard, _timed_out) = self
                        .chan
                        .not_empty
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            }
        }
    }

    /// Drains whatever is queued right now without blocking.
    pub fn try_drain(&self) -> Vec<T> {
        let mut st = lock_ok(&self.chan.state);
        let out: Vec<T> = st.buf.drain(..).collect();
        if !out.is_empty() {
            self.chan.not_full.notify_all();
        }
        out
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock_ok(&self.chan.state);
        st.closed = true;
        st.buf.clear();
        // Unblock writers stuck on a full buffer so they observe `closed`.
        self.chan.not_full.notify_all();
    }
}

/// A single-use reply slot: the market thread sends exactly one response,
/// the connection thread blocks on it.
pub fn oneshot<T>() -> (OneSender<T>, OneReceiver<T>) {
    let slot = Arc::new(OneSlot {
        state: Mutex::new(OneState {
            value: None,
            sender_gone: false,
        }),
        filled: Condvar::new(),
    });
    (OneSender { slot: slot.clone() }, OneReceiver { slot })
}

struct OneState<T> {
    value: Option<T>,
    sender_gone: bool,
}

struct OneSlot<T> {
    state: Mutex<OneState<T>>,
    filled: Condvar,
}

/// Sending half of [`oneshot`].
pub struct OneSender<T> {
    slot: Arc<OneSlot<T>>,
}

/// Receiving half of [`oneshot`].
pub struct OneReceiver<T> {
    slot: Arc<OneSlot<T>>,
}

impl<T> OneSender<T> {
    /// Fills the slot (first write wins) and wakes the receiver.
    pub fn send(self, value: T) {
        let mut st = lock_ok(&self.slot.state);
        if st.value.is_none() {
            st.value = Some(value);
        }
        self.slot.filled.notify_all();
        // Drop runs next and marks the sender gone.
    }
}

impl<T> Drop for OneSender<T> {
    fn drop(&mut self) {
        let mut st = lock_ok(&self.slot.state);
        st.sender_gone = true;
        self.slot.filled.notify_all();
    }
}

impl<T> OneReceiver<T> {
    /// Blocks for the reply; `None` if the sender was dropped without
    /// replying (market thread died or rejected the command at drain).
    pub fn recv(self) -> Option<T> {
        let mut st = lock_ok(&self.slot.state);
        loop {
            if let Some(v) = st.value.take() {
                return Some(v);
            }
            if st.sender_gone {
                return None;
            }
            st = wait_ok(&self.slot.filled, st);
        }
    }
}

/// Locks a mutex, proceeding through poisoning: the daemon's shared state
/// is a queue of owned values, all of which remain structurally valid even
/// if a holder panicked mid-critical-section.
pub(crate) fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_ok<'a, T>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, T>,
) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeout::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn disconnect_when_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(1);
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvTimeout::Disconnected));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn bounded_blocks_and_resumes() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2)); // lint: allow(thread-spawn)
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1)); // frees the slot, unblocks the sender
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap().unwrap();
    }

    #[test]
    fn oneshot_round_trip() {
        let (tx, rx) = oneshot();
        tx.send("hi");
        assert_eq!(rx.recv(), Some("hi"));
    }

    #[test]
    fn oneshot_sender_dropped() {
        let (tx, rx) = oneshot::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_send_reports_full_and_closed() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Closed(4)));
    }

    #[test]
    fn recv_batch_drains_everything_queued() {
        let (tx, rx) = bounded(8);
        for k in 0..5 {
            tx.send(k).unwrap();
        }
        let mut buf = Vec::new();
        let (n, depth) = rx
            .recv_batch(&mut buf, usize::MAX, Some(Duration::from_secs(1)))
            .unwrap();
        assert_eq!((n, depth), (5, 5));
        assert_eq!(buf, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_batch_respects_max_and_reports_depth() {
        let (tx, rx) = bounded(8);
        for k in 0..6 {
            tx.send(k).unwrap();
        }
        let mut buf = Vec::new();
        let (n, depth) = rx.recv_batch(&mut buf, 4, None).unwrap();
        assert_eq!((n, depth), (4, 6));
        let (n, depth) = rx.recv_batch(&mut buf, 4, None).unwrap();
        assert_eq!((n, depth), (2, 2));
        assert_eq!(buf, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn recv_batch_times_out_and_disconnects() {
        let (tx, rx) = bounded::<u32>(1);
        let mut buf = Vec::new();
        assert_eq!(
            rx.recv_batch(&mut buf, 8, Some(Duration::from_millis(5))),
            Err(RecvTimeout::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_batch(&mut buf, 8, Some(Duration::from_millis(5))),
            Err(RecvTimeout::Disconnected)
        );
    }

    #[test]
    fn try_drain_empties_queue() {
        let (tx, rx) = bounded(8);
        for k in 0..5 {
            tx.send(k).unwrap();
        }
        assert_eq!(rx.try_drain(), vec![0, 1, 2, 3, 4]);
        assert!(rx.try_drain().is_empty());
    }
}

/// Interleaving models of the channel protocol, run under the loom
/// stand-in's schedule perturbation (`--features loom-model`; the TSan
/// CI cell watches the same tests for data races). The `fuzz()` points
/// in `send`/`try_send`/`recv_batch` give each iteration a different
/// ordering of competing senders against the draining receiver.
#[cfg(all(test, feature = "loom-model"))]
mod loom_model_tests {
    use super::*;
    use std::time::Duration;

    /// Many senders racing a batching receiver over a tiny buffer:
    /// every message arrives exactly once, each sender's sequence stays
    /// in order, and no batch exceeds its `max`.
    #[test]
    fn recv_batch_loses_and_reorders_nothing() {
        loom::model(|| {
            const SENDERS: usize = 3;
            const PER_SENDER: usize = 16;
            // cap 2 forces senders to park on `not_full` and race the
            // receiver's notify_all on every drain.
            let (tx, rx) = bounded::<(usize, usize)>(2);
            let handles: Vec<_> = (0..SENDERS)
                .map(|s| {
                    let tx = tx.clone();
                    // Model threads stand in for connection threads.
                    // lint: allow(thread-spawn)
                    loom::thread::spawn(move || {
                        for seq in 0..PER_SENDER {
                            loom::fuzz_yield();
                            tx.send((s, seq)).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);

            let mut got: Vec<Vec<usize>> = vec![Vec::new(); SENDERS];
            let mut batch = Vec::new();
            let mut total = 0;
            while total < SENDERS * PER_SENDER {
                let (take, _depth) = rx
                    .recv_batch(&mut batch, 4, Some(Duration::from_secs(5)))
                    .expect("all messages must arrive before timeout/disconnect");
                assert!(take <= 4, "batch exceeded max: {take}");
                total += take;
                for (s, seq) in batch.drain(..) {
                    got[s].push(seq);
                }
            }
            for (s, seqs) in got.iter().enumerate() {
                assert_eq!(
                    *seqs,
                    (0..PER_SENDER).collect::<Vec<_>>(),
                    "sender {s} lost or reordered messages"
                );
            }
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    /// `try_send` under the same contention: a Full result never loses
    /// the value (it comes back for the backlog) and everything that
    /// reported Ok is delivered exactly once.
    #[test]
    fn try_send_full_returns_value_without_loss() {
        loom::model(|| {
            const SENDERS: usize = 2;
            const PER_SENDER: usize = 12;
            let (tx, rx) = bounded::<(usize, usize)>(2);
            let handles: Vec<_> = (0..SENDERS)
                .map(|s| {
                    let tx = tx.clone();
                    // lint: allow(thread-spawn)
                    loom::thread::spawn(move || {
                        let mut sent = 0;
                        for seq in 0..PER_SENDER {
                            let mut v = (s, seq);
                            loop {
                                match tx.try_send(v) {
                                    Ok(()) => {
                                        sent += 1;
                                        break;
                                    }
                                    Err(TrySendError::Full(back)) => {
                                        // Backlog retry: the value came
                                        // back intact.
                                        assert_eq!(back, (s, seq));
                                        v = back;
                                        std::thread::yield_now();
                                    }
                                    Err(TrySendError::Closed(_)) => {
                                        unreachable!("receiver lives");
                                    }
                                }
                            }
                        }
                        sent
                    })
                })
                .collect();
            drop(tx);

            let mut batch = Vec::new();
            let mut total = 0;
            loop {
                match rx.recv_batch(&mut batch, usize::MAX, Some(Duration::from_secs(5))) {
                    Ok((take, _)) => total += take,
                    Err(RecvTimeout::Disconnected) => break,
                    Err(RecvTimeout::Timeout) => panic!("senders wedged"),
                }
                batch.clear();
            }
            let sent: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, sent);
            assert_eq!(total, SENDERS * PER_SENDER);
        });
    }
}
