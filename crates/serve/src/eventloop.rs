//! The poll-based I/O event loop: nonblocking sockets, per-connection
//! buffers, and ordered reply delivery.
//!
//! PR 5's server spent one OS thread per connection; at 100+ sessions the
//! scheduler — not the market — set the latency floor, and a single slow
//! client could park a thread indefinitely. This module replaces that
//! fleet with a small, fixed set of I/O threads, each running a
//! level-triggered readiness loop over the vendored [`polling`] shim
//! (`poll(2)`; the one facility `std` lacks):
//!
//! ```text
//! acceptor ──inbox+wake──► io thread(s) ──Command──► market thread
//!                           │    ▲                        │
//!          reads from view ─┘    └── Completions ◄── batched replies
//! ```
//!
//! Per connection the loop keeps a [`FrameDecoder`] (reassembling frames
//! from whatever bytes the kernel delivers), an output buffer (frames for
//! many responses coalesce into one `write` syscall), and an ordered
//! `pending` queue that guarantees responses leave in request order even
//! when reads (answered locally from the published view) and writes
//! (round-tripping through the market thread) interleave on a pipelined
//! connection. A read that arrives behind an in-flight write is
//! *deferred* and evaluated only once the write's reply has been
//! serialized — by which point the market thread has published a view
//! covering the write, so read-your-writes holds even within a pipeline.
//!
//! Wakeups (new connections from the acceptor, completed commands from
//! the market thread) arrive through a [`Waker`] — a self-connected UDP
//! socket whose fd sits in the poll set, `std`-only and cheap: the wake
//! side is one `send`, deduplicated by an atomic flag so a batch of
//! completions costs one syscall, not one per reply.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// Under `--features loom-model` the wake-dedup flag runs on the loom
// stand-in's AtomicBool, so the interleaving model below can perturb the
// push/swap ordering against store/drain. `stop` and the live-connection
// counter stay on std atomics — they cross the crate API.
#[cfg(feature = "loom-model")]
use loom::sync::atomic::AtomicBool as WakeFlag;
#[cfg(not(feature = "loom-model"))]
use std::sync::atomic::AtomicBool as WakeFlag;

use polling::{poll, PollFd, POLLIN, POLLOUT};

use crate::chan::{Sender, TrySendError};
use crate::demand::DemandTracker;
use crate::market::{self, composite_stats, Command};
use crate::proto::{self, FrameDecoder, Request, Response};
use crate::shard::{CoordKind, CoordOp, Coordinator, DrainOp, Router, ShardGauges};
use crate::view::SharedView;

/// Stop reading from a connection whose unsent output exceeds this
/// (bytes); resumes when the client drains. Protects the daemon from a
/// peer that writes requests but never reads responses.
const OUT_HIGH_WATER: usize = 1 << 20;

/// Hold at most this many commands in the local backlog when the market
/// queue is full before pausing reads entirely.
const BACKLOG_PAUSE: usize = 1024;

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// A `std`-only poll-set wakeup: a UDP socket connected to itself. The
/// waking side `send`s a byte; the polling side keeps the fd in its poll
/// set with `POLLIN` and drains it on wake.
#[derive(Debug)]
pub struct Waker {
    sock: UdpSocket,
}

impl Waker {
    /// Creates the socket pair-of-one on an ephemeral loopback port.
    ///
    /// # Errors
    ///
    /// Propagates bind/connect/setsockopt failures.
    pub fn new() -> std::io::Result<Waker> {
        let sock = UdpSocket::bind(("127.0.0.1", 0))?;
        sock.connect(sock.local_addr()?)?;
        sock.set_nonblocking(true)?;
        Ok(Waker { sock })
    }

    /// Makes the owning poll loop's next `poll` return immediately.
    pub fn wake(&self) {
        // A full socket buffer means wakes are already pending — the
        // loop will run regardless, so the error is ignorable.
        let _ = self.sock.send(&[1]);
    }

    /// Consumes all pending wake bytes (polling side).
    fn drain(&self) {
        let mut buf = [0u8; 64];
        // Nonblocking UDP socket: recv returns WouldBlock when empty,
        // never parks the thread.
        // lint: allow(io-blocking)
        while self.sock.recv(&mut buf).is_ok() {}
    }

    fn fd(&self) -> std::os::fd::RawFd {
        self.sock.as_raw_fd()
    }
}

/// The reply mailbox of one I/O thread: the market thread pushes
/// completed `(conn, req, response)` triples here and wakes the loop.
/// One wake is amortized over a whole batch of completions by the
/// `wake_armed` flag.
#[derive(Debug)]
pub struct Completions {
    queue: Mutex<Vec<(u64, u64, Response)>>,
    wake_armed: WakeFlag,
    waker: Waker,
}

impl Completions {
    /// Creates an empty mailbox with its own waker.
    ///
    /// # Errors
    ///
    /// Propagates waker-socket creation failures.
    pub fn new() -> std::io::Result<Completions> {
        Ok(Completions {
            queue: Mutex::new(Vec::new()),
            wake_armed: WakeFlag::new(false),
            waker: Waker::new()?,
        })
    }

    /// Delivers one completed response (market-thread side).
    pub fn push(&self, conn: u64, req: u64, resp: Response) {
        {
            // Mailbox lock held only for one Vec push; the I/O-thread
            // side holds it only for a swap. Never blocks meaningfully.
            // lint: allow(io-blocking)
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            // One entry per in-flight market command, and in-flight
            // commands are bounded by the market channel capacity plus
            // the BACKLOG_PAUSE read-pause threshold.
            // lint: allow(growth)
            q.push((conn, req, resp));
        }
        if !self.wake_armed.swap(true, Ordering::AcqRel) {
            self.waker.wake();
        }
    }

    /// Wakes the owning loop without delivering a completion — used for
    /// inbox handoffs from the acceptor and stop-flag changes. Skips the
    /// dedup flag: these events are rare and must never be coalesced away.
    pub fn wake(&self) {
        self.waker.wake();
    }

    /// Takes everything delivered so far (I/O-thread side). Clears the
    /// wake flag *before* draining so a concurrent push re-arms the wake.
    fn drain_into(&self, out: &mut Vec<(u64, u64, Response)>) {
        self.wake_armed.store(false, Ordering::Release);
        // Mailbox lock held only for the append; the market-thread side
        // holds it only for one push. Never blocks meaningfully.
        // lint: allow(io-blocking)
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        out.append(&mut q);
    }
}

/// Everything one I/O thread shares with the acceptor, the market
/// thread, and the boot code.
pub(crate) struct IoShared {
    /// Reply mailbox (market thread pushes, loop drains).
    pub completions: Arc<Completions>,
    /// Freshly accepted connections (acceptor pushes, loop adopts).
    pub inbox: Mutex<Vec<TcpStream>>,
    /// Daemon-wide stop flag.
    pub stop: Arc<AtomicBool>,
    /// Live-connection count (shared with the acceptor's admission cap).
    pub live: Arc<AtomicUsize>,
    /// Command queues into the shard writer threads (one per shard; a
    /// single-shard daemon has exactly one entry).
    pub txs: Vec<Sender<Command>>,
    /// Published market views, one per shard. Reads are answered from the
    /// owning shard's view.
    pub views: Vec<Arc<SharedView>>,
    /// Provider→shard ownership map; routes writes and queries.
    pub router: Arc<Router>,
    /// Per-shard queue-depth/write gauges folded into composite stats.
    pub gauges: Arc<ShardGauges>,
    /// Shared epoch allocator for coordinated snapshot/restore fan-outs.
    pub coord: Arc<Coordinator>,
    /// Per-provider query counters: every answered query is noted here,
    /// and the shard writers fold the counts into demand EWMAs at each
    /// maintenance quantum (demand-driven re-caching).
    pub demand: Arc<DemandTracker>,
    /// The daemon's own address, for poking the acceptor at shutdown.
    pub addr: SocketAddr,
}

impl IoShared {
    /// Number of market shards behind this I/O thread.
    fn shards(&self) -> usize {
        self.txs.len()
    }

    /// The shard whose writer thread must settle a write for `provider`
    /// (clamped: the router may cover more providers than live shards
    /// only transiently, never the other way around).
    fn shard_of(&self, provider: usize) -> usize {
        self.router.owner(provider).min(self.txs.len() - 1)
    }
}

/// One response slot in a connection's ordered pipeline.
enum Slot {
    /// A write in flight to the market thread, keyed by request id.
    Waiting(u64),
    /// A completed response not yet serialized (out of order behind a
    /// `Waiting` slot).
    Done(Response),
    /// A read that arrived behind an in-flight write; evaluated against
    /// the view only when it reaches the queue head, preserving
    /// read-your-writes under pipelining.
    DeferredRead(Request),
}

/// Per-connection state.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Serialized frames awaiting the socket; `out_pos` is the sent
    /// prefix.
    out: Vec<u8>,
    out_pos: usize,
    /// Response pipeline, strictly in request order.
    pending: VecDeque<Slot>,
    /// Next request id for `Waiting` slots.
    next_req: u64,
    /// Close once `out` drains (set by a `Draining` response).
    close_after_flush: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            next_req: 0,
            close_after_flush: false,
            dead: false,
        }
    }

    fn out_backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// Answers a read-only request from the published views (never touches
/// a market thread). Shared by the fast path and deferred evaluation.
/// Queries read the *owning* shard's view — the shard whose writer
/// settled the provider's last write, so read-your-writes survives
/// sharding; stats fold every shard's view into one composite record.
fn answer_read(req: &Request, shared: &IoShared) -> Response {
    match req {
        Request::Query { provider } => {
            let view = shared.views[shared.shard_of(*provider)].load();
            match (view.placements.get(*provider), view.costs.get(*provider)) {
                (Some(p), Some(&cost)) => {
                    // The demand signal: queries are the requests of the
                    // paper's users, so each one is noted for the owning
                    // writer's next EWMA fold. Hit = answered by a cached
                    // replica; miss = served from the remote cloud.
                    shared.demand.note(*provider);
                    let cached =
                        view.active[*provider] && matches!(p, mec_core::Placement::Cloudlet(_));
                    if cached {
                        mec_obs::counter_add("serve.cache.hit", 1);
                    } else {
                        mec_obs::counter_add("serve.cache.miss", 1);
                    }
                    Response::Placement {
                        at: match p {
                            mec_core::Placement::Remote => None,
                            mec_core::Placement::Cloudlet(c) => Some(c.index()),
                        },
                        cost,
                        active: view.active[*provider],
                        seq: view.seq,
                    }
                }
                _ => Response::Error {
                    msg: format!("unknown provider {provider}"),
                },
            }
        }
        Request::Stats => Response::Stats(composite_stats(&shared.views, &shared.gauges)),
        _ => Response::Error {
            msg: "not a read".to_string(),
        },
    }
}

fn is_read(req: &Request) -> bool {
    matches!(req, Request::Query { .. } | Request::Stats)
}

/// Runs one I/O thread to completion (until the stop flag flips).
pub(crate) fn run_io(shared: &IoShared) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 0;
    let mut completions: Vec<(u64, u64, Response)> = Vec::new();
    let mut backlog: VecDeque<(usize, Command)> = VecDeque::new();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_conn: Vec<u64> = Vec::new();

    loop {
        // (Re)build the poll set: waker first, then every live conn.
        fds.clear();
        fd_conn.clear();
        fds.push(PollFd::new(shared.completions.waker.fd(), POLLIN));
        let paused = backlog.len() >= BACKLOG_PAUSE;
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if !paused && conn.out_backlog() < OUT_HIGH_WATER && !conn.close_after_flush {
                events |= POLLIN;
            }
            if conn.out_backlog() > 0 {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            fd_conn.push(id);
        }
        // Wakes cover every event source; the timeout is a safety net
        // (and the backlog-retry tick when the market queue was full).
        let timeout = if backlog.is_empty() {
            Duration::from_millis(1000)
        } else {
            Duration::from_millis(5)
        };
        let _ = poll(&mut fds, Some(timeout));
        if fds[0].readable() {
            shared.completions.waker.drain();
        }

        // Completed commands from the market thread: slot them into their
        // connection's pipeline.
        shared.completions.drain_into(&mut completions);
        for (conn_id, req_id, resp) in completions.drain(..) {
            let Some(conn) = conns.get_mut(&conn_id) else {
                continue; // connection died while the command was in flight
            };
            if matches!(resp, Response::Draining) {
                conn.close_after_flush = true;
                // Stop accepting immediately (the market thread repeats
                // this when it finishes draining, but doing it here closes
                // the window where a new client connects mid-drain).
                shared.stop.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(shared.addr);
            }
            for slot in conn.pending.iter_mut() {
                if let Slot::Waiting(id) = slot {
                    if *id == req_id {
                        *slot = Slot::Done(resp);
                        break;
                    }
                }
            }
        }

        // Adopt freshly accepted connections.
        {
            // Inbox lock held only to drain the handoff Vec; the
            // acceptor holds it only for one push per accept.
            // lint: allow(io-blocking)
            let mut inbox = shared.inbox.lock().unwrap_or_else(|e| e.into_inner());
            for stream in inbox.drain(..) {
                if stream.set_nonblocking(true).is_err() {
                    shared.live.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                conns.insert(next_conn, Conn::new(stream));
                next_conn += 1;
            }
        }

        // Retry the backlog before reading more requests, so FIFO order
        // into the market thread is preserved.
        flush_backlog(&mut backlog, shared);

        // Service readiness: read + decode + dispatch, then advance each
        // connection's pipeline and flush its output buffer.
        for (k, fd) in fds.iter().enumerate().skip(1) {
            let id = fd_conn[k - 1];
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if fd.readable() {
                read_ready(id, conn, shared, &mut backlog);
            }
        }
        flush_backlog(&mut backlog, shared);
        for conn in conns.values_mut() {
            if !conn.dead {
                advance(conn, shared);
                flush_out(conn);
            }
        }
        conns.retain(|_, c| {
            if c.dead {
                shared.live.fetch_sub(1, Ordering::SeqCst);
            }
            !c.dead
        });

        if shared.stop.load(Ordering::SeqCst) {
            final_flush(&mut conns, shared);
            return;
        }
    }
}

/// Pushes backlog commands into their shard queues until one fills. The
/// backlog is drained strictly FIFO — stopping at the first full queue
/// rather than skipping ahead to another shard's entries — so commands
/// from one connection reach each shard in request order. A `Closed`
/// queue means that shard's writer is gone — the command is refused with
/// the draining error, through the normal completion path so reply order
/// per connection is preserved.
fn flush_backlog(backlog: &mut VecDeque<(usize, Command)>, shared: &IoShared) {
    while let Some((shard, cmd)) = backlog.pop_front() {
        match shared.txs[shard].try_send(cmd) {
            Ok(()) => {}
            Err(TrySendError::Full(cmd)) => {
                backlog.push_front((shard, cmd)); // lint: allow(growth) — re-queues the element just popped; no net growth
                return;
            }
            Err(TrySendError::Closed(cmd)) => {
                market::refuse(cmd);
            }
        }
    }
}

/// Drains the socket, reassembles frames, and dispatches each request.
fn read_ready(
    conn_id: u64,
    conn: &mut Conn,
    shared: &IoShared,
    backlog: &mut VecDeque<(usize, Command)>,
) {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // EOF. Mid-frame it is a protocol cut; either way the
                // peer is gone, so the connection is done.
                conn.dead = true;
                return;
            }
            Ok(n) => {
                // Reassembly buffer is bounded by proto::MAX_FRAME: the
                // decoder errors (and we kill the connection) as soon as
                // a length line announces an oversized frame, so the
                // buffer never holds more than one max frame plus one
                // read chunk.
                // lint: allow(growth)
                conn.decoder.extend(&chunk[..n]);
                if n < chunk.len() {
                    break; // kernel buffer drained
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    loop {
        match conn.decoder.next_frame() {
            Ok(Some(payload)) => dispatch(conn_id, conn, &payload, shared, backlog),
            Ok(None) => break,
            Err(_) => {
                // Framing lost: nothing sensible can be parsed out of the
                // stream anymore. Same policy as the threaded server:
                // drop the connection.
                conn.dead = true;
                return;
            }
        }
    }
}

/// Routes one decoded request: reads answer from the view (immediately
/// or deferred behind in-flight writes), writes enqueue a market command
/// whose reply is routed back through the completions mailbox.
fn dispatch(
    conn_id: u64,
    conn: &mut Conn,
    payload: &str,
    shared: &IoShared,
    backlog: &mut VecDeque<(usize, Command)>,
) {
    let req = match proto::parse_request(payload) {
        Ok(req) => req,
        Err(e) => {
            // Malformed JSON in a well-framed payload: answer the error
            // in order and keep the connection alive. The pending
            // pipeline is bounded by the read-pause backpressure: reads
            // (its only producer) stop while the backlog or out-buffer
            // is over its high-water mark.
            conn.pending
                .push_back(Slot::Done(Response::Error { msg: e.to_string() })); // lint: allow(growth)
            return;
        }
    };
    if is_read(&req) {
        if conn.pending.is_empty() {
            // Fast path: nothing in flight, answer straight from the view
            // into the output buffer.
            let resp = answer_read(&req, shared);
            proto::push_frame(&mut conn.out, &proto::encode_response(&resp));
        } else {
            // Bounded by the read-pause backpressure (see above).
            // lint: allow(growth)
            conn.pending.push_back(Slot::DeferredRead(req));
        }
        return;
    }
    // Writes are routed to the shard that owns the provider (a stale
    // route is chased by the receiving shard, so freshness is advisory);
    // admin requests without a provider run on shard 0 or fan out.
    let shard = match &req {
        Request::Join { provider, .. }
        | Request::Leave { provider }
        | Request::UpdateDemand { provider, .. } => shared.shard_of(*provider),
        _ => 0,
    };
    let req_id = conn.next_req;
    conn.next_req += 1;
    let reply = market::Reply::Conn {
        mailbox: shared.completions.clone(),
        conn: conn_id,
        req: req_id,
    };
    if shared.shards() > 1
        && matches!(
            req,
            Request::Snapshot | Request::Restore | Request::Shutdown
        )
    {
        fan_out_admin(conn, req_id, &req, reply, shared, backlog);
        return;
    }
    let cmd = match market::command_for(req, reply) {
        Ok(cmd) => cmd,
        Err(resp) => {
            // Bounded by the read-pause backpressure (see above).
            // lint: allow(growth)
            conn.pending.push_back(Slot::Done(resp));
            return;
        }
    };
    // Both bounded by the read-pause backpressure: reads stop while
    // backlog.len() >= BACKLOG_PAUSE or the out-buffer is over its
    // high-water mark, so neither queue can outgrow one poll round's
    // overshoot past those thresholds.
    // lint: allow(growth)
    conn.pending.push_back(Slot::Waiting(req_id));
    backlog.push_back((shard, cmd)); // lint: allow(growth) — same BACKLOG_PAUSE bound as above
}

/// Fans a multi-shard admin request out to every shard queue: `snapshot`
/// and `restore` become a coordinated two-phase op (prepare now; the
/// last prepare-acker enqueues the apply fan-out), `shutdown` a drain
/// barrier. The single client reply travels inside the shared op and the
/// last shard to complete answers it, so the connection sees exactly one
/// response in request order.
fn fan_out_admin(
    conn: &mut Conn,
    req_id: u64,
    req: &Request,
    reply: market::Reply,
    shared: &IoShared,
    backlog: &mut VecDeque<(usize, Command)>,
) {
    // Bounded by the read-pause backpressure, like every slot push.
    // lint: allow(growth)
    conn.pending.push_back(Slot::Waiting(req_id));
    if matches!(req, Request::Shutdown) {
        let op = Arc::new(DrainOp::new(shared.shards(), reply));
        for k in 0..shared.shards() {
            backlog.push_back((k, Command::DrainAll { op: op.clone() })); // lint: allow(growth) — BACKLOG_PAUSE bound
        }
        return;
    }
    let kind = if matches!(req, Request::Snapshot) {
        CoordKind::Snapshot
    } else {
        CoordKind::Restore
    };
    let op = Arc::new(CoordOp::new(
        kind,
        shared.coord.next_epoch(),
        shared.shards(),
        reply,
    ));
    for k in 0..shared.shards() {
        backlog.push_back((k, Command::Prepare { op: op.clone() })); // lint: allow(growth) — BACKLOG_PAUSE bound
    }
}

/// Serializes the completed prefix of the pipeline into the output
/// buffer, evaluating deferred reads as they reach the head.
fn advance(conn: &mut Conn, shared: &IoShared) {
    while let Some(front) = conn.pending.front() {
        match front {
            Slot::Waiting(_) => break,
            Slot::Done(_) => {
                let Some(Slot::Done(resp)) = conn.pending.pop_front() else {
                    unreachable!("front() said Done"); // lint: allow(panics)
                };
                proto::push_frame(&mut conn.out, &proto::encode_response(&resp));
            }
            Slot::DeferredRead(_) => {
                let Some(Slot::DeferredRead(req)) = conn.pending.pop_front() else {
                    unreachable!("front() said DeferredRead"); // lint: allow(panics)
                };
                // Every earlier write has been acknowledged, and each
                // shard publishes before acknowledging — the owning
                // shard's view read here covers those writes.
                let resp = answer_read(&req, shared);
                proto::push_frame(&mut conn.out, &proto::encode_response(&resp));
            }
        }
    }
}

/// Writes as much of the output buffer as the socket accepts.
fn flush_out(conn: &mut Conn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    // Close only once every in-order response (the Draining frame
    // included) has been serialized *and* written.
    if conn.close_after_flush && conn.pending.is_empty() {
        conn.dead = true;
    }
}

/// Best-effort flush of every remaining output buffer at shutdown, under
/// a short deadline, so final responses (`draining`, late errors) reach
/// their clients before the sockets close.
fn final_flush(conns: &mut HashMap<u64, Conn>, shared: &IoShared) {
    // Late completions (e.g. the drain refusals) may still be arriving.
    let mut completions = Vec::new();
    shared.completions.drain_into(&mut completions);
    for (conn_id, req_id, resp) in completions {
        if let Some(conn) = conns.get_mut(&conn_id) {
            for slot in conn.pending.iter_mut() {
                if let Slot::Waiting(id) = slot {
                    if *id == req_id {
                        *slot = Slot::Done(resp);
                        break;
                    }
                }
            }
        }
    }
    for conn in conns.values_mut() {
        advance(conn, shared);
    }
    let deadline = Instant::now() + Duration::from_millis(250);
    while Instant::now() < deadline {
        let mut remaining = false;
        for conn in conns.values_mut() {
            if !conn.dead && conn.out_backlog() > 0 {
                flush_out(conn);
                remaining |= !conn.dead && conn.out_backlog() > 0;
            }
        }
        if !remaining {
            break;
        }
        // Shutdown-only flush: the loop has already stopped serving, and
        // the whole drain is capped by the 250ms deadline above.
        // lint: allow(io-blocking)
        std::thread::sleep(Duration::from_millis(2));
    }
    for (_, c) in conns.drain() {
        drop(c);
        shared.live.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_wakes_poll_and_drains() {
        let w = Waker::new().unwrap();
        let mut fds = [PollFd::new(w.fd(), POLLIN)];
        // Nothing pending: poll times out.
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(5))).unwrap(), 0);
        w.wake();
        w.wake(); // coalesces, never blocks
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        w.drain();
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(5))).unwrap(), 0);
    }

    #[test]
    fn completions_arm_one_wake_per_batch() {
        let c = Completions::new().unwrap();
        c.push(0, 0, Response::Left);
        c.push(0, 1, Response::Left);
        let mut out = Vec::new();
        c.drain_into(&mut out);
        assert_eq!(out.len(), 2);
        assert!(!c.wake_armed.load(Ordering::Acquire));
        // A push after the drain re-arms the wake.
        c.push(1, 0, Response::Left);
        assert!(c.wake_armed.load(Ordering::Acquire));
    }
}

/// Interleaving model of the wake-dedup protocol, run under the loom
/// stand-in's schedule perturbation (`--features loom-model`; the TSan
/// CI cell watches the same test for data races).
///
/// The hazard this pins down: `drain_into` MUST clear `wake_armed`
/// *before* draining the queue. If it cleared afterwards, a producer
/// could push between the drain and the clear, observe the still-armed
/// flag, skip its wake — and then the clear lands: item queued, flag
/// down, no datagram in flight. The consumer, which only drains when the
/// waker fires, would never pick it up.
#[cfg(all(test, feature = "loom-model"))]
mod loom_model_tests {
    use super::*;

    /// Every completion pushed concurrently is delivered to a consumer
    /// that drains ONLY on a waker datagram — no wake is ever lost.
    #[test]
    fn no_lost_wake_under_perturbed_schedules() {
        loom::model(|| {
            const PRODUCERS: u64 = 3;
            let mail = Arc::new(Completions::new().unwrap());
            let handles: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let m = Arc::clone(&mail);
                    // Model threads stand in for the market thread.
                    // lint: allow(thread-spawn)
                    loom::thread::spawn(move || {
                        loom::fuzz_yield();
                        m.push(p, 0, Response::Left);
                    })
                })
                .collect();

            // The consumer plays the I/O loop: it touches the mailbox
            // only after observing a wake datagram, exactly like `poll`
            // reporting the waker fd readable.
            let mut got = 0u64;
            let mut out = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(5);
            while got < PRODUCERS {
                assert!(
                    Instant::now() < deadline,
                    "lost wake: {got}/{PRODUCERS} delivered, queue stuck with no datagram"
                );
                let mut buf = [0u8; 8];
                if mail.waker.sock.recv(&mut buf).is_ok() {
                    mail.waker.drain();
                    mail.drain_into(&mut out);
                    got += out.len() as u64;
                    out.clear();
                } else {
                    std::thread::yield_now();
                }
            }
            for h in handles {
                h.join().unwrap();
            }
            // Quiescence: nothing left behind in the mailbox.
            mail.drain_into(&mut out);
            assert!(
                out.is_empty(),
                "completions delivered without a wake: {out:?}"
            );
        });
    }
}
