//! The TCP front half of the daemon: acceptor, connection threads, boot
//! and drain plumbing.
//!
//! Threading model (single-writer / multi-reader):
//!
//! ```text
//! acceptor ──spawns──► connection threads ──Command+oneshot──► market thread
//!                           │                                       │
//!                           └──── query/stats ◄── SharedView ◄── publishes
//! ```
//!
//! Connection threads parse frames and either answer reads directly from
//! the latest published [`MarketView`] or
//! enqueue a [`Command`] and block on its oneshot reply. A `shutdown`
//! request flips the stop flag, pokes the acceptor awake with a loopback
//! connection, and the market thread drains: queued commands are refused,
//! maintenance epochs run to equilibrium, the final snapshot is written.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mec_core::model::Market;
use mec_core::{load_snapshot, Profile};

use crate::chan::{self, Sender};
use crate::market::{run_market, stats_of, Command, MarketConfig, MarketOutcome};
use crate::proto::{self, Request, Response};
use crate::view::{MarketView, SharedView};

/// Boot configuration of [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7690`; port 0 picks an ephemeral
    /// port (read it back from [`ServerHandle::addr`]).
    pub addr: String,
    /// Snapshot file. If it exists at boot, the daemon restores market,
    /// placements and admission state from it (crash recovery) instead of
    /// using the market passed to [`serve`].
    pub snapshot_path: Option<PathBuf>,
    /// Improving moves per equilibrium-maintenance epoch.
    pub epoch_moves: usize,
    /// Queue-empty gap that triggers a maintenance epoch.
    pub idle: Duration,
    /// Bound of the command queue (backpressure for writers).
    pub queue_cap: usize,
    /// Maximum simultaneous client connections.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            snapshot_path: None,
            epoch_moves: 32,
            idle: Duration::from_millis(2),
            queue_cap: 256,
            max_connections: 512,
        }
    }
}

/// A running daemon. Dropping the handle does **not** stop the daemon;
/// send a `shutdown` request and [`ServerHandle::join`] it.
pub struct ServerHandle {
    addr: SocketAddr,
    market: JoinHandle<MarketOutcome>,
    acceptor: JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon drains and returns the market outcome.
    ///
    /// # Panics
    ///
    /// Panics if the market or acceptor thread itself panicked.
    pub fn join(self) -> MarketOutcome {
        let outcome = match self.market.join() {
            Ok(o) => o,
            Err(e) => std::panic::resume_unwind(e),
        };
        if let Err(e) = self.acceptor.join() {
            std::panic::resume_unwind(e);
        }
        outcome
    }
}

/// Everything a connection thread needs, cheap to clone per accept.
struct Shared {
    view: Arc<SharedView>,
    tx: Sender<Command>,
    stop: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    max_connections: usize,
    addr: SocketAddr,
}

/// Boots the daemon: restores the snapshot if one exists, binds the
/// listener, and starts the market and acceptor threads.
///
/// # Errors
///
/// Propagates bind errors and snapshot-restore I/O or corruption errors.
pub fn serve(market: Market, cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    // Crash recovery: an existing snapshot file *is* the market state.
    let (market, profile, active, seq) = match cfg.snapshot_path.as_deref() {
        Some(path) if path.exists() => {
            let snap = load_snapshot(path).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("restoring {}: {e}", path.display()),
                )
            })?;
            (snap.market, snap.profile, snap.active, snap.seq)
        }
        _ => {
            let n = market.provider_count();
            (market, Profile::all_remote(n), vec![false; n], 0)
        }
    };

    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let view = Arc::new(SharedView::new(MarketView::empty(market.provider_count())));
    let (tx, rx) = chan::bounded::<Command>(cfg.queue_cap);
    let stop = Arc::new(AtomicBool::new(false));

    let market_cfg = MarketConfig {
        epoch_moves: cfg.epoch_moves,
        idle: cfg.idle,
        snapshot_path: cfg.snapshot_path.clone(),
    };
    let market_view = view.clone();
    let market_stop = stop.clone();
    // The daemon's writer thread: owns the market for its whole life.
    // Intentionally a raw thread, not the bench pool — it outlives any
    // scope and is joined through the ServerHandle. lint: allow(thread-spawn)
    let market_thread = std::thread::spawn(move || {
        let outcome = run_market(market, profile, active, seq, &rx, &market_view, &market_cfg);
        // Market thread is done (drain or disconnect): stop the acceptor
        // and poke it out of `accept()` with a throwaway connection.
        market_stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        outcome
    });

    let shared = Arc::new(Shared {
        view,
        tx,
        stop: stop.clone(),
        live: Arc::new(AtomicUsize::new(0)),
        max_connections: cfg.max_connections,
        addr,
    });
    // Acceptor: owns the listener; exits when the stop flag flips.
    // lint: allow(thread-spawn)
    let acceptor = std::thread::spawn(move || {
        accept_loop(&listener, &shared);
    });

    Ok(ServerHandle {
        addr,
        market: market_thread,
        acceptor,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Frames are small request/response pairs; never batch them.
        let _ = stream.set_nodelay(true);
        if shared.live.load(Ordering::SeqCst) >= shared.max_connections {
            let mut s = stream;
            let payload = proto::encode_response(&Response::Error {
                msg: "server at connection capacity".to_string(),
            });
            let _ = proto::write_frame(&mut s, &payload);
            continue;
        }
        shared.live.fetch_add(1, Ordering::SeqCst);
        let shared = shared.clone();
        // One thread per connection; the cap above bounds the fleet.
        // lint: allow(thread-spawn)
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &shared);
            shared.live.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// Serves one client until EOF, protocol error, or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    while let Some(payload) = proto::read_frame(&mut reader)? {
        let response = match proto::parse_request(&payload) {
            Ok(req) => dispatch(req, shared),
            Err(e) => Response::Error { msg: e.to_string() },
        };
        let closing = matches!(response, Response::Draining);
        proto::write_frame(&mut writer, &proto::encode_response(&response))?;
        if closing {
            break;
        }
    }
    writer.flush()
}

/// Routes one request: reads are answered from the published view,
/// writes round-trip through the market thread.
fn dispatch(req: Request, shared: &Shared) -> Response {
    let command = |cmd: Command| -> Response {
        // The oneshot sender is inside `cmd`; if the market thread is
        // gone (or refuses at drain), the reply slot reports it.
        match shared.tx.send(cmd) {
            Ok(()) => Response::Error {
                msg: "market thread dropped the reply".to_string(),
            },
            Err(_) => Response::Error {
                msg: "daemon is draining".to_string(),
            },
        }
    };
    match req {
        Request::Query { provider } => {
            let view = shared.view.load();
            match (view.placements.get(provider), view.costs.get(provider)) {
                (Some(p), Some(&cost)) => Response::Placement {
                    at: match p {
                        mec_core::Placement::Remote => None,
                        mec_core::Placement::Cloudlet(c) => Some(c.index()),
                    },
                    cost,
                    active: view.active[provider],
                    seq: view.seq,
                },
                _ => Response::Error {
                    msg: format!("unknown provider {provider}"),
                },
            }
        }
        Request::Stats => Response::Stats(stats_of(&shared.view.load())),
        Request::Join { provider, cloudlet } => {
            let (reply, rx) = chan::oneshot();
            let fallback = command(Command::Join {
                provider,
                cloudlet,
                reply,
            });
            rx.recv().unwrap_or(fallback)
        }
        Request::Leave { provider } => {
            let (reply, rx) = chan::oneshot();
            let fallback = command(Command::Leave { provider, reply });
            rx.recv().unwrap_or(fallback)
        }
        Request::UpdateDemand {
            provider,
            compute,
            bandwidth,
        } => {
            let (reply, rx) = chan::oneshot();
            let fallback = command(Command::Update {
                provider,
                compute,
                bandwidth,
                reply,
            });
            rx.recv().unwrap_or(fallback)
        }
        Request::Snapshot => {
            let (reply, rx) = chan::oneshot();
            let fallback = command(Command::Snapshot { reply });
            rx.recv().unwrap_or(fallback)
        }
        Request::Restore => {
            let (reply, rx) = chan::oneshot();
            let fallback = command(Command::Restore { reply });
            rx.recv().unwrap_or(fallback)
        }
        Request::Shutdown => {
            let (reply, rx) = chan::oneshot();
            let fallback = command(Command::Shutdown { reply });
            let resp = rx.recv().unwrap_or(fallback);
            // Stop accepting and poke the acceptor; the market thread
            // also does this when it exits, but doing it here closes the
            // window where a new client connects mid-drain.
            shared.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(shared.addr);
            resp
        }
    }
}
