//! The TCP front half of the daemon: acceptor, event-loop I/O threads,
//! boot and drain plumbing.
//!
//! Threading model (single-writer *per region* / multi-reader):
//!
//! ```text
//! acceptor ──inbox+wake──► io threads ──Command batch──► shard threads (×N)
//!                           │    ▲                           │   ▲
//!         reads from views ─┘    └──── Completions ◄──── publishes+acks
//!                                                            └── peer queues
//! ```
//!
//! The acceptor owns the listener and hands each accepted socket to one
//! of a small, fixed set of I/O threads (round-robin), which run the
//! poll-based event loop in [`crate::eventloop`]: nonblocking reads into
//! per-connection frame decoders, reads answered from the owning shard's
//! published [`crate::view::MarketView`], writes routed by the
//! provider→shard [`Router`] as [`Command`]s whose replies come back
//! through a completion mailbox and leave in request order. No thread is
//! ever parked on one client.
//!
//! With `shards == 1` the daemon is exactly the legacy single-writer
//! system: one market thread, one view, plain snapshot files, teardown
//! by channel disconnection. With `shards > 1` each region gets its own
//! writer thread; admin requests fan out as coordinated two-phase ops
//! (see [`crate::shard`]), snapshots become per-shard slice sets behind a
//! manifest, and teardown is signalled by the `io_live` counter (peers
//! hold each other's senders, so disconnection can never fire).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use mec_core::model::Market;
use mec_core::{load_snapshot, MarketSnapshot, Placement, Profile, ProviderId};

use crate::chan;
use crate::demand::DemandTracker;
use crate::eventloop::{run_io, Completions, IoShared};
use crate::market::{run_shard, Command, MarketConfig, MarketOutcome, ShardCtx};
use crate::proto::{self, Response};
use crate::shard::{
    contiguous_regions, parse_manifest, shard_snapshot_path, Coordinator, Router, ShardGauges,
};
use crate::view::{MarketView, SharedView};

/// Boot configuration of [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7690`; port 0 picks an ephemeral
    /// port (read it back from [`ServerHandle::addr`]).
    pub addr: String,
    /// Snapshot file. If it exists at boot, the daemon restores market,
    /// placements and admission state from it (crash recovery) instead of
    /// using the market passed to [`serve`]. A sharded daemon writes a
    /// manifest here pointing at per-shard slice files; boot understands
    /// both formats regardless of the configured shard count.
    pub snapshot_path: Option<PathBuf>,
    /// Improving moves per equilibrium-maintenance quantum.
    pub epoch_moves: usize,
    /// Bound of each shard's command queue (backpressure for writers).
    pub queue_cap: usize,
    /// Most commands a shard thread takes per batched drain.
    pub batch_max: usize,
    /// Event-loop I/O threads; 0 sizes the fleet from the machine
    /// (`available_parallelism`, capped at 4 — the shard threads are the
    /// write bottleneck, extra I/O threads past that just add contention).
    pub io_threads: usize,
    /// Maximum simultaneous client connections.
    pub max_connections: usize,
    /// Market shards (writer threads), each owning one topology region.
    /// 1 (the default) keeps the legacy single-writer daemon; clamped to
    /// the cloudlet count.
    pub shards: usize,
    /// Cloudlet→shard region map (`regions[c]` is the owning shard of
    /// cloudlet `c`). `None` derives a contiguous index split; callers
    /// with topology metadata pass `MecNetwork::regions(shards)` for a
    /// spatial partition.
    pub regions: Option<Vec<usize>>,
    /// Address of the HTTP admin surface ([`crate::admin`]), e.g.
    /// `127.0.0.1:9640`; port 0 picks an ephemeral port (read it back
    /// from [`ServerHandle::admin_addr`]). `None` (the default) runs no
    /// admin listener.
    pub admin_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            snapshot_path: None,
            epoch_moves: 32,
            queue_cap: 1024,
            batch_max: 256,
            io_threads: 0,
            max_connections: 512,
            shards: 1,
            regions: None,
            admin_addr: None,
        }
    }
}

impl ServerConfig {
    fn io_thread_count(&self) -> usize {
        if self.io_threads > 0 {
            return self.io_threads;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // On a single core one I/O thread is strictly better: the market
        // thread needs the core more than a second poll loop does.
        cores.saturating_sub(1).clamp(1, 4)
    }
}

/// A running daemon. Dropping the handle does **not** stop the daemon;
/// send a `shutdown` request and [`ServerHandle::join`] it.
pub struct ServerHandle {
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    shards: Vec<JoinHandle<MarketOutcome>>,
    acceptor: JoinHandle<()>,
    io: Vec<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound admin address, when [`ServerConfig::admin_addr`] asked
    /// for one (resolves port 0 to the actual ephemeral port).
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// Blocks until the daemon drains and returns the merged market
    /// outcome (totals summed across shards, placements merged by the
    /// final admission mask — after a drain every provider is active on
    /// at most one shard).
    ///
    /// # Panics
    ///
    /// Panics if a shard, the acceptor, or an I/O thread itself panicked.
    pub fn join(self) -> MarketOutcome {
        let mut outcomes = Vec::with_capacity(self.shards.len());
        for h in self.shards {
            match h.join() {
                Ok(o) => outcomes.push(o),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
        if let Err(e) = self.acceptor.join() {
            std::panic::resume_unwind(e);
        }
        for h in self.io {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
        if let Some(h) = self.admin {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
        merge_outcomes(outcomes)
    }
}

/// Folds per-shard outcomes into the daemon-wide one. Counters sum,
/// equilibrium ANDs, violations concatenate; a provider's placement and
/// admission flag come from whichever shard holds it active (unique
/// after a drain — migrations are quiesced before shards finish).
fn merge_outcomes(mut outcomes: Vec<MarketOutcome>) -> MarketOutcome {
    let mut merged = outcomes.remove(0);
    for o in outcomes {
        merged.seq += o.seq;
        merged.epochs += o.epochs;
        merged.moves += o.moves;
        merged.equilibrium &= o.equilibrium;
        merged.violations.extend(o.violations);
        for p in 0..o.active.len() {
            if o.active[p] {
                merged.active[p] = true;
                merged
                    .profile
                    .set(ProviderId(p), o.profile.placement(ProviderId(p)));
            }
        }
    }
    merged
}

/// Boot state recovered from disk (or the caller's fresh market): the
/// merged global market, placements, admission mask, seq, the epoch to
/// seed the snapshot coordinator with, and any per-provider ownership
/// claims a sharded snapshot set recorded.
struct BootState {
    market: Market,
    profile: Profile,
    active: Vec<bool>,
    seq: u64,
    epoch0: u64,
    claim: Vec<Option<usize>>,
}

/// Restores boot state from `path` if a snapshot exists there: either a
/// sharded manifest (merge every slice of the newest consistent set) or
/// a legacy whole-market file. No snapshot means a fresh all-remote boot
/// from the caller's market.
fn boot_state(market: Market, path: Option<&Path>) -> std::io::Result<BootState> {
    let fresh = |market: Market| {
        let n = market.provider_count();
        BootState {
            market,
            profile: Profile::all_remote(n),
            active: vec![false; n],
            seq: 0,
            epoch0: 0,
            claim: vec![None; n],
        }
    };
    let Some(path) = path.filter(|p| p.exists()) else {
        return Ok(fresh(market));
    };
    let text = std::fs::read_to_string(path)?;
    let Some(manifest) = parse_manifest(&text) else {
        // Legacy whole-market snapshot: the file *is* the market state.
        let snap = load_snapshot(path).map_err(|e| restore_err(path, &e))?;
        let n = snap.market.provider_count();
        return Ok(BootState {
            market: snap.market,
            profile: snap.profile,
            active: snap.active,
            seq: snap.seq,
            epoch0: 0,
            claim: vec![None; n],
        });
    };
    let mut slices = Vec::with_capacity(manifest.shards);
    for k in 0..manifest.shards {
        let slice_path = shard_snapshot_path(path, manifest.epoch, k);
        slices.push(load_snapshot(&slice_path).map_err(|e| restore_err(&slice_path, &e))?);
    }
    Ok(merge_slices(slices, manifest.epoch))
}

fn restore_err(path: &Path, e: &dyn std::fmt::Display) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("restoring {}: {e}", path.display()),
    )
}

/// Merges the slices of one coordinated snapshot set into a global boot
/// state. Each slice is authoritative for the providers its ownership
/// mask claims: their placement, admission flag, and demand vector come
/// from the owning slice (each shard's market copy tracks `update`s only
/// for its own providers). Claim conflicts — possible when a crash lands
/// between a join-forward's ownership transfer and the peer's slice
/// write — resolve in favor of an *active* claim: the claimant actually
/// holding the provider in its game state is unique, because migrations
/// are quiesced while slices are written.
fn merge_slices(slices: Vec<MarketSnapshot>, epoch: u64) -> BootState {
    let mut slices = slices.into_iter();
    // The manifest loader rejects empty snapshot sets before this call.
    // lint: allow(panics)
    let first = slices.next().expect("manifest guarantees >= 1 shard");
    let mut out = BootState {
        seq: first.seq,
        epoch0: epoch,
        claim: vec![None; first.market.provider_count()],
        profile: Profile::all_remote(first.market.provider_count()),
        active: vec![false; first.market.provider_count()],
        market: first.market.clone(),
    };
    let n = out.market.provider_count();
    let mut fold = |k: usize, snap: &MarketSnapshot| {
        out.seq = out.seq.max(snap.seq);
        let Some(meta) = snap.shard.as_ref() else {
            return;
        };
        for p in 0..n {
            if !meta.owned.get(p).copied().unwrap_or(false) {
                continue;
            }
            if out.claim[p].is_some() && (out.active[p] || !snap.active[p]) {
                // Keep an active claim; an inactive double-claim is a
                // converged Remote/inactive copy on both sides.
                continue;
            }
            out.claim[p] = Some(k);
            out.active[p] = snap.active[p];
            out.profile
                .set(ProviderId(p), snap.profile.placement(ProviderId(p)));
            let spec = snap.market.provider(ProviderId(p));
            out.market.set_provider_demand(
                ProviderId(p),
                spec.compute_demand,
                spec.bandwidth_demand,
            );
        }
    };
    fold(0, &first);
    for (k, snap) in slices.enumerate() {
        fold(k + 1, &snap);
    }
    out
}

/// Validates a caller-supplied region map (or derives the contiguous
/// fallback): every cloudlet mapped, every shard non-empty.
pub(crate) fn region_map(
    regions: Option<&Vec<usize>>,
    cloudlets: usize,
    shards: usize,
) -> std::io::Result<Vec<usize>> {
    let Some(r) = regions else {
        return Ok(contiguous_regions(cloudlets, shards));
    };
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
    if r.len() != cloudlets {
        return Err(bad(format!(
            "region map covers {} cloudlets, market has {cloudlets}",
            r.len()
        )));
    }
    for k in 0..shards {
        if !r.contains(&k) {
            return Err(bad(format!(
                "region map leaves shard {k} without cloudlets"
            )));
        }
    }
    if let Some(&r_max) = r.iter().max() {
        if r_max >= shards {
            return Err(bad(format!(
                "region map names shard {r_max}, daemon has {shards}"
            )));
        }
    }
    Ok(r.clone())
}

/// Boots the daemon: restores the snapshot if one exists, binds the
/// listener, and starts the shard, acceptor, and I/O threads.
///
/// # Errors
///
/// Propagates bind errors, waker-socket errors, invalid region maps, and
/// snapshot-restore I/O or corruption errors.
pub fn serve(market: Market, cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let boot = boot_state(market, cfg.snapshot_path.as_deref())?;
    let BootState {
        market,
        profile,
        active,
        seq,
        epoch0,
        claim,
    } = boot;
    let n = market.provider_count();
    let m = market.cloudlet_count();
    let shards = cfg.shards.clamp(1, m.max(1));
    let region_of = region_map(cfg.regions.as_ref(), m, shards)?;

    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let views: Vec<Arc<SharedView>> = (0..shards)
        .map(|_| Arc::new(SharedView::new(MarketView::empty(n))))
        .collect();
    let router = Arc::new(Router::new(n, shards));
    for (p, &claimed) in claim.iter().enumerate() {
        // Restored/derived ownership: a cached provider belongs to its
        // cloudlet's region (capacity is accounted there); a remote one
        // keeps its snapshot claim when still valid, else its home shard.
        let owner = match profile.placement(ProviderId(p)) {
            Placement::Cloudlet(c) => region_of[c.index()],
            Placement::Remote => claimed.filter(|&k| k < shards).unwrap_or(p % shards),
        };
        router.set_owner(p, owner);
    }
    let gauges = Arc::new(ShardGauges::new(shards));
    let coord = Arc::new(Coordinator::new(shards, region_of.clone(), epoch0));
    let stop = Arc::new(AtomicBool::new(false));
    // Bind the admin listener before any thread starts so a bad admin
    // address fails the boot instead of leaking a half-started daemon.
    let admin_listener = match cfg.admin_addr.as_deref() {
        Some(a) => Some(crate::admin::bind_admin(a)?),
        None => None,
    };
    let live = Arc::new(AtomicUsize::new(0));
    let io_count = cfg.io_thread_count();
    let io_live = Arc::new(AtomicUsize::new(io_count));
    // One demand tracker daemon-wide: every I/O thread notes queries into
    // it, each writer folds (only) its owned providers' counts.
    let demand = Arc::new(DemandTracker::new(n));

    let mut txs = Vec::with_capacity(shards);
    let mut rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = chan::bounded::<Command>(cfg.queue_cap);
        txs.push(tx);
        rxs.push(rx);
    }

    // One IoShared per event-loop thread: its own completion mailbox and
    // accepted-connection inbox, everything else shared daemon-wide.
    let mut io_shared: Vec<Arc<IoShared>> = Vec::with_capacity(io_count);
    for _ in 0..io_count {
        io_shared.push(Arc::new(IoShared {
            completions: Arc::new(Completions::new()?),
            inbox: Mutex::new(Vec::new()),
            stop: stop.clone(),
            live: live.clone(),
            txs: txs.clone(),
            views: views.clone(),
            router: router.clone(),
            gauges: gauges.clone(),
            coord: coord.clone(),
            demand: demand.clone(),
            addr,
        }));
    }

    let market_cfg = MarketConfig {
        epoch_moves: cfg.epoch_moves,
        batch_max: cfg.batch_max,
        snapshot_path: cfg.snapshot_path.clone(),
    };
    let wakers: Vec<Arc<Completions>> = io_shared.iter().map(|s| s.completions.clone()).collect();

    let mut shard_threads = Vec::with_capacity(shards);
    for (k, rx) in rxs.into_iter().enumerate() {
        let mine: Vec<bool> = region_of.iter().map(|&r| r == k).collect();
        // At one shard the context carries no peer senders and no
        // io_live counter: the writer keeps the legacy teardown contract
        // (its receiver disconnects once every I/O thread exits).
        let ctx = ShardCtx::new(
            k,
            shards,
            mine,
            router.clone(),
            if shards > 1 { txs.clone() } else { Vec::new() },
            if shards > 1 {
                views.clone()
            } else {
                Vec::new()
            },
            coord.clone(),
            gauges.clone(),
            (shards > 1).then(|| io_live.clone()),
        )
        .with_demand(demand.clone());
        // This shard's slice of the boot state: owned providers carry
        // their restored placement and admission flag, everyone else is
        // Remote/inactive (their owner's slice carries them).
        let shard_market = market.clone();
        let mut shard_profile = Profile::all_remote(n);
        let mut shard_active = vec![false; n];
        for p in 0..n {
            if router.owner(p) == k {
                shard_active[p] = active[p];
                shard_profile.set(ProviderId(p), profile.placement(ProviderId(p)));
            }
        }
        let view = views[k].clone();
        let cfg_k = market_cfg.clone();
        let stop_k = stop.clone();
        let wakers_k = wakers.clone();
        // The shard's writer thread: owns its region for its whole life.
        // Intentionally a raw thread, not the bench pool — it outlives any
        // scope and is joined through the ServerHandle. lint: allow(thread-spawn)
        shard_threads.push(std::thread::spawn(move || {
            let outcome = run_shard(
                shard_market,
                shard_profile,
                shard_active,
                seq,
                &rx,
                &view,
                &cfg_k,
                &ctx,
            );
            // This shard is done (drain or disconnect): stop the
            // acceptor, poke it out of `accept()` with a throwaway
            // connection, and wake every I/O thread so it observes the
            // flag and flushes out. Idempotent across shards.
            stop_k.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            for c in &wakers_k {
                c.wake();
            }
            outcome
        }));
    }
    // The boot copies of the senders are dropped here: at one shard the
    // writer's receiver disconnects once the I/O threads exit (legacy
    // teardown); at several the peers hold each other's senders and the
    // io_live counter signals teardown instead.
    drop(txs);

    let mut io = Vec::with_capacity(io_count);
    for shared in &io_shared {
        let shared = shared.clone();
        let io_live_k = io_live.clone();
        // One poll loop per I/O thread, joined through the ServerHandle.
        // lint: allow(thread-spawn)
        io.push(std::thread::spawn(move || {
            run_io(&shared);
            // Signal the shard threads: one fewer I/O-side sender. At
            // zero the shards self-drain even though their peers still
            // hold senders (disconnection can never fire at > 1 shard).
            io_live_k.fetch_sub(1, Ordering::AcqRel);
        }));
    }

    let mut admin_addr = None;
    let mut admin = None;
    if let Some((admin_l, bound)) = admin_listener {
        admin_addr = Some(bound);
        let shared = Arc::new(crate::admin::AdminShared {
            views: views.clone(),
            router: router.clone(),
            gauges: gauges.clone(),
            coord: coord.clone(),
            stop: stop.clone(),
            cloudlets: m,
            providers: n,
        });
        admin = Some(crate::admin::spawn_admin(admin_l, shared));
    }

    let max_connections = cfg.max_connections;
    // Acceptor: owns the listener; exits when the stop flag flips.
    // lint: allow(thread-spawn)
    let acceptor = std::thread::spawn(move || {
        accept_loop(&listener, &io_shared, &stop, &live, max_connections);
    });

    Ok(ServerHandle {
        addr,
        admin_addr,
        shards: shard_threads,
        acceptor,
        io,
        admin,
    })
}

/// Accepts connections and deals them round-robin to the I/O threads.
fn accept_loop(
    listener: &TcpListener,
    io_shared: &[Arc<IoShared>],
    stop: &AtomicBool,
    live: &AtomicUsize,
    max_connections: usize,
) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Frames are small request/response pairs; never batch them.
        let _ = stream.set_nodelay(true);
        if live.load(Ordering::SeqCst) >= max_connections {
            let mut s = stream;
            let payload = proto::encode_response(&Response::Error {
                msg: "server at connection capacity".to_string(),
            });
            let _ = proto::write_frame(&mut s, &payload);
            continue;
        }
        live.fetch_add(1, Ordering::SeqCst);
        let target = &io_shared[next % io_shared.len()];
        next = next.wrapping_add(1);
        {
            let mut inbox = target.inbox.lock().unwrap_or_else(|e| e.into_inner());
            inbox.push(stream);
        }
        target.completions.wake();
    }
}
