//! The TCP front half of the daemon: acceptor, event-loop I/O threads,
//! boot and drain plumbing.
//!
//! Threading model (single-writer / multi-reader):
//!
//! ```text
//! acceptor ──inbox+wake──► io threads ──Command batch──► market thread
//!                           │    ▲                           │
//!          reads from view ─┘    └──── Completions ◄──── publishes+acks
//! ```
//!
//! The acceptor owns the listener and hands each accepted socket to one
//! of a small, fixed set of I/O threads (round-robin), which run the
//! poll-based event loop in [`crate::eventloop`]: nonblocking reads into
//! per-connection frame decoders, reads answered from the latest
//! published [`crate::view::MarketView`], writes enqueued as
//! [`Command`]s whose replies come back through a completion mailbox and
//! leave in request order. No thread is ever parked on one client.
//!
//! A `shutdown` request drains through the market thread, which answers
//! `draining`; the I/O thread that sees that completion flips the stop
//! flag and pokes the acceptor awake with a loopback connection. The
//! market thread refuses queued commands, runs maintenance quanta to
//! equilibrium, writes the final snapshot, then wakes every I/O thread
//! so they flush and exit.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use mec_core::model::Market;
use mec_core::{load_snapshot, Profile};

use crate::chan;
use crate::eventloop::{run_io, Completions, IoShared};
use crate::market::{run_market, Command, MarketConfig, MarketOutcome};
use crate::proto::{self, Response};
use crate::view::{MarketView, SharedView};

/// Boot configuration of [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7690`; port 0 picks an ephemeral
    /// port (read it back from [`ServerHandle::addr`]).
    pub addr: String,
    /// Snapshot file. If it exists at boot, the daemon restores market,
    /// placements and admission state from it (crash recovery) instead of
    /// using the market passed to [`serve`].
    pub snapshot_path: Option<PathBuf>,
    /// Improving moves per equilibrium-maintenance quantum.
    pub epoch_moves: usize,
    /// Bound of the command queue (backpressure for writers).
    pub queue_cap: usize,
    /// Most commands the market thread takes per batched drain.
    pub batch_max: usize,
    /// Event-loop I/O threads; 0 sizes the fleet from the machine
    /// (`available_parallelism`, capped at 4 — the market thread is the
    /// write bottleneck, extra I/O threads past that just add contention).
    pub io_threads: usize,
    /// Maximum simultaneous client connections.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            snapshot_path: None,
            epoch_moves: 32,
            queue_cap: 1024,
            batch_max: 256,
            io_threads: 0,
            max_connections: 512,
        }
    }
}

impl ServerConfig {
    fn io_thread_count(&self) -> usize {
        if self.io_threads > 0 {
            return self.io_threads;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // On a single core one I/O thread is strictly better: the market
        // thread needs the core more than a second poll loop does.
        cores.saturating_sub(1).clamp(1, 4)
    }
}

/// A running daemon. Dropping the handle does **not** stop the daemon;
/// send a `shutdown` request and [`ServerHandle::join`] it.
pub struct ServerHandle {
    addr: SocketAddr,
    market: JoinHandle<MarketOutcome>,
    acceptor: JoinHandle<()>,
    io: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon drains and returns the market outcome.
    ///
    /// # Panics
    ///
    /// Panics if the market, acceptor, or an I/O thread itself panicked.
    pub fn join(self) -> MarketOutcome {
        let outcome = match self.market.join() {
            Ok(o) => o,
            Err(e) => std::panic::resume_unwind(e),
        };
        if let Err(e) = self.acceptor.join() {
            std::panic::resume_unwind(e);
        }
        for h in self.io {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
        outcome
    }
}

/// Boots the daemon: restores the snapshot if one exists, binds the
/// listener, and starts the market, acceptor, and I/O threads.
///
/// # Errors
///
/// Propagates bind errors, waker-socket errors, and snapshot-restore I/O
/// or corruption errors.
pub fn serve(market: Market, cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    // Crash recovery: an existing snapshot file *is* the market state.
    let (market, profile, active, seq) = match cfg.snapshot_path.as_deref() {
        Some(path) if path.exists() => {
            let snap = load_snapshot(path).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("restoring {}: {e}", path.display()),
                )
            })?;
            (snap.market, snap.profile, snap.active, snap.seq)
        }
        _ => {
            let n = market.provider_count();
            (market, Profile::all_remote(n), vec![false; n], 0)
        }
    };

    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let view = Arc::new(SharedView::new(MarketView::empty(market.provider_count())));
    let (tx, rx) = chan::bounded::<Command>(cfg.queue_cap);
    let stop = Arc::new(AtomicBool::new(false));
    let live = Arc::new(AtomicUsize::new(0));

    // One IoShared per event-loop thread: its own completion mailbox and
    // accepted-connection inbox, everything else shared daemon-wide.
    let io_count = cfg.io_thread_count();
    let mut io_shared: Vec<Arc<IoShared>> = Vec::with_capacity(io_count);
    for _ in 0..io_count {
        io_shared.push(Arc::new(IoShared {
            completions: Arc::new(Completions::new()?),
            inbox: Mutex::new(Vec::new()),
            stop: stop.clone(),
            live: live.clone(),
            tx: tx.clone(),
            view: view.clone(),
            addr,
        }));
    }
    // The boot copy of `tx` is dropped here: once the I/O threads exit,
    // the market thread's receiver disconnects and it can tear down even
    // without an explicit shutdown command.
    drop(tx);

    let market_cfg = MarketConfig {
        epoch_moves: cfg.epoch_moves,
        batch_max: cfg.batch_max,
        snapshot_path: cfg.snapshot_path.clone(),
    };
    let market_view = view.clone();
    let market_stop = stop.clone();
    let market_wakers: Vec<Arc<Completions>> =
        io_shared.iter().map(|s| s.completions.clone()).collect();
    // The daemon's writer thread: owns the market for its whole life.
    // Intentionally a raw thread, not the bench pool — it outlives any
    // scope and is joined through the ServerHandle. lint: allow(thread-spawn)
    let market_thread = std::thread::spawn(move || {
        let outcome = run_market(market, profile, active, seq, &rx, &market_view, &market_cfg);
        // Market thread is done (drain or disconnect): stop the acceptor,
        // poke it out of `accept()` with a throwaway connection, and wake
        // every I/O thread so it observes the flag and flushes out.
        market_stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        for c in &market_wakers {
            c.wake();
        }
        outcome
    });

    let mut io = Vec::with_capacity(io_count);
    for shared in &io_shared {
        let shared = shared.clone();
        // One poll loop per I/O thread, joined through the ServerHandle.
        // lint: allow(thread-spawn)
        io.push(std::thread::spawn(move || run_io(&shared)));
    }

    let max_connections = cfg.max_connections;
    // Acceptor: owns the listener; exits when the stop flag flips.
    // lint: allow(thread-spawn)
    let acceptor = std::thread::spawn(move || {
        accept_loop(&listener, &io_shared, &stop, &live, max_connections);
    });

    Ok(ServerHandle {
        addr,
        market: market_thread,
        acceptor,
        io,
    })
}

/// Accepts connections and deals them round-robin to the I/O threads.
fn accept_loop(
    listener: &TcpListener,
    io_shared: &[Arc<IoShared>],
    stop: &AtomicBool,
    live: &AtomicUsize,
    max_connections: usize,
) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Frames are small request/response pairs; never batch them.
        let _ = stream.set_nodelay(true);
        if live.load(Ordering::SeqCst) >= max_connections {
            let mut s = stream;
            let payload = proto::encode_response(&Response::Error {
                msg: "server at connection capacity".to_string(),
            });
            let _ = proto::write_frame(&mut s, &payload);
            continue;
        }
        live.fetch_add(1, Ordering::SeqCst);
        let target = &io_shared[next % io_shared.len()];
        next = next.wrapping_add(1);
        {
            let mut inbox = target.inbox.lock().unwrap_or_else(|e| e.into_inner());
            inbox.push(stream);
        }
        target.completions.wake();
    }
}
