//! Shard plumbing for the partitioned market: provider→shard routing,
//! coordinated multi-shard snapshot/restore/drain state, per-shard
//! gauges, and the manifest codec.
//!
//! The market is partitioned by *topology region*: each shard owns a
//! disjoint set of cloudlets (a spatial cluster from
//! `mec_topology::MecNetwork::regions`, or a contiguous split for bare
//! markets) plus the providers currently placed in — or homed to — that
//! region. A provider's congestion cost (Eq. 1–3) depends only on the
//! load at its own cloudlet, so best-response epochs are shard-local and
//! the shards never share mutable game state: every cross-shard effect
//! travels as a [`crate::market::Command`] on the owning shard's queue.
//!
//! # Ownership
//!
//! The [`Router`] maps every provider to its owning shard. The single
//! consistency rule that keeps admission single-writer per region:
//! **ownership changes only on the current owner's thread.** I/O threads
//! read the router to pick a queue; a shard that receives a command for a
//! provider it no longer owns forwards it along. Because each shard is
//! the only writer for its region's capacity, Eq. 4–5 admission needs no
//! cross-shard locking — a reservation granted by the target shard (the
//! two-phase reserve→commit migration handoff) is debited on the target's
//! own thread, so concurrent admissions can never oversubscribe.
//!
//! # Coordinated snapshots
//!
//! A multi-shard snapshot is two-phase: a *prepare* fan-out pauses new
//! migrations and waits for every in-flight handoff to resolve (each
//! shard defers its prepare-ack until its outgoing migration has sent
//! `commit` or `abort`), then an *apply* fan-out has every shard write
//! `<path>.e<E>.s<k>` stamped with a shared coordinator epoch. The shard
//! that completes last writes the manifest at `<path>` — manifest last,
//! so a crash leaves either the previous complete set or the new one.
//! Because a commit is enqueued on the target's FIFO queue *before* the
//! source acks prepare, and the apply command is enqueued *after* every
//! ack, every migrated provider lands in exactly one shard file.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use mec_obs::json;

use crate::chan::lock_ok;

/// Sentinel for "no drain epoch assigned yet" (see [`Coordinator`]).
const NO_EPOCH: u64 = u64::MAX;

/// Lock-free provider→shard ownership map.
///
/// I/O threads read it to route writes and queries; shard threads write
/// it, but only for providers they currently own (or, during a restore,
/// for providers their snapshot slice assigns to them). Relaxed ordering
/// is enough: a stale read routes a command to the previous owner, which
/// forwards it — correctness never depends on routing freshness.
pub struct Router {
    owner: Vec<AtomicUsize>,
}

impl Router {
    /// A fresh router over `providers` providers: provider `p` starts on
    /// its *home shard* `p % shards`.
    pub fn new(providers: usize, shards: usize) -> Router {
        assert!(shards > 0, "need at least one shard");
        Router {
            owner: (0..providers)
                .map(|p| AtomicUsize::new(p % shards))
                .collect(),
        }
    }

    /// Number of routed providers.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// `true` if the router covers no providers.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Current owning shard of provider `p` (clamped routing: unknown
    /// providers go to shard 0, whose handler answers the error).
    pub fn owner(&self, p: usize) -> usize {
        self.owner.get(p).map_or(0, |a| a.load(Ordering::Relaxed))
    }

    /// Reassigns provider `p` to shard `s`. Call only from the thread of
    /// the shard that currently owns `p` (or during a coordinated
    /// restore, from the shard whose slice owns `p`).
    pub fn set_owner(&self, p: usize, s: usize) {
        if let Some(a) = self.owner.get(p) {
            a.store(s, Ordering::Relaxed);
        }
    }
}

/// Per-shard gauges shared between shard threads (writers) and I/O /
/// admin threads (readers answering `stats` and `GET /shards`).
pub struct ShardGauges {
    depth: Vec<AtomicUsize>,
    writes: Vec<AtomicU64>,
    migrations: Vec<AtomicU64>,
}

impl ShardGauges {
    /// Gauges for `shards` shards, all zero.
    pub fn new(shards: usize) -> ShardGauges {
        ShardGauges {
            depth: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            writes: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            migrations: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records the queue depth shard `k` saw at its latest drain.
    pub fn set_depth(&self, k: usize, depth: usize) {
        self.depth[k].store(depth, Ordering::Relaxed);
    }

    /// Adds settled write commands to shard `k`'s lifetime counter.
    pub fn add_writes(&self, k: usize, n: u64) {
        self.writes[k].fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a cross-shard migration granted *into* shard `k`.
    pub fn add_migrations(&self, k: usize, n: u64) {
        self.migrations[k].fetch_add(n, Ordering::Relaxed);
    }

    /// Latest drain depth of shard `k`.
    pub fn depth(&self, k: usize) -> usize {
        self.depth[k].load(Ordering::Relaxed)
    }

    /// Lifetime write commands settled by shard `k`.
    pub fn writes(&self, k: usize) -> u64 {
        self.writes[k].load(Ordering::Relaxed)
    }

    /// Lifetime cross-shard migrations granted into shard `k`.
    pub fn migrations(&self, k: usize) -> u64 {
        self.migrations[k].load(Ordering::Relaxed)
    }
}

/// Shared coordination state of one sharded daemon.
pub struct Coordinator {
    /// Shard count.
    pub shards: usize,
    /// Cloudlet→shard region assignment, swappable at runtime (admin
    /// topology reload). Readers clone the `Arc` out ([`Self::region_map`])
    /// or index one cloudlet ([`Self::region_of`]); the swap
    /// ([`Self::swap_region_map`]) is validated by the caller first.
    ///
    /// The map only steers *routing* decisions — which shard a pinned
    /// join is forwarded to, which region a rebalance pass targets. The
    /// per-shard capacity ownership masks (`ShardCtx::mine`) are fixed
    /// at boot, and every capacity-mutating path re-checks ownership on
    /// the executing shard, so a concurrent swap can misroute (the
    /// receiving shard forwards or refuses) but never oversubscribe.
    region_of: Mutex<std::sync::Arc<Vec<usize>>>,
    /// Bumped on every successful [`Self::swap_region_map`].
    region_version: AtomicU64,
    /// Next snapshot epoch (monotonic; assigned at dispatch time).
    epoch: AtomicU64,
    /// Epoch of the final drain snapshot set, assigned once by whichever
    /// thread initiates the drain ([`NO_EPOCH`] until then).
    drain_epoch: AtomicU64,
    /// Shards past their last cross-shard send during a drain.
    quiesced: AtomicUsize,
    /// Shards that have not yet written their final drain snapshot.
    unfinished: AtomicUsize,
    /// Set when any shard fails to write its final slice; the last shard
    /// then skips the manifest so the previous complete set stays live.
    drain_failed: std::sync::atomic::AtomicBool,
}

impl Coordinator {
    /// A coordinator for `shards` shards over the given region map.
    pub fn new(shards: usize, region_of: Vec<usize>, epoch0: u64) -> Coordinator {
        Coordinator {
            shards,
            region_of: Mutex::new(std::sync::Arc::new(region_of)),
            region_version: AtomicU64::new(0),
            epoch: AtomicU64::new(epoch0),
            drain_epoch: AtomicU64::new(NO_EPOCH),
            quiesced: AtomicUsize::new(0),
            unfinished: AtomicUsize::new(shards),
            drain_failed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The current cloudlet→shard region map (cheap: one lock + `Arc`
    /// clone). Loops should call this once and index the returned map.
    pub fn region_map(&self) -> std::sync::Arc<Vec<usize>> {
        lock_ok(&self.region_of).clone()
    }

    /// Region (owning shard at boot) of cloudlet `c` under the current
    /// map; unknown cloudlets report region 0 (panic-free, mirroring
    /// [`Router::owner`] clamping).
    pub fn region_of(&self, c: usize) -> usize {
        self.region_map().get(c).copied().unwrap_or(0)
    }

    /// Monotonic version of the region map (0 at boot, +1 per swap).
    pub fn region_version(&self) -> u64 {
        self.region_version.load(Ordering::Acquire)
    }

    /// Installs a new region map and returns the new version. The caller
    /// must have validated `map` (length = cloudlets, every shard
    /// `0..self.shards` non-empty) — see `server::region_map`.
    pub fn swap_region_map(&self, map: Vec<usize>) -> u64 {
        *lock_ok(&self.region_of) = std::sync::Arc::new(map);
        self.region_version.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Allocates the next snapshot epoch.
    pub fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The drain epoch, assigning it on first call (any thread may race;
    /// exactly one allocation wins and everyone sees it).
    pub fn drain_epoch(&self) -> u64 {
        let cur = self.drain_epoch.load(Ordering::Acquire);
        if cur != NO_EPOCH {
            return cur;
        }
        let fresh = self.next_epoch();
        match self.drain_epoch.compare_exchange(
            NO_EPOCH,
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }

    /// Marks the calling shard as quiesced (no further cross-shard sends
    /// will originate from it during the drain).
    pub fn arrive_quiesced(&self) {
        self.quiesced.fetch_add(1, Ordering::AcqRel);
    }

    /// `true` once every shard has quiesced.
    pub fn all_quiesced(&self) -> bool {
        self.quiesced.load(Ordering::Acquire) >= self.shards
    }

    /// Marks the calling shard's final snapshot as written; returns
    /// `true` for the last shard (which writes the manifest).
    pub fn arrive_finished(&self) -> bool {
        self.unfinished.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Records that some shard failed to write its final slice.
    pub fn mark_drain_failed(&self) {
        self.drain_failed.store(true, Ordering::Release);
    }

    /// `true` if any shard failed its final slice (no manifest then).
    pub fn drain_failed(&self) -> bool {
        self.drain_failed.load(Ordering::Acquire)
    }
}

/// What a two-phase coordinated operation does in its apply phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordKind {
    /// Write a consistent multi-shard snapshot set.
    Snapshot,
    /// Rewind every shard to the newest consistent snapshot set.
    Restore,
}

/// One in-flight coordinated snapshot/restore: prepare fan-out, apply
/// fan-out, and the single client reply.
///
/// Shards interact through [`CoordOp::ack_prepare`] /
/// [`CoordOp::ack_apply`]; whichever shard arrives last at each barrier
/// drives the next step (enqueue the apply fan-out; write the manifest
/// and answer the client).
pub struct CoordOp {
    /// Snapshot vs. restore.
    pub kind: CoordKind,
    /// Coordinator epoch stamped on every file of the set (snapshot), or
    /// a dispatch stamp (restore).
    pub epoch: u64,
    /// Number of participating shards (recorded in the manifest).
    pub shards: usize,
    prepare_left: AtomicUsize,
    apply_left: AtomicUsize,
    /// Client reply, taken by the shard that completes the apply phase.
    reply: Mutex<Option<crate::market::Reply>>,
    /// Errors collected across shards; a non-empty set fails the op.
    errors: Mutex<Vec<String>>,
    /// Restored seq, maxed across shards (restore only).
    seq: AtomicU64,
}

impl CoordOp {
    /// A fresh op awaiting `shards` prepare-acks and apply-acks.
    pub fn new(kind: CoordKind, epoch: u64, shards: usize, reply: crate::market::Reply) -> CoordOp {
        CoordOp {
            kind,
            epoch,
            shards,
            prepare_left: AtomicUsize::new(shards),
            apply_left: AtomicUsize::new(shards),
            reply: Mutex::new(Some(reply)),
            errors: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
        }
    }

    /// Acks the prepare phase; `true` for the last shard, which must
    /// enqueue the apply fan-out to every shard.
    pub fn ack_prepare(&self) -> bool {
        self.prepare_left.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Acks the apply phase; `true` for the last shard, which writes the
    /// manifest (snapshot) and answers the client.
    pub fn ack_apply(&self) -> bool {
        self.apply_left.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Records a shard-local failure of this op.
    pub fn push_error(&self, msg: String) {
        lock_ok(&self.errors).push(msg);
    }

    /// Folds a restored shard seq into the op (client sees the max).
    pub fn fold_seq(&self, seq: u64) {
        self.seq.fetch_max(seq, Ordering::AcqRel);
    }

    /// The folded restore seq.
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Takes the accumulated errors (empty means success).
    pub fn take_errors(&self) -> Vec<String> {
        std::mem::take(&mut *lock_ok(&self.errors))
    }

    /// Takes the client reply (present exactly once).
    pub fn take_reply(&self) -> Option<crate::market::Reply> {
        lock_ok(&self.reply).take()
    }
}

/// Coordinated shutdown: every shard acks the drain announcement, then
/// quiesces cross-shard traffic, then finishes independently.
pub struct DrainOp {
    ack_left: AtomicUsize,
    reply: Mutex<Option<crate::market::Reply>>,
}

impl DrainOp {
    /// A drain op awaiting `shards` acks before announcing `Draining`.
    pub fn new(shards: usize, reply: crate::market::Reply) -> DrainOp {
        DrainOp {
            ack_left: AtomicUsize::new(shards),
            reply: Mutex::new(Some(reply)),
        }
    }

    /// Acks the drain; `true` for the last shard, which sends the single
    /// `Draining` response (the event loop stops accepting on it).
    pub fn ack(&self) -> bool {
        self.ack_left.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Takes the client reply.
    pub fn take_reply(&self) -> Option<crate::market::Reply> {
        lock_ok(&self.reply).take()
    }
}

/// Contiguous fallback region map for markets without topology metadata:
/// cloudlet `c` goes to shard `c * shards / cloudlets` (every shard gets
/// a non-empty, contiguous range).
pub fn contiguous_regions(cloudlets: usize, shards: usize) -> Vec<usize> {
    assert!(
        shards > 0 && shards <= cloudlets,
        "need 1..=cloudlets shards"
    );
    (0..cloudlets).map(|c| c * shards / cloudlets).collect()
}

/// Path of shard `k`'s slice in the epoch-`epoch` snapshot set.
pub fn shard_snapshot_path(base: &Path, epoch: u64, k: usize) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".e{epoch}.s{k}"));
    PathBuf::from(os)
}

/// A parsed snapshot-set manifest: the epoch and shard count of the
/// newest complete set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Epoch of the set the manifest points at.
    pub epoch: u64,
    /// Number of shard files in the set.
    pub shards: usize,
}

/// Encodes a manifest as one JSON line.
pub fn encode_manifest(m: &Manifest) -> String {
    format!(
        "{{\"type\":\"mec-manifest\",\"epoch\":{},\"shards\":{}}}\n",
        m.epoch, m.shards
    )
}

/// Parses manifest text; `None` if it is not a manifest (e.g. a plain
/// whole-market snapshot lives at the same path in 1-shard deployments).
pub fn parse_manifest(text: &str) -> Option<Manifest> {
    let first = text.lines().next()?;
    let fields = json::parse_object(first).ok()?;
    if json::get_str(&fields, "type").ok()? != "mec-manifest" {
        return None;
    }
    let epoch = json::get_u64(&fields, "epoch").ok()?;
    let shards = json::get_usize(&fields, "shards").ok()?;
    (shards > 0).then_some(Manifest { epoch, shards })
}

/// Atomically writes the manifest at `base` (tmp + fsync + rename, the
/// same discipline as the snapshot files it points at), then garbage
/// collects shard files from older epochs.
///
/// # Errors
///
/// Returns the I/O error if the write fails; GC failures are ignored
/// (stale files are harmless, the manifest is authoritative).
pub fn write_manifest(base: &Path, m: &Manifest) -> std::io::Result<()> {
    use std::io::Write;
    let mut tmp = base.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(encode_manifest(m).as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, base)?;
    gc_older_epochs(base, m.epoch);
    Ok(())
}

/// Removes `<base>.e<E>.s<k>` files with `E < keep_epoch`.
fn gc_older_epochs(base: &Path, keep_epoch: u64) {
    let Some(dir) = base.parent() else { return };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let Some(stem) = base.file_name().and_then(|s| s.to_str()) else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(stem).and_then(|r| r.strip_prefix(".e")) else {
            continue;
        };
        // `<epoch>.s<k>` — parse the epoch, ignore anything else.
        let Some((epoch, _)) = rest.split_once(".s") else {
            continue;
        };
        if epoch.parse::<u64>().is_ok_and(|e| e < keep_epoch) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_homes_and_reassigns() {
        let r = Router::new(10, 4);
        assert_eq!(r.len(), 10);
        assert_eq!(r.owner(6), 2);
        assert_eq!(r.owner(999), 0, "unknown providers route to shard 0");
        r.set_owner(6, 3);
        assert_eq!(r.owner(6), 3);
        r.set_owner(999, 1); // out of range: ignored, not a panic
    }

    #[test]
    fn contiguous_regions_are_nonempty_and_ordered() {
        for (m, s) in [(10, 4), (7, 3), (4, 4), (40, 2)] {
            let r = contiguous_regions(m, s);
            assert_eq!(r.len(), m);
            assert!(r.windows(2).all(|w| w[0] <= w[1]));
            for k in 0..s {
                assert!(r.contains(&k), "shard {k} of {s} over {m} cloudlets empty");
            }
        }
    }

    #[test]
    fn manifest_round_trip_and_plain_snapshot_rejection() {
        let m = Manifest {
            epoch: 12,
            shards: 4,
        };
        assert_eq!(parse_manifest(&encode_manifest(&m)), Some(m));
        assert_eq!(
            parse_manifest("{\"type\":\"mec-snapshot\",\"version\":1}"),
            None
        );
        assert_eq!(parse_manifest(""), None);
        assert_eq!(
            parse_manifest("{\"type\":\"mec-manifest\",\"epoch\":1,\"shards\":0}"),
            None
        );
    }

    #[test]
    fn manifest_write_gcs_older_epochs_only() {
        let dir = std::env::temp_dir().join(format!("mec-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("state.snap");
        for (e, k) in [(1u64, 0usize), (1, 1), (2, 0), (2, 1)] {
            std::fs::write(shard_snapshot_path(&base, e, k), "x").unwrap();
        }
        write_manifest(
            &base,
            &Manifest {
                epoch: 2,
                shards: 2,
            },
        )
        .unwrap();
        assert!(!shard_snapshot_path(&base, 1, 0).exists());
        assert!(!shard_snapshot_path(&base, 1, 1).exists());
        assert!(shard_snapshot_path(&base, 2, 0).exists());
        assert!(shard_snapshot_path(&base, 2, 1).exists());
        assert_eq!(
            parse_manifest(&std::fs::read_to_string(&base).unwrap()),
            Some(Manifest {
                epoch: 2,
                shards: 2
            })
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coord_op_barriers_fire_exactly_once() {
        let (tx, _rx) = crate::chan::oneshot();
        let op = CoordOp::new(CoordKind::Snapshot, 3, 3, tx.into());
        assert!(!op.ack_prepare());
        assert!(!op.ack_prepare());
        assert!(op.ack_prepare(), "third ack completes the barrier");
        assert!(!op.ack_apply());
        assert!(!op.ack_apply());
        assert!(op.ack_apply());
        assert!(op.take_reply().is_some());
        assert!(op.take_reply().is_none(), "reply is taken exactly once");
    }

    #[test]
    fn region_map_swaps_bump_version_and_reroute() {
        let c = Coordinator::new(2, vec![0, 1], 0);
        assert_eq!(c.region_version(), 0);
        assert_eq!(c.region_of(0), 0);
        assert_eq!(c.region_of(1), 1);
        assert_eq!(c.region_of(99), 0, "unknown cloudlets clamp to region 0");
        assert_eq!(c.swap_region_map(vec![1, 0]), 1);
        assert_eq!(c.region_version(), 1);
        assert_eq!(c.region_of(0), 1);
        assert_eq!(*c.region_map(), vec![1, 0]);
    }

    #[test]
    fn gauges_track_migrations_per_shard() {
        let g = ShardGauges::new(2);
        assert_eq!(g.migrations(0), 0);
        g.add_migrations(1, 2);
        g.add_migrations(1, 1);
        assert_eq!(g.migrations(1), 3);
        assert_eq!(g.migrations(0), 0);
    }

    #[test]
    fn drain_epoch_is_assigned_once() {
        let c = Coordinator::new(2, vec![0, 1], 5);
        let e = c.drain_epoch();
        assert_eq!(e, 6);
        assert_eq!(c.drain_epoch(), e, "second caller sees the same epoch");
        assert!(c.next_epoch() > e);
    }
}

/// Interleaving model of the two-phase cross-shard migration handoff
/// (`--features loom-model`; the TSan CI cell watches the same test for
/// data races).
///
/// The safety argument under test is the one in the module docs: the
/// target shard is the *single writer* for its region's capacity, and a
/// reservation granted at reserve time is debited on the target's own
/// thread — so a join admitted between the grant and the commit can
/// never oversubscribe the cloudlet. The model races a migrating source
/// shard (reserve → await grant → commit) against a client admission
/// stream into a capacity-1 cloudlet, over the real [`crate::chan`]
/// queues (whose `fuzz()` points give each iteration a different
/// delivery interleaving), and asserts `placed + reserved <= capacity`
/// after every command the target settles.
#[cfg(all(test, feature = "loom-model"))]
mod loom_model_tests {
    use crate::chan;
    use std::time::Duration;

    /// Messages of the modelled protocol, one queue per shard — a
    /// stripped-down `Command` with only the capacity-relevant variants.
    #[derive(Debug)]
    enum Msg {
        /// Source shard asks the target to reserve the provider's demand.
        Reserve { provider: usize },
        /// A client join routed straight to the target (Eq. 4–5
        /// admission against residual capacity *including* reservations).
        Join { provider: usize },
        /// Source commits the granted handoff; the reservation converts
        /// into a placement.
        Commit { provider: usize },
    }

    #[test]
    fn loom_model_handoff_never_oversubscribes() {
        loom::model(|| {
            const CAP: usize = 1;
            let (target_tx, target_rx) = chan::bounded::<Msg>(4);
            let (grant_tx, grant_rx) = chan::bounded::<bool>(1);

            // Source shard: reserve, await the grant, commit if granted.
            // (Abort sends nothing capacity-relevant, so the model omits
            // it — the reservation is dropped by the target on grant
            // denial, which the target models locally.)
            let src_tx = target_tx.clone();
            // Model thread stands in for the source shard thread.
            // lint: allow(thread-spawn)
            let source = loom::thread::spawn(move || {
                loom::fuzz_yield();
                src_tx.send(Msg::Reserve { provider: 0 }).unwrap();
                let mut buf = Vec::new();
                grant_rx
                    .recv_batch(&mut buf, 1, Some(Duration::from_secs(5)))
                    .expect("grant must arrive");
                let granted = buf[0];
                if granted {
                    loom::fuzz_yield();
                    src_tx.send(Msg::Commit { provider: 0 }).unwrap();
                }
                granted
            });

            // Client: one concurrent join racing the reserve for the
            // last capacity slot.
            // lint: allow(thread-spawn)
            let client = loom::thread::spawn(move || {
                loom::fuzz_yield();
                target_tx.send(Msg::Join { provider: 1 }).unwrap();
            });

            // Target shard thread: the single writer for the cloudlet.
            let mut placed: Vec<usize> = Vec::new();
            let mut reserved: Vec<usize> = Vec::new();
            let mut admitted = 0usize;
            let mut granted_at_target = None;
            let mut buf = Vec::new();
            // Expected messages: Reserve + Join, plus Commit iff granted.
            let mut expect = 2usize;
            let mut seen = 0usize;
            while seen < expect {
                let (n, _depth) = target_rx
                    .recv_batch(&mut buf, 4, Some(Duration::from_secs(5)))
                    .expect("all protocol messages must arrive");
                seen += n;
                for msg in buf.drain(..) {
                    match msg {
                        Msg::Reserve { provider } => {
                            let free = CAP - placed.len() - reserved.len();
                            let ok = free >= 1;
                            if ok {
                                reserved.push(provider);
                                expect += 1; // the commit is now coming
                            }
                            granted_at_target = Some(ok);
                            grant_tx.send(ok).unwrap();
                        }
                        Msg::Join { provider } => {
                            // Admission counts reservations as used
                            // capacity — the invariant under test.
                            if CAP - placed.len() - reserved.len() >= 1 {
                                placed.push(provider);
                                admitted += 1;
                            }
                        }
                        Msg::Commit { provider } => {
                            reserved.retain(|p| *p != provider);
                            placed.push(provider);
                        }
                    }
                    assert!(
                        placed.len() + reserved.len() <= CAP,
                        "cloudlet oversubscribed: {} placed + {} reserved > {CAP}",
                        placed.len(),
                        reserved.len()
                    );
                }
            }

            let granted = source.join().unwrap();
            client.join().unwrap();
            assert_eq!(Some(granted), granted_at_target);
            assert!(reserved.is_empty(), "no reservation may outlive the run");
            assert_eq!(placed.len(), CAP, "the single slot ends occupied");
            // Exactly one contender wins the slot, whichever arrived
            // first at the single writer.
            assert!(
                (granted && admitted == 0 && placed == [0])
                    || (!granted && admitted == 1 && placed == [1]),
                "inconsistent outcome: granted={granted} admitted={admitted} placed={placed:?}"
            );
        });
    }
}
