//! `marketload` — load generator for the `mec-serve` daemon.
//!
//! ```text
//! marketload <addr> [flags]        drive an already-running daemon
//! marketload --smoke [flags]       boot an in-process daemon on an
//!                                  ephemeral port, drive it, drain it
//! marketload --direct [flags]      socket-free data-plane drain bench:
//!                                  feed a seeded churn stream straight
//!                                  into the shard queues and time the
//!                                  drain (the CI shard-scaling gate)
//! marketload --direct --scenario K replay a generated dynamic-popularity
//!                                  trace (K = diurnal|flash|drift) against
//!                                  one live writer and report hit rate /
//!                                  re-caches (the CI scenario smoke cell)
//!
//! flags:
//!   --sessions N    concurrent sessions           (default 8)
//!   --epochs N      churn epochs per session      (default 20)
//!   --queries N     queries per session per epoch (default 4)
//!   --seed S        base RNG seed                 (default 1)
//!   --out PATH      write the JSON report here    (default BENCH_serve.json;
//!                   debug and --obs runs divert to BENCH_serve.local.json —
//!                   the checked-in artifact records release timings only)
//!   --obs PATH      capture an observability trace (needs --features obs)
//!   --providers N   provider universe, smoke only (default 100)
//!   --size N        network size, smoke only      (default 100)
//!   --snapshot P    daemon snapshot file, smoke only
//!   --shards N      market shards, smoke/direct   (default 1); regions
//!                   derive from the scenario topology
//!   --commands N    churn commands, direct only   (default 100000)
//!   --scenario K    direct only: replay trace K (diurnal|flash|drift)
//!                   instead of the churn drain; --epochs and --queries
//!                   become trace epochs / requests per epoch
//!   --admin-port P  HTTP admin surface, smoke only (default off; 0 with
//!                   --scrape picks an ephemeral port)
//!   --scrape        scrape GET /metrics at 1 Hz during the smoke load and
//!                   report how many scrapes returned well-formed
//!                   Prometheus text (implies an admin listener)
//! ```
//!
//! In `--smoke` mode the exit code reflects the full acceptance check:
//! non-zero if any session hit a transport error, any drained-placement
//! certificate failed (with `--features verify`), or the final state was
//! not an equilibrium of the active providers.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::exit;

use mec_serve::{
    drain_bench, run_load, run_scenario, serve, Client, DrainConfig, LoadConfig, ScenarioConfig,
    ServerConfig,
};
use mec_workload::{gtitm_scenario, Params};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid {name} '{raw}' (expected a number)");
            exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let direct = args.iter().any(|a| a == "--direct");
    let addr = args.first().filter(|a| !a.starts_with("--")).cloned();
    if addr.is_none() && !smoke && !direct {
        eprintln!("usage: marketload <addr|--smoke|--direct> [--sessions N] [--epochs N]");
        eprintln!("                  [--seed S] [--out PATH] [--obs PATH] [--providers N]");
        eprintln!("                  [--size N] [--snapshot PATH] [--shards N] [--commands N]");
        exit(2);
    }
    if direct {
        exit(run_direct(&args));
    }
    let defaults = LoadConfig::default();
    let cfg = LoadConfig {
        sessions: parse_flag(&args, "--sessions", 8),
        epochs: parse_flag(&args, "--epochs", 20),
        queries_per_epoch: parse_flag(&args, "--queries", defaults.queries_per_epoch),
        seed: parse_flag(&args, "--seed", 1),
        ..defaults
    };
    let mut out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let obs_trace = flag_value(&args, "--obs");
    // BENCH_serve.json is a release-timing artifact; debug builds and
    // armed obs probes both sit inside the timed request loops, so such
    // runs must not overwrite it (same guard as sweepbench).
    if out_path == "BENCH_serve.json" && (cfg!(debug_assertions) || obs_trace.is_some()) {
        eprintln!(
            "note: debug/--obs run; writing BENCH_serve.local.json instead of BENCH_serve.json"
        );
        out_path = "BENCH_serve.local.json".to_string();
    }
    if let Some(trace) = obs_trace {
        if let Err(e) = mec_obs::install_file(std::path::Path::new(&trace)) {
            eprintln!("cannot open obs trace {trace}: {e}");
            exit(1);
        }
    }

    let status = if smoke {
        run_smoke(&args, &cfg, &out_path)
    } else {
        run_remote(&addr.unwrap_or_default(), &cfg, &out_path)
    };
    mec_obs::flush();
    exit(status);
}

/// The socket-free data-plane drain bench (see `mec_serve::drain`):
/// writes the flat JSON row the `cargo xtask tailgate scale` gate
/// compares across shard counts.
fn run_direct(args: &[String]) -> i32 {
    if let Some(kind) = flag_value(args, "--scenario") {
        return run_scenario_mode(args, &kind);
    }
    let providers: usize = parse_flag(args, "--providers", 2000);
    let size: usize = parse_flag(args, "--size", 2000);
    let seed: u64 = parse_flag(args, "--seed", 1);
    let scenario = gtitm_scenario(size, &Params::paper().with_providers(providers), seed);
    let cloudlets = scenario.generated.market.cloudlet_count();
    let shards: usize = parse_flag(args, "--shards", 1).clamp(1, cloudlets.max(1));
    let regions = (shards > 1).then(|| scenario.net.regions(shards));
    let cfg = DrainConfig {
        shards,
        commands: parse_flag(args, "--commands", 100_000),
        seed,
        ..DrainConfig::default()
    };
    let report = match drain_bench(scenario.generated.market, regions, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("drain bench failed: {e}");
            return 1;
        }
    };
    println!(
        "{} commands drained in {:.3}s  ({:.0} write ops/s, {} shard{}, {} epochs, {} moves)",
        report.commands,
        report.elapsed.as_secs_f64(),
        report.write_ops_per_sec(),
        report.shards,
        if report.shards == 1 { "" } else { "s" },
        report.epochs,
        report.moves,
    );
    let out_path =
        flag_value(args, "--out").unwrap_or_else(|| format!("BENCH_drain_{shards}.local.json"));
    if let Err(e) = std::fs::write(&out_path, format!("{}\n", report.to_json())) {
        eprintln!("cannot write {out_path}: {e}");
        return 1;
    }
    println!("report written to {out_path}");
    let mut status = 0;
    if !report.equilibrium {
        eprintln!("FAIL: drained placement is not an active-player equilibrium");
        status = 1;
    }
    for v in &report.violations {
        eprintln!("FAIL: certificate violation: {v}");
        status = 1;
    }
    status
}

/// Replays one generated dynamic-popularity trace against a single live
/// writer thread (socket-free, like the drain bench) and prints the
/// [`mec_serve::ScenarioReport`]. The CI scenario smoke cell runs this
/// with a short flash trace; exit status reflects the drain certificate.
fn run_scenario_mode(args: &[String], kind: &str) -> i32 {
    let label = match kind {
        "diurnal" => "zipf_diurnal",
        "flash" => "flash_crowd",
        "drift" => "popularity_drift",
        other => {
            eprintln!("unknown --scenario '{other}' (expected diurnal|flash|drift)");
            return 2;
        }
    };
    let providers: usize = parse_flag(args, "--providers", 40);
    let size: usize = parse_flag(args, "--size", 100);
    let seed: u64 = parse_flag(args, "--seed", 42);
    let epochs: usize = parse_flag(args, "--epochs", 12);
    let requests: usize = parse_flag(args, "--queries", 80);
    let trace = mec_scenario::standard_traces(providers, epochs, requests, seed)
        .into_iter()
        .find(|t| t.label == label)
        .expect("standard trace set always contains every kind"); // lint: allow(panics)
    let market = gtitm_scenario(size, &Params::paper().with_providers(providers), seed)
        .generated
        .market;
    let report = run_scenario(market, &trace, &ScenarioConfig::default());
    println!(
        "{}: {} requests over {} epochs  hit rate {:.3}  ({} re-caches, \
         {} joins, {} rejected, {} leaves, social cost {:.3})",
        report.label,
        report.requests,
        report.epochs,
        report.hit_rate(),
        report.recaches,
        report.joins,
        report.rejected,
        report.leaves,
        report.final_social_cost,
    );
    let mut status = 0;
    if !report.equilibrium {
        eprintln!("FAIL: trace drained off-equilibrium");
        status = 1;
    }
    for v in &report.violations {
        eprintln!("FAIL: certificate violation: {v}");
        status = 1;
    }
    if report.requests > 0 && report.hits == 0 {
        eprintln!("FAIL: no request was ever served from cache");
        status = 1;
    }
    status
}

/// Drives an external daemon (never shuts it down).
fn run_remote(addr: &str, cfg: &LoadConfig, out_path: &str) -> i32 {
    let providers = match Client::connect(addr).and_then(|mut c| c.stats()) {
        Ok(stats) => stats.providers,
        Err(e) => {
            eprintln!("cannot reach daemon at {addr}: {e}");
            return 1;
        }
    };
    match run_load(addr, providers, cfg) {
        Ok(report) => finish(&report, out_path, false),
        Err(e) => {
            eprintln!("load run failed: {e}");
            1
        }
    }
}

/// Boots an in-process daemon on an ephemeral port, drives it, drains it,
/// and checks the drain certificates.
fn run_smoke(args: &[String], cfg: &LoadConfig, out_path: &str) -> i32 {
    let providers: usize = parse_flag(args, "--providers", 100);
    let size: usize = parse_flag(args, "--size", 100);
    let scenario = gtitm_scenario(size, &Params::paper().with_providers(providers), cfg.seed);
    let cloudlets = scenario.generated.market.cloudlet_count();
    let shards: usize = parse_flag(args, "--shards", 1).clamp(1, cloudlets.max(1));
    // Spatial regions from the scenario topology: the same proximity
    // clusters the paper's cloudlet placement implies, so cross-shard
    // traffic maps to genuinely distant cloudlets.
    let regions = (shards > 1).then(|| scenario.net.regions(shards));
    let admin_port: u16 = parse_flag(args, "--admin-port", 0);
    let scrape = args.iter().any(|a| a == "--scrape");
    let server_cfg = ServerConfig {
        snapshot_path: flag_value(args, "--snapshot").map(PathBuf::from),
        shards,
        regions,
        admin_addr: (admin_port != 0 || scrape).then(|| format!("127.0.0.1:{admin_port}")),
        ..ServerConfig::default()
    };
    let handle = match serve(scenario.generated.market, &server_cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot boot daemon: {e}");
            return 1;
        }
    };
    let addr = handle.addr().to_string();
    println!(
        "smoke daemon on {addr} ({providers} providers, size-{size} network, {shards} shard{})",
        if shards == 1 { "" } else { "s" }
    );
    if let Some(admin) = handle.admin_addr() {
        println!("admin surface on http://{admin}");
    }
    let scraper = match (scrape, handle.admin_addr()) {
        (true, Some(admin)) => Some(spawn_scraper(admin)),
        _ => None,
    };

    let load_result = run_load(&addr, providers, cfg);
    let scrape_status = scraper.map_or(0, Scraper::finish);
    let report = match load_result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load run failed: {e}");
            // Still drain the daemon so the process exits cleanly.
            let _ = Client::connect(&addr).and_then(|mut c| c.shutdown());
            let _ = handle.join();
            return 1;
        }
    };
    if let Err(e) = Client::connect(&addr).and_then(|mut c| c.shutdown()) {
        eprintln!("shutdown request failed: {e}");
        return 1;
    }
    let outcome = handle.join();
    let mut status = finish(&report, out_path, true).max(scrape_status);
    println!(
        "drained at seq {} after {} epochs / {} moves (equilibrium: {})",
        outcome.seq, outcome.epochs, outcome.moves, outcome.equilibrium
    );
    if !outcome.equilibrium {
        eprintln!("FAIL: drained placement is not an active-player equilibrium");
        status = 1;
    }
    for v in &outcome.violations {
        eprintln!("FAIL: certificate violation: {v}");
        status = 1;
    }
    status
}

/// A 1 Hz `GET /metrics` scraper running alongside the smoke load — the
/// realistic Prometheus-attached deployment the admin surface is sized
/// for (and the setup `EXPERIMENTS.md` uses to bound scrape overhead).
struct Scraper {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    thread: std::thread::JoinHandle<(u64, u64)>,
}

/// Starts the scraper against the daemon's admin address.
fn spawn_scraper(admin: std::net::SocketAddr) -> Scraper {
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let stop_t = stop.clone();
    // Joined via Scraper::finish before the smoke run reports.
    // lint: allow(thread-spawn)
    let thread = std::thread::spawn(move || {
        let target = admin.to_string();
        let mut attempts = 0u64;
        let mut ok = 0u64;
        loop {
            attempts += 1;
            if scrape_metrics(&target) {
                ok += 1;
            }
            // 1 Hz, slept in slices so the stop lands promptly.
            for _ in 0..20 {
                if stop_t.load(Ordering::SeqCst) {
                    return (attempts, ok);
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    });
    Scraper { stop, thread }
}

impl Scraper {
    /// Stops the loop and reports; non-zero when any scrape came back
    /// malformed (connection refused, non-200, or no `# TYPE` line).
    fn finish(self) -> i32 {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let Ok((attempts, ok)) = self.thread.join() else {
            eprintln!("FAIL: metrics scraper thread panicked");
            return 1;
        };
        println!("scraped /metrics {attempts} times ({ok} well-formed)");
        if ok < attempts {
            eprintln!("FAIL: {} malformed /metrics responses", attempts - ok);
            return 1;
        }
        0
    }
}

/// One `GET /metrics` round trip; true when the reply is a 200 carrying
/// at least one Prometheus `# TYPE` line.
fn scrape_metrics(admin: &str) -> bool {
    use std::io::{Read, Write};
    let Ok(mut s) = std::net::TcpStream::connect(admin) else {
        return false;
    };
    let req = format!("GET /metrics HTTP/1.1\r\nHost: {admin}\r\nConnection: close\r\n\r\n");
    if s.write_all(req.as_bytes()).is_err() {
        return false;
    }
    let mut reply = String::new();
    if s.read_to_string(&mut reply).is_err() {
        return false;
    }
    reply.starts_with("HTTP/1.1 200") && reply.contains("\n# TYPE ")
}

/// Prints the human summary, writes the JSON report, and applies the
/// error-count gate in smoke mode.
fn finish(report: &mec_serve::LoadReport, out_path: &str, smoke: bool) -> i32 {
    println!(
        "{} ops in {:.3}s  ({:.0} ops/s blended, {:.0} write ops/s), {} rejected",
        report.ops(),
        report.elapsed.as_secs_f64(),
        report.ops_per_sec(),
        report.write_ops_per_sec(),
        report.rejected
    );
    for (name, op) in [
        ("join", &report.join),
        ("leave", &report.leave),
        ("update", &report.update),
        ("query", &report.query),
    ] {
        println!(
            "  {name:<7} n={:<6} p50={}us p95={}us p99={}us max={}us p99/p50={:.1} errors={}",
            op.latency.count(),
            op.latency.percentile(0.50) / 1_000,
            op.latency.percentile(0.95) / 1_000,
            op.latency.percentile(0.99) / 1_000,
            op.latency.max() / 1_000,
            op.tail_ratio(),
            op.errors
        );
    }
    if let Err(e) = std::fs::write(out_path, format!("{}\n", report.to_json())) {
        eprintln!("cannot write {out_path}: {e}");
        return 1;
    }
    println!("report written to {out_path}");
    let errors =
        report.join.errors + report.leave.errors + report.update.errors + report.query.errors;
    if smoke && errors > 0 {
        eprintln!("FAIL: {errors} protocol errors during smoke run");
        return 1;
    }
    0
}
