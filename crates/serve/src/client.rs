//! A blocking client for the daemon's wire protocol.
//!
//! One [`Client`] wraps one TCP connection. [`Client::request`] issues
//! one request and blocks for its response; [`Client::pipeline`] sends a
//! whole batch in a single write and reads the responses back in order —
//! the daemon's event loop serializes responses in request order, so
//! pipelining is safe and amortizes both syscalls and the round trip
//! over the batch. Protocol-level failures (`{"ok":0,...}`) come back as
//! [`Response::Error`] values, not `Err` — only transport problems are
//! `std::io::Error`.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::proto::{self, Request, Response, StatsReport};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sets a read timeout so a wedged daemon cannot hang the client.
    ///
    /// # Errors
    ///
    /// Propagates setsockopt failures.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Errors on transport failure, an unparseable reply, or the server
    /// closing the connection without replying.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        proto::write_frame(&mut self.writer, &proto::encode_request(req))?;
        let payload = proto::read_frame(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })?;
        proto::parse_response(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Sends every request in one write, then reads the responses back
    /// in order. Returns each response paired with its latency measured
    /// from the start of the batch write — the pipelined analogue of a
    /// per-op round-trip time.
    ///
    /// # Errors
    ///
    /// Errors on transport failure, an unparseable reply, or the server
    /// closing the connection before every response arrived.
    pub fn pipeline(&mut self, reqs: &[Request]) -> std::io::Result<Vec<(Response, Duration)>> {
        let mut frames = Vec::new();
        for req in reqs {
            proto::push_frame(&mut frames, &proto::encode_request(req));
        }
        let started = Instant::now();
        self.writer.write_all(&frames)?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            let payload = proto::read_frame(&mut self.reader)?.ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-pipeline",
                )
            })?;
            let resp = proto::parse_response(&payload)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.push((resp, started.elapsed()));
        }
        Ok(out)
    }

    /// `join`: request admission (daemon picks the cloudlet).
    ///
    /// # Errors
    ///
    /// Transport errors only; rejections are [`Response::Rejected`].
    pub fn join(&mut self, provider: usize) -> std::io::Result<Response> {
        self.request(&Request::Join {
            provider,
            cloudlet: None,
        })
    }

    /// `join` at a specific cloudlet.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn join_at(&mut self, provider: usize, cloudlet: usize) -> std::io::Result<Response> {
        self.request(&Request::Join {
            provider,
            cloudlet: Some(cloudlet),
        })
    }

    /// `leave`.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn leave(&mut self, provider: usize) -> std::io::Result<Response> {
        self.request(&Request::Leave { provider })
    }

    /// `update`: replace the provider's demand vector.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn update(
        &mut self,
        provider: usize,
        compute: f64,
        bandwidth: f64,
    ) -> std::io::Result<Response> {
        self.request(&Request::UpdateDemand {
            provider,
            compute,
            bandwidth,
        })
    }

    /// `query`: the provider's current placement.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn query(&mut self, provider: usize) -> std::io::Result<Response> {
        self.request(&Request::Query { provider })
    }

    /// `stats`, decoded into a [`StatsReport`].
    ///
    /// # Errors
    ///
    /// Transport errors, plus `InvalidData` if the server answers with
    /// anything but a stats record.
    pub fn stats(&mut self) -> std::io::Result<StatsReport> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected stats, got {other:?}"),
            )),
        }
    }

    /// Admin `snapshot`.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn snapshot(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Snapshot)
    }

    /// Admin `restore`.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn restore(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Restore)
    }

    /// Admin `shutdown`: begins the graceful drain.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Shutdown)
    }
}
