//! HTTP/1.1 admin surface: live metrics and market inspection.
//!
//! A daemon booted with an admin address ([`crate::ServerConfig::admin_addr`])
//! runs one extra thread serving a hand-rolled, std-only HTTP/1.1
//! listener — no new dependencies, the same discipline as the JSONL
//! wire protocol in [`crate::proto`]. Endpoints (see `PROTOCOL.md` for
//! example requests/responses):
//!
//! * `GET /metrics` — every registered `mec-obs` counter and histogram
//!   in Prometheus exposition format ([`mec_obs::prom::render`] over a
//!   live [`mec_obs::summary`] snapshot: one registry lock, bounded
//!   clones). Per-shard publish series carry `shard="k"` labels plus an
//!   exactly merged aggregate. Builds without `--features obs` export
//!   the registered inventory pinned at zero.
//! * `GET /placement` — the admitted providers' placements, costs and
//!   owning shards, read lock-free from the arc-swapped per-shard
//!   [`crate::view::MarketView`]s (the same source the `query`/`stats`
//!   verbs answer from; `seq` is the shard-summed stats seq).
//! * `GET /placement/<provider-id>` — one provider's drill-down:
//!   assignment, cost, demand vector, observed request-rate EWMA, and
//!   the residual capacity of its cloudlet (when cached). `400` for a
//!   non-numeric id, `404` for an id outside the booted universe.
//! * `POST /reset/histograms` — clear every `mec-obs` latency histogram
//!   (counters stay monotonic, Prometheus-safe) so operators can
//!   re-baseline tails after a deploy or an incident; answers with how
//!   many were dropped.
//! * `GET /residuals` — Eq. 4–5 residual capacities and congestion per
//!   cloudlet, each read from its owning shard's published view.
//! * `GET /shards` — per-shard queue depth, settled writes, published
//!   seq, and cross-shard migration counts from [`crate::shard::ShardGauges`].
//! * `POST /reload/topology` — swap the cloudlet→shard region map used
//!   for pinned-join forwarding and rebalance targeting. The body is
//!   whitespace/comma-separated shard indices, one per cloudlet, and is
//!   validated (every cloudlet mapped, every shard non-empty, no shard
//!   out of range) *before* the swap; an invalid body changes nothing.
//!   Capacity ownership is fixed at boot, so a reload can re-steer
//!   routing but never oversubscribe — joins pinned to a cloudlet whose
//!   map entry disagrees with its boot owner are refused cleanly.
//!
//! The listener is deliberately sequential: admin traffic is one
//! scraper, not a fleet. Robustness against a wedged or malicious
//! client comes from hard caps ([`MAX_HEADER`], [`MAX_BODY`]) and
//! per-connection read/write timeouts (`IO_TIMEOUT`, 2 s) — a stalled
//! request costs at most one timeout, never a stuck thread — and every
//! response closes the connection (`Connection: close`).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mec_core::Placement;

use crate::shard::{Coordinator, Router, ShardGauges};
use crate::view::SharedView;

/// Hard cap on the request line + headers.
pub const MAX_HEADER: usize = 8 * 1024;
/// Hard cap on a request body (the topology map), matching the wire
/// protocol's frame cap.
pub const MAX_BODY: usize = 1 << 20;
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Accept-poll interval while idle (bounds shutdown latency).
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Read-only daemon state shared with the admin thread.
pub struct AdminShared {
    /// Published per-shard views (lock-free reads, same as the data path).
    pub views: Vec<Arc<SharedView>>,
    /// Provider→shard ownership map.
    pub router: Arc<Router>,
    /// Per-shard depth/write/migration gauges.
    pub gauges: Arc<ShardGauges>,
    /// Region map + epochs (the reload endpoint swaps the map here).
    pub coord: Arc<Coordinator>,
    /// Daemon stop flag; the admin loop exits when it flips.
    pub stop: Arc<AtomicBool>,
    /// Cloudlet count of the booted market (validates reload bodies).
    pub cloudlets: usize,
    /// Provider count of the booted market.
    pub providers: usize,
}

/// Binds the admin listener. Separate from [`spawn_admin`] so boot can
/// fail fast on a bad address before any thread starts.
pub fn bind_admin(addr: &str) -> std::io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    Ok((listener, local))
}

/// Spawns the admin thread: a sequential accept loop that polls the
/// daemon stop flag between accepts.
pub fn spawn_admin(listener: TcpListener, shared: Arc<AdminShared>) -> JoinHandle<()> {
    // One long-lived service thread joined through the ServerHandle,
    // like the acceptor. lint: allow(thread-spawn)
    std::thread::spawn(move || admin_loop(&listener, &shared))
}

fn admin_loop(listener: &TcpListener, shared: &AdminShared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept error (EMFILE, aborted handshake):
                // back off and keep serving.
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// One request per connection, then close. Any parse failure answers
/// with the matching 4xx; any I/O failure just drops the socket.
fn handle_connection(stream: TcpStream, shared: &AdminShared) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let request = read_request(&mut stream);
    let rejected = request.is_err();
    let (status, content_type, body) = match request {
        Ok(req) => dispatch(&req, shared),
        Err(e) => (e.status(), "application/json", e.body()),
    };
    write_response(&mut stream, status, content_type, &body);
    if rejected {
        // A rejected request can leave unread bytes in the socket;
        // closing on top of them makes the kernel RST the connection,
        // which can destroy the error reply before the client reads it.
        // Briefly drain so the 4xx survives the close.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 1024];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// A parsed admin request.
struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Why a request could not be served; maps onto an HTTP status.
enum HttpError {
    /// Not parseable as HTTP/1.x.
    Malformed(&'static str),
    /// Request line + headers exceed [`MAX_HEADER`].
    HeaderTooLarge,
    /// Declared body exceeds [`MAX_BODY`].
    BodyTooLarge,
    /// Socket error / timeout mid-request.
    Io,
}

impl HttpError {
    fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::HeaderTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::Io => 408,
        }
    }

    fn body(&self) -> String {
        let msg = match self {
            HttpError::Malformed(m) => m,
            HttpError::HeaderTooLarge => "request head exceeds cap",
            HttpError::BodyTooLarge => "request body exceeds cap",
            HttpError::Io => "request timed out",
        };
        format!("{{\"ok\":false,\"error\":\"{msg}\"}}\n")
    }
}

/// Reads one HTTP/1.x request with hard caps on head and body size.
fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() >= MAX_HEADER {
            return Err(HttpError::HeaderTooLarge);
        }
        let n = stream.read(&mut chunk).map_err(|_| HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("truncated request head"));
        }
        // Bounded by the MAX_HEADER check above (and MAX_BODY below once
        // the head is complete). lint: allow(growth)
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => (m, p, v),
        _ => return Err(HttpError::Malformed("bad request line")),
    };
    let _ = version;
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(|_| HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("truncated request body"));
        }
        // Bounded by content_length, itself capped at MAX_BODY above.
        // lint: allow(growth)
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// Index of `\r\n\r\n` terminating the request head, if complete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Routes a parsed request to its endpoint.
fn dispatch(req: &HttpRequest, shared: &AdminShared) -> (u16, &'static str, String) {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/metrics") => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            mec_obs::prom::render(&mec_obs::summary()),
        ),
        ("GET", "/placement") => (200, "application/json", placement_json(shared)),
        ("GET", p) if p.starts_with("/placement/") => {
            placement_detail(&p["/placement/".len()..], shared)
        }
        ("GET", "/residuals") => (200, "application/json", residuals_json(shared)),
        ("GET", "/shards") => (200, "application/json", shards_json(shared)),
        ("POST", "/reload/topology") => reload_topology(&req.body, shared),
        ("POST", "/reset/histograms") => {
            let cleared = mec_obs::reset_histograms();
            (
                200,
                "application/json",
                format!("{{\"ok\":true,\"cleared\":{cleared}}}\n"),
            )
        }
        ("GET", _) => (
            404,
            "application/json",
            "{\"ok\":false,\"error\":\"no such endpoint\"}\n".to_string(),
        ),
        _ => (
            405,
            "application/json",
            "{\"ok\":false,\"error\":\"method not allowed\"}\n".to_string(),
        ),
    }
}

/// Renders a finite f64 for JSON (`null` for NaN/inf, which JSON lacks).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// `GET /placement`: active providers with shard, cloudlet, and cost.
///
/// Reads every shard's published view once (one `Arc` clone each) and
/// reports each provider from its *owning* shard's view, so the figures
/// agree with the `stats` wire verb: `seq` sums the shard seqs,
/// `equilibrium` ANDs.
fn placement_json(shared: &AdminShared) -> String {
    let views: Vec<_> = shared.views.iter().map(|v| v.load()).collect();
    let mut seq = 0u64;
    let mut social_cost = 0.0f64;
    let mut equilibrium = true;
    for v in &views {
        seq += v.seq;
        social_cost += v.social_cost;
        equilibrium &= v.equilibrium;
    }
    let mut rows = Vec::new();
    for p in 0..shared.providers {
        let k = shared.router.owner(p);
        let Some(v) = views.get(k) else { continue };
        if !v.active.get(p).copied().unwrap_or(false) {
            continue;
        }
        let cloudlet = match v.placements.get(p) {
            Some(Placement::Cloudlet(c)) => c.index().to_string(),
            _ => "null".to_string(),
        };
        // One row per admitted provider: bounded by the booted market,
        // not by anything a client sends. lint: allow(growth)
        rows.push(format!(
            "{{\"provider\":{p},\"shard\":{k},\"cloudlet\":{cloudlet},\"cost\":{}}}",
            json_f64(v.costs.get(p).copied().unwrap_or(0.0))
        ));
    }
    format!(
        "{{\"seq\":{seq},\"providers\":{},\"active\":{},\"social_cost\":{},\
         \"equilibrium\":{equilibrium},\"placements\":[{}]}}\n",
        shared.providers,
        rows.len(),
        json_f64(social_cost),
        rows.join(",")
    )
}

/// `GET /placement/<id>`: one provider's drill-down, read from its
/// owning shard's view: assignment and cost, the market's demand vector
/// for it, the request-rate EWMA the maintenance quanta saw last, and —
/// when cached — the residual capacity left at its cloudlet.
fn placement_detail(id: &str, shared: &AdminShared) -> (u16, &'static str, String) {
    let Ok(p) = id.parse::<usize>() else {
        return (
            400,
            "application/json",
            format!(
                "{{\"ok\":false,\"error\":\"bad provider id '{}'\"}}\n",
                id.replace('"', "'")
            ),
        );
    };
    if p >= shared.providers {
        return (
            404,
            "application/json",
            format!(
                "{{\"ok\":false,\"error\":\"unknown provider {p} (universe is {})\"}}\n",
                shared.providers
            ),
        );
    }
    let k = shared.router.owner(p).min(shared.views.len() - 1);
    let v = shared.views[k].load();
    let active = v.active.get(p).copied().unwrap_or(false);
    let cloudlet = match v.placements.get(p) {
        Some(Placement::Cloudlet(c)) => Some(c.index()),
        _ => None,
    };
    let (compute, bandwidth) = v.demands.get(p).copied().unwrap_or((0.0, 0.0));
    let ewma = v.demand_ewma.get(p).copied().unwrap_or(0.0);
    let (cloudlet_s, res_a, res_b) = match cloudlet {
        Some(c) => {
            let (a, b) = v.residual.get(c).copied().unwrap_or((f64::NAN, f64::NAN));
            (c.to_string(), json_f64(a), json_f64(b))
        }
        None => ("null".to_string(), "null".into(), "null".into()),
    };
    (
        200,
        "application/json",
        format!(
            "{{\"provider\":{p},\"shard\":{k},\"active\":{active},\"cloudlet\":{cloudlet_s},\
             \"cost\":{},\"compute_demand\":{},\"bandwidth_demand\":{},\"demand_ewma\":{},\
             \"residual_compute\":{res_a},\"residual_bandwidth\":{res_b},\"seq\":{}}}\n",
            json_f64(v.costs.get(p).copied().unwrap_or(0.0)),
            json_f64(compute),
            json_f64(bandwidth),
            json_f64(ewma),
            v.seq
        ),
    )
}

/// `GET /residuals`: per-cloudlet residual capacity and congestion, each
/// read from the owning shard's view (`null` before that shard's first
/// publish).
fn residuals_json(shared: &AdminShared) -> String {
    let views: Vec<_> = shared.views.iter().map(|v| v.load()).collect();
    let region_of = shared.coord.region_map();
    let mut rows = Vec::new();
    for c in 0..shared.cloudlets {
        let k = region_of.get(c).copied().unwrap_or(0);
        let (ra, rb, cong) = match views.get(k) {
            Some(v) => match (v.residual.get(c), v.congestion.get(c)) {
                (Some(&(a, b)), Some(&g)) => (json_f64(a), json_f64(b), g.to_string()),
                _ => ("null".into(), "null".into(), "null".into()),
            },
            None => ("null".into(), "null".into(), "null".into()),
        };
        // One row per cloudlet: bounded by the booted market.
        // lint: allow(growth)
        rows.push(format!(
            "{{\"cloudlet\":{c},\"shard\":{k},\"residual_compute\":{ra},\
             \"residual_bandwidth\":{rb},\"congestion\":{cong}}}"
        ));
    }
    format!(
        "{{\"cloudlets\":{},\"region_version\":{},\"residuals\":[{}]}}\n",
        shared.cloudlets,
        shared.coord.region_version(),
        rows.join(",")
    )
}

/// `GET /shards`: per-shard live gauges and published view counters.
fn shards_json(shared: &AdminShared) -> String {
    let mut rows = Vec::new();
    for (k, view) in shared.views.iter().enumerate() {
        let v = view.load();
        // One row per shard: bounded by the boot shard count.
        // lint: allow(growth)
        rows.push(format!(
            "{{\"shard\":{k},\"seq\":{},\"depth\":{},\"writes\":{},\"migrations\":{},\
             \"active\":{},\"cached\":{},\"epochs\":{},\"equilibrium\":{}}}",
            v.seq,
            shared.gauges.depth(k),
            shared.gauges.writes(k),
            shared.gauges.migrations(k),
            v.active_count(),
            v.cached_count(),
            v.epochs,
            v.equilibrium
        ));
    }
    format!(
        "{{\"shards\":[{}],\"region_version\":{}}}\n",
        rows.join(","),
        shared.coord.region_version()
    )
}

/// `POST /reload/topology`: validate, then swap the region map.
fn reload_topology(body: &[u8], shared: &AdminShared) -> (u16, &'static str, String) {
    let reject = |msg: String| {
        (
            400,
            "application/json",
            format!("{{\"ok\":false,\"error\":\"{}\"}}\n", msg.replace('"', "'")),
        )
    };
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return reject("topology body is not UTF-8".to_string()),
    };
    let mut map = Vec::new();
    for tok in text.split(|ch: char| ch.is_whitespace() || ch == ',') {
        if tok.is_empty() {
            continue;
        }
        match tok.parse::<usize>() {
            // At most one entry per body byte; the body itself is
            // already capped at MAX_BODY. lint: allow(growth)
            Ok(s) => map.push(s),
            Err(_) => return reject(format!("bad shard index '{tok}'")),
        }
    }
    // Same validation boot applies to --regions, against the *live*
    // cloudlet and shard counts; nothing is swapped on failure.
    let validated =
        match crate::server::region_map(Some(&map), shared.cloudlets, shared.coord.shards) {
            Ok(v) => v,
            Err(e) => return reject(e.to_string()),
        };
    let version = shared.coord.swap_region_map(validated);
    (
        200,
        "application/json",
        format!(
            "{{\"ok\":true,\"region_version\":{version},\"cloudlets\":{}}}\n",
            shared.cloudlets
        ),
    )
}

/// Writes one response and closes (Connection: close on every reply).
fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if stream.write_all(head.as_bytes()).is_ok() {
        let _ = stream.write_all(body.as_bytes());
    }
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn json_f64_is_null_for_non_finite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn http_errors_map_to_statuses() {
        assert_eq!(HttpError::Malformed("x").status(), 400);
        assert_eq!(HttpError::HeaderTooLarge.status(), 431);
        assert_eq!(HttpError::BodyTooLarge.status(), 413);
        assert!(HttpError::BodyTooLarge.body().contains("\"ok\":false"));
    }
}
