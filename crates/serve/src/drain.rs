//! Socket-free data-plane drain benchmark.
//!
//! The live `marketload` smoke numbers measure the whole daemon — client
//! syscalls, the poll loop, and the writer threads together — which on a
//! small host is dominated by per-request wakeups and says little about
//! the market data plane itself. This bench isolates the writer path: a
//! seeded join/leave churn stream is routed straight into the per-shard
//! command queues (exactly how the I/O threads route, owner lookup
//! through the [`Router`]) *before* the writers start, then the clock
//! runs from spawn to the end of the coordinated drain — final
//! equilibrium convergence included, since shrinking those maintenance
//! sweeps is half the point of region sharding.
//!
//! Preloading makes this a saturation measurement: every queue stays
//! deep for the whole run, channel wakeups amortize across maximal
//! batches, and no shard burns idle-gap quanta merely because the OS
//! descheduled the producer. What remains is the real per-command work —
//! the Eq. 4–5 admission scan over the owning shard's region (1/N of
//! the cloudlets at N shards) and the Lemma 3 best-response convergence
//! over the shard's own providers. This is the workload behind the CI
//! shard-scaling gate (`cargo xtask tailgate scale`).

use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mec_core::model::Market;
use mec_core::Profile;

use crate::chan;
use crate::market::{run_shard, Command, MarketConfig, MarketOutcome, Reply, ShardCtx};
use crate::server::region_map;
use crate::shard::{Coordinator, DrainOp, Router, ShardGauges};
use crate::view::{MarketView, SharedView};

/// Knobs of [`drain_bench`].
#[derive(Debug, Clone)]
pub struct DrainConfig {
    /// Market shards (writer threads); clamped to the cloudlet count.
    pub shards: usize,
    /// Join/leave commands to push through the data plane.
    pub commands: usize,
    /// RNG seed for the churn stream.
    pub seed: u64,
    /// Improving moves per maintenance quantum (see [`MarketConfig`]).
    pub epoch_moves: usize,
    /// Most commands a shard takes per batched drain.
    pub batch_max: usize,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            shards: 1,
            commands: 100_000,
            seed: 1,
            epoch_moves: 32,
            batch_max: 256,
        }
    }
}

/// What [`drain_bench`] measured.
#[derive(Debug)]
pub struct DrainReport {
    /// Shards the market ran with.
    pub shards: usize,
    /// Commands pushed (joins + leaves).
    pub commands: usize,
    /// Feeder start to last shard joined — includes the final
    /// equilibrium convergence and the coordinated drain.
    pub elapsed: Duration,
    /// Commands settled per shard (from the write gauges; forwarded
    /// joins count at the shard that settled them).
    pub per_shard: Vec<u64>,
    /// Total best-response epochs across shards.
    pub epochs: u64,
    /// Total improving moves across shards.
    pub moves: u64,
    /// Whether every shard drained at an active-player equilibrium.
    pub equilibrium: bool,
    /// Drain certificate violations (non-empty only with `verify`).
    pub violations: Vec<String>,
}

impl DrainReport {
    /// Write commands per second of wall time.
    pub fn write_ops_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.commands as f64 / s
        } else {
            0.0
        }
    }

    /// The flat JSON row consumed by `cargo xtask tailgate scale`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"benchmark\":\"serve-drain\",\"shards\":{},\"commands\":{},\
             \"elapsed_s\":{},\"write_ops_per_sec\":{},\"epochs\":{},\"moves\":{},\
             \"equilibrium\":{}",
            self.shards,
            self.commands,
            self.elapsed.as_secs_f64(),
            self.write_ops_per_sec(),
            self.epochs,
            self.moves,
            u8::from(self.equilibrium),
        );
        for (k, w) in self.per_shard.iter().enumerate() {
            let _ = write!(out, ",\"s{k}_writes\":{w}");
        }
        out.push('}');
        out
    }
}

/// `splitmix64` — the stream must be identical across shard counts so
/// the scaling ratio compares like with like.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the drain benchmark over `market`.
///
/// `regions` is the cloudlet→shard map (`None` derives a contiguous
/// split); pass `MecNetwork::regions(shards)` for the spatial partition
/// the daemon uses.
///
/// # Errors
///
/// Propagates an invalid region map.
pub fn drain_bench(
    market: Market,
    regions: Option<Vec<usize>>,
    cfg: &DrainConfig,
) -> std::io::Result<DrainReport> {
    let n = market.provider_count();
    let m = market.cloudlet_count();
    let shards = cfg.shards.clamp(1, m.max(1));
    let region_of = region_map(regions.as_ref(), m, shards)?;

    let views: Vec<Arc<SharedView>> = (0..shards)
        .map(|_| Arc::new(SharedView::new(MarketView::empty(n))))
        .collect();
    let router = Arc::new(Router::new(n, shards));
    let gauges = Arc::new(ShardGauges::new(shards));
    let coord = Arc::new(Coordinator::new(shards, region_of.clone(), 0));
    // The I/O side of this bench is already gone when the writers start
    // (the whole stream is preloaded), so the counter starts at zero and
    // the queued drain command governs teardown.
    let io_live = Arc::new(AtomicUsize::new(0));

    // Queues sized to the stream: the preload never blocks, and every
    // writer sees saturation depth from its first batch to its last.
    let mut txs = Vec::with_capacity(shards);
    let mut rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = chan::bounded::<Command>(cfg.commands + 2);
        txs.push(tx);
        rxs.push(rx);
    }

    // Preload: route by owner lookup, exactly like an I/O thread. The
    // stream is identical across shard counts (same seed, same order);
    // only the routing differs. Ownership that moves mid-drain (a
    // forwarded join) is chased by the receiving shard — the normal
    // stale-route path.
    let mut rng = cfg.seed;
    let mut joined = vec![false; n];
    for _ in 0..cfg.commands {
        let p = (next_rand(&mut rng) % n as u64) as usize;
        let (tx, _rx) = chan::oneshot();
        let cmd = if joined[p] {
            joined[p] = false;
            Command::Leave {
                provider: p,
                reply: Reply::Oneshot(tx),
            }
        } else {
            joined[p] = true;
            Command::Join {
                provider: p,
                cloudlet: None,
                reply: Reply::Oneshot(tx),
            }
        };
        let k = router.owner(p).min(shards - 1);
        let _ = txs[k].send(cmd);
    }
    // Teardown rides at the back of every queue: coordinated drain at
    // several shards, the legacy shutdown command at one.
    if shards > 1 {
        let (tx, _rx) = chan::oneshot();
        let op = Arc::new(DrainOp::new(shards, Reply::Oneshot(tx)));
        for tx_k in &txs {
            let _ = tx_k.send(Command::DrainAll { op: op.clone() });
        }
    } else {
        let (tx, _rx) = chan::oneshot();
        let _ = txs[0].send(Command::Shutdown {
            reply: Reply::Oneshot(tx),
        });
    }

    let market_cfg = MarketConfig {
        epoch_moves: cfg.epoch_moves,
        batch_max: cfg.batch_max,
        snapshot_path: None,
    };

    let started = Instant::now();
    let mut threads = Vec::with_capacity(shards);
    for (k, rx) in rxs.into_iter().enumerate() {
        let mine: Vec<bool> = region_of.iter().map(|&r| r == k).collect();
        let ctx = ShardCtx::new(
            k,
            shards,
            mine,
            router.clone(),
            if shards > 1 { txs.clone() } else { Vec::new() },
            if shards > 1 {
                views.clone()
            } else {
                Vec::new()
            },
            coord.clone(),
            gauges.clone(),
            (shards > 1).then(|| io_live.clone()),
        );
        let shard_market = market.clone();
        let profile = Profile::all_remote(n);
        let active = vec![false; n];
        let view = views[k].clone();
        let cfg_k = market_cfg.clone();
        // Writer threads under measurement; joined below, never leaked.
        // lint: allow(thread-spawn)
        threads.push(std::thread::spawn(move || {
            run_shard(shard_market, profile, active, 0, &rx, &view, &cfg_k, &ctx)
        }));
    }
    drop(txs);

    let mut outcomes: Vec<MarketOutcome> = Vec::with_capacity(shards);
    for t in threads {
        match t.join() {
            Ok(o) => outcomes.push(o),
            Err(e) => std::panic::resume_unwind(e),
        }
    }
    let elapsed = started.elapsed();

    let mut report = DrainReport {
        shards,
        commands: cfg.commands,
        elapsed,
        per_shard: (0..shards).map(|k| gauges.writes(k)).collect(),
        epochs: 0,
        moves: 0,
        equilibrium: true,
        violations: Vec::new(),
    };
    for o in outcomes {
        report.epochs += o.epochs;
        report.moves += o.moves;
        report.equilibrium &= o.equilibrium;
        report.violations.extend(o.violations);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_workload::{gtitm_scenario, Params};

    fn small_market() -> Market {
        gtitm_scenario(60, &Params::paper().with_providers(24), 7)
            .generated
            .market
    }

    #[test]
    fn drains_all_commands_single_shard() {
        let r = drain_bench(
            small_market(),
            None,
            &DrainConfig {
                commands: 400,
                ..DrainConfig::default()
            },
        )
        .unwrap();
        assert_eq!(r.shards, 1);
        assert_eq!(r.per_shard.iter().sum::<u64>(), 400);
        assert!((r.write_ops_per_sec() - 400.0 / r.elapsed.as_secs_f64()).abs() < 1e-6);
        assert!(r.equilibrium, "drain must end at equilibrium");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn drains_all_commands_sharded() {
        let r = drain_bench(
            small_market(),
            None,
            &DrainConfig {
                shards: 3,
                commands: 400,
                ..DrainConfig::default()
            },
        )
        .unwrap();
        assert_eq!(r.shards, 3);
        // Forwarded joins settle on a peer, but nothing is lost; an idle
        // rebalance migration can settle extra writes on top.
        assert!(r.per_shard.iter().sum::<u64>() >= 400);
        assert!(r.equilibrium, "drain must end at equilibrium");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn json_row_is_flat_and_parseable() {
        let r = DrainReport {
            shards: 2,
            commands: 10,
            elapsed: Duration::from_millis(5),
            per_shard: vec![6, 4],
            epochs: 3,
            moves: 2,
            equilibrium: true,
            violations: Vec::new(),
        };
        let j = r.to_json();
        assert!(j.contains("\"benchmark\":\"serve-drain\""));
        assert!(j.contains("\"shards\":2"));
        assert!(j.contains("\"write_ops_per_sec\":2000"));
        assert!(j.contains("\"s1_writes\":4"));
    }
}
