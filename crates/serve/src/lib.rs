//! A live service-market daemon for the MEC caching game.
//!
//! Everything else in the workspace evaluates the mechanism offline: fix
//! a market, run the dynamics, measure the equilibrium. This crate turns
//! the same machinery into an online system — a TCP daemon where service
//! providers join, leave, and reshape their demand while the market stays
//! stable:
//!
//! * [`proto`] — the length-prefixed JSONL wire protocol (shares its JSON
//!   escaping/number rules with the observability traces via
//!   [`mec_obs::json`]);
//! * [`chan`] — hand-rolled bounded MPSC + oneshot channels (std-only; the
//!   vendored tree has no channel crate);
//! * [`view`] — immutable published snapshots for reader threads;
//! * [`demand`] — the demand-observation layer: I/O threads note every
//!   answered query into a shared tracker, shard writers fold the counts
//!   into per-service EWMAs each maintenance quantum and scan providers
//!   hottest-first (demand-driven re-caching);
//! * [`scenario`] — replays a [`mec_scenario::Trace`] (Zipf popularity,
//!   diurnal cycles, flash crowds, drift) against a live writer thread,
//!   scoring cache hits and observed re-cache moves;
//! * [`eventloop`] — the poll-based I/O loop (vendored `poll(2)` shim,
//!   nonblocking sockets, per-connection buffers, ordered completions);
//! * [`market`] — the single-writer market thread: batched admission
//!   control against the incremental [`mec_core::GameState`] residuals
//!   (Eq. 4–5), preemptible best-response *maintenance quanta* between
//!   queue drains (Lemma 3), versioned crash-recovery snapshots;
//! * [`shard`] — region-keyed market sharding: the provider→shard
//!   router, cross-shard migration bookkeeping, and coordinated
//!   multi-shard snapshot manifests;
//! * [`admin`] — the std-only HTTP/1.1 admin surface: Prometheus
//!   `/metrics`, live placement/residual/shard inspection, and
//!   validated topology hot-reload;
//! * [`server`] — acceptor + event-loop I/O threads over `std::net`;
//! * [`client`] — a blocking protocol client;
//! * [`load`] — the `marketload` engine: concurrent churn-scripted
//!   sessions with per-op latency histograms;
//! * [`drain`] — the socket-free data-plane drain benchmark behind the
//!   CI shard-scaling gate.
//!
//! Build with `--features verify` to re-certify the drained placement
//! (capacity + Nash certificates) on shutdown, and `--features obs` to
//! arm the observability probes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admin;
pub mod chan;
pub mod client;
pub mod demand;
pub mod drain;
pub mod eventloop;
pub mod load;
pub mod market;
pub mod proto;
pub mod scenario;
pub mod server;
pub mod shard;
pub mod view;

pub use client::Client;
pub use demand::{DemandTracker, DEMAND_EWMA_ALPHA};
pub use drain::{drain_bench, DrainConfig, DrainReport};
pub use load::{run_load, LoadConfig, LoadReport};
pub use market::{MarketConfig, MarketOutcome};
pub use proto::{Request, Response, StatsReport};
pub use scenario::{run_scenario, ScenarioConfig, ScenarioReport};
pub use server::{serve, ServerConfig, ServerHandle};
pub use view::{MarketView, SharedView};
