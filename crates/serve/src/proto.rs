//! The `mec-serve` wire protocol: length-prefixed JSONL frames.
//!
//! Every message is one flat JSON object (string/number values only),
//! encoded with the shared rules of [`mec_obs::json`] — the same escaping
//! and number formatting the observability traces use, factored into one
//! module so the formats cannot drift. A frame on the socket is
//!
//! ```text
//! <decimal byte length of payload>\n<payload JSON>\n
//! ```
//!
//! which keeps the stream self-delimiting (readers never scan for
//! newlines inside payloads) yet fully inspectable with text tools.
//!
//! Requests:
//!
//! ```text
//! {"op":"join","provider":3}            admission: pick the cheapest fitting cloudlet
//! {"op":"join","provider":3,"cloudlet":1}   admission to a specific cloudlet
//! {"op":"leave","provider":3}
//! {"op":"update","provider":3,"compute":2.5,"bandwidth":11.0}
//! {"op":"query","provider":3}
//! {"op":"stats"}
//! {"op":"snapshot"}                     admin: write the snapshot file now
//! {"op":"restore"}                      admin: reload state from the snapshot file
//! {"op":"shutdown"}                     admin: graceful drain
//! ```
//!
//! Responses carry `"ok":1` plus a `"result"` discriminator, or `"ok":0`
//! with an `"error"` string. Business rejections (a full market) are
//! *results*, not errors: `{"ok":1,"result":"rejected","reason":...}`.

use std::io::{BufRead, Write};

use mec_obs::json::{self, ParseError, Token};

/// Upper bound on a frame payload; anything larger is a protocol error.
pub const MAX_FRAME: usize = 1 << 20;

/// A client → server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit `provider` (optionally at a specific cloudlet).
    Join {
        /// Provider id within the daemon's universe.
        provider: usize,
        /// Specific cloudlet to request; `None` lets the daemon pick the
        /// cheapest fitting one.
        cloudlet: Option<usize>,
    },
    /// Deactivate `provider` and release its capacity.
    Leave {
        /// Provider id.
        provider: usize,
    },
    /// Replace `provider`'s demand vector.
    UpdateDemand {
        /// Provider id.
        provider: usize,
        /// New compute demand (VM units).
        compute: f64,
        /// New bandwidth demand (Mbps).
        bandwidth: f64,
    },
    /// Read `provider`'s current placement and cost.
    Query {
        /// Provider id.
        provider: usize,
    },
    /// Read daemon-wide counters.
    Stats,
    /// Write the snapshot file now.
    Snapshot,
    /// Reload state from the snapshot file.
    Restore,
    /// Begin a graceful drain.
    Shutdown,
}

/// One shard's slice of the composite stats (sharded daemons only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStat {
    /// The shard's own state version.
    pub seq: u64,
    /// Queue depth the shard saw at its latest drain.
    pub depth: u64,
    /// Write commands the shard has settled over its lifetime.
    pub writes: u64,
}

/// Daemon-wide counters, as carried by [`Response::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// State version (bumped on every applied mutation).
    pub seq: u64,
    /// Size of the provider universe.
    pub providers: usize,
    /// Providers currently admitted.
    pub active: usize,
    /// Providers currently cached at some cloudlet.
    pub cached: usize,
    /// Social cost of the current placement (Eq. 6).
    pub social_cost: f64,
    /// Equilibrium-maintenance epochs run so far.
    pub epochs: u64,
    /// Improving moves applied by those epochs.
    pub moves: u64,
    /// `true` if the last full scan found no improving move.
    pub equilibrium: bool,
    /// Per-shard breakdown (empty on a single-shard daemon, whose wire
    /// encoding is then byte-identical to the pre-sharding protocol).
    pub shards: Vec<ShardStat>,
}

/// A server → client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Join succeeded; the provider is cached.
    Admitted {
        /// Cloudlet the service was cached at.
        cloudlet: usize,
        /// The provider's cost there (Eq. 3) at admission time.
        cost: f64,
    },
    /// Join was denied by admission control (no capacity). Not an error.
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// Leave succeeded.
    Left,
    /// UpdateDemand succeeded.
    Updated {
        /// The provider's cost after the update.
        cost: f64,
        /// `true` if the new demand no longer fit and the service was
        /// evicted to the remote cloud (still active).
        evicted: bool,
    },
    /// Query result.
    Placement {
        /// Cloudlet index, or `None` when serving remotely.
        at: Option<usize>,
        /// Current cost (Eq. 3 / remote cost).
        cost: f64,
        /// Whether the provider is admitted.
        active: bool,
        /// State version the answer was read from.
        seq: u64,
    },
    /// Stats result.
    Stats(StatsReport),
    /// Snapshot written.
    Snapshotted {
        /// Sequence number stamped into the file.
        seq: u64,
    },
    /// State reloaded from the snapshot file.
    Restored {
        /// Sequence number of the restored snapshot.
        seq: u64,
    },
    /// Graceful drain has begun; the connection will close.
    Draining,
    /// The request failed (unknown provider, no snapshot path, ...).
    Error {
        /// What went wrong.
        msg: String,
    },
}

/// Encodes a request as its JSON payload (no framing).
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Join {
            provider,
            cloudlet: None,
        } => format!("{{\"op\":\"join\",\"provider\":{provider}}}"),
        Request::Join {
            provider,
            cloudlet: Some(c),
        } => format!("{{\"op\":\"join\",\"provider\":{provider},\"cloudlet\":{c}}}"),
        Request::Leave { provider } => format!("{{\"op\":\"leave\",\"provider\":{provider}}}"),
        Request::UpdateDemand {
            provider,
            compute,
            bandwidth,
        } => {
            let mut s = format!("{{\"op\":\"update\",\"provider\":{provider},\"compute\":");
            json::push_f64(&mut s, *compute);
            s.push_str(",\"bandwidth\":");
            json::push_f64(&mut s, *bandwidth);
            s.push('}');
            s
        }
        Request::Query { provider } => format!("{{\"op\":\"query\",\"provider\":{provider}}}"),
        Request::Stats => "{\"op\":\"stats\"}".to_string(),
        Request::Snapshot => "{\"op\":\"snapshot\"}".to_string(),
        Request::Restore => "{\"op\":\"restore\"}".to_string(),
        Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
    }
}

/// Parses a request payload.
///
/// # Errors
///
/// Errors on malformed JSON or an unknown `op`.
pub fn parse_request(payload: &str) -> Result<Request, ParseError> {
    let fields = json::parse_object(payload)?;
    match json::get_str(&fields, "op")? {
        "join" => Ok(Request::Join {
            provider: json::get_usize(&fields, "provider")?,
            cloudlet: match json::get(&fields, "cloudlet") {
                Ok(_) => Some(json::get_usize(&fields, "cloudlet")?),
                Err(_) => None,
            },
        }),
        "leave" => Ok(Request::Leave {
            provider: json::get_usize(&fields, "provider")?,
        }),
        "update" => Ok(Request::UpdateDemand {
            provider: json::get_usize(&fields, "provider")?,
            compute: json::get_f64(&fields, "compute")?,
            bandwidth: json::get_f64(&fields, "bandwidth")?,
        }),
        "query" => Ok(Request::Query {
            provider: json::get_usize(&fields, "provider")?,
        }),
        "stats" => Ok(Request::Stats),
        "snapshot" => Ok(Request::Snapshot),
        "restore" => Ok(Request::Restore),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ParseError::new(format!("unknown op `{other}`"))),
    }
}

/// Encodes a response as its JSON payload (no framing).
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Admitted { cloudlet, cost } => {
            let mut s =
                format!("{{\"ok\":1,\"result\":\"admitted\",\"cloudlet\":{cloudlet},\"cost\":");
            json::push_f64(&mut s, *cost);
            s.push('}');
            s
        }
        Response::Rejected { reason } => {
            let mut s = String::from("{\"ok\":1,\"result\":\"rejected\",\"reason\":");
            json::push_string(&mut s, reason);
            s.push('}');
            s
        }
        Response::Left => "{\"ok\":1,\"result\":\"left\"}".to_string(),
        Response::Updated { cost, evicted } => {
            let mut s = String::from("{\"ok\":1,\"result\":\"updated\",\"cost\":");
            json::push_f64(&mut s, *cost);
            s.push_str(&format!(",\"evicted\":{}}}", u64::from(*evicted)));
            s
        }
        Response::Placement {
            at,
            cost,
            active,
            seq,
        } => {
            let mut s = String::from("{\"ok\":1,\"result\":\"placement\",\"at\":");
            match at {
                Some(c) => s.push_str(&format!("{c}")),
                None => s.push_str("\"remote\""),
            }
            s.push_str(",\"cost\":");
            json::push_f64(&mut s, *cost);
            s.push_str(&format!(
                ",\"active\":{},\"seq\":{seq}}}",
                u64::from(*active)
            ));
            s
        }
        Response::Stats(st) => {
            let mut s = format!(
                "{{\"ok\":1,\"result\":\"stats\",\"seq\":{},\"providers\":{},\"active\":{},\
                 \"cached\":{},\"social_cost\":",
                st.seq, st.providers, st.active, st.cached
            );
            json::push_f64(&mut s, st.social_cost);
            s.push_str(&format!(
                ",\"epochs\":{},\"moves\":{},\"equilibrium\":{}",
                st.epochs,
                st.moves,
                u64::from(st.equilibrium)
            ));
            if !st.shards.is_empty() {
                s.push_str(&format!(",\"shards\":{}", st.shards.len()));
                for (k, sh) in st.shards.iter().enumerate() {
                    s.push_str(&format!(
                        ",\"s{k}_seq\":{},\"s{k}_depth\":{},\"s{k}_writes\":{}",
                        sh.seq, sh.depth, sh.writes
                    ));
                }
            }
            s.push('}');
            s
        }
        Response::Snapshotted { seq } => {
            format!("{{\"ok\":1,\"result\":\"snapshotted\",\"seq\":{seq}}}")
        }
        Response::Restored { seq } => {
            format!("{{\"ok\":1,\"result\":\"restored\",\"seq\":{seq}}}")
        }
        Response::Draining => "{\"ok\":1,\"result\":\"draining\"}".to_string(),
        Response::Error { msg } => {
            let mut s = String::from("{\"ok\":0,\"error\":");
            json::push_string(&mut s, msg);
            s.push('}');
            s
        }
    }
}

/// Parses a response payload.
///
/// # Errors
///
/// Errors on malformed JSON or an unknown `result`.
pub fn parse_response(payload: &str) -> Result<Response, ParseError> {
    let fields = json::parse_object(payload)?;
    if json::get_u64(&fields, "ok")? == 0 {
        return Ok(Response::Error {
            msg: json::get_str(&fields, "error")?.to_string(),
        });
    }
    match json::get_str(&fields, "result")? {
        "admitted" => Ok(Response::Admitted {
            cloudlet: json::get_usize(&fields, "cloudlet")?,
            cost: json::get_f64(&fields, "cost")?,
        }),
        "rejected" => Ok(Response::Rejected {
            reason: json::get_str(&fields, "reason")?.to_string(),
        }),
        "left" => Ok(Response::Left),
        "updated" => Ok(Response::Updated {
            cost: json::get_f64(&fields, "cost")?,
            evicted: json::get_u64(&fields, "evicted")? != 0,
        }),
        "placement" => Ok(Response::Placement {
            at: match json::get(&fields, "at")? {
                Token::Str(s) if s == "remote" => None,
                Token::Str(s) => {
                    return Err(ParseError::new(format!("bad placement `{s}`")));
                }
                Token::Num(_) => Some(json::get_usize(&fields, "at")?),
            },
            cost: json::get_f64(&fields, "cost")?,
            active: json::get_u64(&fields, "active")? != 0,
            seq: json::get_u64(&fields, "seq")?,
        }),
        "stats" => {
            // Per-shard fields are optional: single-shard daemons (and
            // every pre-sharding peer) omit them entirely.
            let mut shards = Vec::new();
            if let Ok(count) = json::get_usize(&fields, "shards") {
                for k in 0..count {
                    // Each push is gated by three successful `s{k}_*`
                    // field lookups, so growth is bounded by the fields
                    // actually present in the frame (itself capped by
                    // the decoder's max-frame limit).
                    // lint: allow(growth)
                    shards.push(ShardStat {
                        seq: json::get_u64(&fields, &format!("s{k}_seq"))?,
                        depth: json::get_u64(&fields, &format!("s{k}_depth"))?,
                        writes: json::get_u64(&fields, &format!("s{k}_writes"))?,
                    });
                }
            }
            Ok(Response::Stats(StatsReport {
                seq: json::get_u64(&fields, "seq")?,
                providers: json::get_usize(&fields, "providers")?,
                active: json::get_usize(&fields, "active")?,
                cached: json::get_usize(&fields, "cached")?,
                social_cost: json::get_f64(&fields, "social_cost")?,
                epochs: json::get_u64(&fields, "epochs")?,
                moves: json::get_u64(&fields, "moves")?,
                equilibrium: json::get_u64(&fields, "equilibrium")? != 0,
                shards,
            }))
        }
        "snapshotted" => Ok(Response::Snapshotted {
            seq: json::get_u64(&fields, "seq")?,
        }),
        "restored" => Ok(Response::Restored {
            seq: json::get_u64(&fields, "seq")?,
        }),
        "draining" => Ok(Response::Draining),
        other => Err(ParseError::new(format!("unknown result `{other}`"))),
    }
}

/// Writes one frame: decimal payload length, newline, payload, newline.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    // One write_all per frame: a frame split across several small writes
    // becomes several TCP segments, and Nagle + delayed ACK then stalls
    // every request by ~40 ms.
    let mut buf = Vec::with_capacity(payload.len() + 24);
    push_frame(&mut buf, payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Incremental frame reassembly for nonblocking sockets.
///
/// The event loop reads whatever bytes the kernel has — which may end
/// mid-length-prefix, mid-payload, or pack a dozen pipelined frames into
/// one `read` — feeds them in with [`FrameDecoder::extend`], and pulls
/// complete frames out with [`FrameDecoder::next_frame`]. The decoder
/// owns the partial-frame state, so a slow client costs one buffer, not
/// a blocked thread.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted once it outgrows the tail.
    pos: usize,
}

/// Longest sensible length line: `MAX_FRAME` has 7 digits; allow slack
/// for whitespace before calling the prefix malformed.
const MAX_LEN_LINE: usize = 24;

impl FrameDecoder {
    /// A fresh decoder with no buffered bytes.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends freshly read bytes to the reassembly buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by the frame
        // size rather than the connection's lifetime traffic.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        // Bounded by MAX_FRAME: next_frame errors on any length line
        // announcing more, and the caller kills the connection on that
        // error, so unconsumed bytes never exceed one max frame plus
        // one read chunk.
        // lint: allow(growth)
        self.buf.extend_from_slice(bytes);
    }

    /// `true` if a partially received frame is buffered — EOF now would
    /// be a mid-frame cut, not a clean close.
    pub fn mid_frame(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Extracts the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a malformed or oversized length prefix, a missing
    /// frame-terminating newline, or non-UTF-8 payload — all unrecoverable
    /// for the connection (framing is lost).
    pub fn next_frame(&mut self) -> std::io::Result<Option<String>> {
        let pending = &self.buf[self.pos..];
        let Some(nl) = pending.iter().take(MAX_LEN_LINE).position(|&b| b == b'\n') else {
            if pending.len() >= MAX_LEN_LINE {
                return Err(bad_data(format!(
                    "frame length line exceeds {MAX_LEN_LINE} bytes"
                )));
            }
            return Ok(None);
        };
        let len_line = std::str::from_utf8(&pending[..nl])
            .map_err(|_| bad_data("frame length line is not UTF-8".to_string()))?;
        let len: usize = len_line
            .trim()
            .parse()
            .map_err(|_| bad_data(format!("bad frame length `{}`", len_line.trim())))?;
        if len > MAX_FRAME {
            return Err(bad_data(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
            )));
        }
        // Length line + payload + trailing newline.
        let total = nl + 1 + len + 1;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = &pending[nl + 1..nl + 1 + len];
        if pending[total - 1] != b'\n' {
            return Err(bad_data("frame missing trailing newline".to_string()));
        }
        let payload = std::str::from_utf8(payload)
            .map_err(|_| bad_data("frame is not UTF-8".to_string()))?
            .to_string();
        self.pos += total;
        Ok(Some(payload))
    }
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Appends one encoded frame to `out` without any I/O — the event loop
/// batches many frames into one `write` syscall.
pub fn push_frame(out: &mut Vec<u8>, payload: &str) {
    debug_assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    out.extend_from_slice(format!("{}\n", payload.len()).as_bytes());
    out.extend_from_slice(payload.as_bytes());
    out.push(b'\n');
}

/// Reads one frame. `Ok(None)` is a clean EOF at a frame boundary.
///
/// # Errors
///
/// Returns `InvalidData` on a malformed length line, an oversized frame,
/// or a stream cut mid-frame.
pub fn read_frame<R: BufRead>(r: &mut R) -> std::io::Result<Option<String>> {
    let mut len_line = String::new();
    if r.read_line(&mut len_line)? == 0 {
        return Ok(None); // clean EOF between frames
    }
    let len: usize = len_line.trim().parse().map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame length `{}`", len_line.trim()),
        )
    })?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len + 1]; // payload + trailing newline
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "stream cut mid-frame")
        } else {
            e
        }
    })?;
    if buf.pop() != Some(b'\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame missing trailing newline",
        ));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Join {
                provider: 3,
                cloudlet: None,
            },
            Request::Join {
                provider: 3,
                cloudlet: Some(1),
            },
            Request::Leave { provider: 0 },
            Request::UpdateDemand {
                provider: 9,
                compute: 2.5,
                bandwidth: 11.25,
            },
            Request::Query { provider: 7 },
            Request::Stats,
            Request::Snapshot,
            Request::Restore,
            Request::Shutdown,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Admitted {
                cloudlet: 2,
                cost: 3.75,
            },
            Response::Rejected {
                reason: "no cloudlet fits \"sp3\"".to_string(),
            },
            Response::Left,
            Response::Updated {
                cost: 1.25,
                evicted: true,
            },
            Response::Placement {
                at: Some(4),
                cost: 0.5,
                active: true,
                seq: 42,
            },
            Response::Placement {
                at: None,
                cost: f64::INFINITY,
                active: false,
                seq: 0,
            },
            Response::Stats(StatsReport {
                seq: 99,
                providers: 100,
                active: 60,
                cached: 55,
                social_cost: 1234.5,
                epochs: 17,
                moves: 203,
                equilibrium: true,
                shards: Vec::new(),
            }),
            Response::Stats(StatsReport {
                seq: 12,
                providers: 40,
                active: 20,
                cached: 18,
                social_cost: 99.5,
                epochs: 4,
                moves: 31,
                equilibrium: false,
                shards: vec![
                    ShardStat {
                        seq: 7,
                        depth: 3,
                        writes: 120,
                    },
                    ShardStat {
                        seq: 5,
                        depth: 0,
                        writes: 88,
                    },
                ],
            }),
            Response::Snapshotted { seq: 5 },
            Response::Restored { seq: 5 },
            Response::Draining,
            Response::Error {
                msg: "unknown provider sp999".to_string(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            assert_eq!(
                parse_request(&encode_request(&req)).unwrap(),
                req,
                "{req:?}"
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in all_responses() {
            assert_eq!(
                parse_response(&encode_response(&resp)).unwrap(),
                resp,
                "{resp:?}"
            );
        }
    }

    #[test]
    fn single_shard_stats_stay_wire_compatible() {
        // A stats payload without per-shard fields is exactly what the
        // pre-sharding protocol emitted; it must parse to an empty shard
        // list and re-encode byte-identically.
        let legacy = "{\"ok\":1,\"result\":\"stats\",\"seq\":1,\"providers\":2,\"active\":1,\
                      \"cached\":1,\"social_cost\":2.5,\"epochs\":3,\"moves\":4,\"equilibrium\":1}";
        let parsed = parse_response(legacy).unwrap();
        let Response::Stats(ref st) = parsed else {
            panic!("not stats");
        };
        assert!(st.shards.is_empty());
        assert_eq!(encode_response(&parsed), legacy);
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        for req in all_requests() {
            write_frame(&mut buf, &encode_request(&req)).unwrap();
        }
        let mut r = std::io::BufReader::new(buf.as_slice());
        for req in all_requests() {
            let payload = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(parse_request(&payload).unwrap(), req);
        }
        assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn torn_and_malformed_frames_error() {
        // Length line present, payload missing.
        let mut r = std::io::BufReader::new(&b"10\n"[..]);
        assert!(read_frame(&mut r).is_err());
        // Garbage length.
        let mut r = std::io::BufReader::new(&b"ten\n{}\n"[..]);
        assert!(read_frame(&mut r).is_err());
        // Oversized frame.
        let oversized = format!("{}\n", MAX_FRAME + 1).into_bytes();
        let mut r = std::io::BufReader::new(oversized.as_slice());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn decoder_reassembles_byte_by_byte() {
        // Feed every frame one byte at a time: the decoder must stay in
        // "need more" until the final newline of each frame.
        let mut wire = Vec::new();
        for req in all_requests() {
            write_frame(&mut wire, &encode_request(&req)).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &wire {
            dec.extend(&[b]);
            while let Some(payload) = dec.next_frame().unwrap() {
                got.push(parse_request(&payload).unwrap());
            }
        }
        assert_eq!(got, all_requests());
        assert!(!dec.mid_frame(), "no partial frame may remain");
    }

    #[test]
    fn decoder_handles_split_length_prefix() {
        // `12\n{...}\n` delivered as "1" then "2\n{...}\n".
        let payload = r#"{"op":"stats"}"#;
        let mut wire = Vec::new();
        write_frame(&mut wire, payload).unwrap();
        let (a, b) = wire.split_at(1);
        let mut dec = FrameDecoder::new();
        dec.extend(a);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.mid_frame());
        dec.extend(b);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(payload));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn decoder_yields_many_pipelined_frames_from_one_chunk() {
        let mut wire = Vec::new();
        for _ in 0..50 {
            write_frame(&mut wire, r#"{"op":"stats"}"#).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        let mut n = 0;
        while dec.next_frame().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn decoder_rejects_oversize_and_malformed_prefixes() {
        // Oversized declared length fails as soon as the prefix is whole.
        let mut dec = FrameDecoder::new();
        dec.extend(format!("{}\n", MAX_FRAME + 1).as_bytes());
        assert!(dec.next_frame().is_err());
        // Garbage length line.
        let mut dec = FrameDecoder::new();
        dec.extend(b"ten\n{}\n");
        assert!(dec.next_frame().is_err());
        // A length line that never terminates is cut off at the cap.
        let mut dec = FrameDecoder::new();
        dec.extend(&[b'9'; MAX_LEN_LINE]);
        assert!(dec.next_frame().is_err());
        // Frame whose payload is not followed by the newline terminator.
        let mut dec = FrameDecoder::new();
        dec.extend(b"2\n{}X");
        assert!(dec.next_frame().is_err());
        // Non-UTF-8 payload.
        let mut dec = FrameDecoder::new();
        dec.extend(b"2\n\xff\xfe\n");
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn decoder_compacts_without_losing_frames() {
        // Push enough traffic through one decoder to force compaction,
        // interleaving partial deliveries.
        let payload = r#"{"op":"query","provider":123456}"#;
        let mut wire = Vec::new();
        write_frame(&mut wire, payload).unwrap();
        let mut dec = FrameDecoder::new();
        let mut got = 0usize;
        for round in 0..2000 {
            // Alternate split points to exercise both partial paths.
            let cut = 1 + (round % (wire.len() - 1));
            dec.extend(&wire[..cut]);
            while dec.next_frame().unwrap().is_some() {
                got += 1;
            }
            dec.extend(&wire[cut..]);
            while let Some(p) = dec.next_frame().unwrap() {
                assert_eq!(p, payload);
                got += 1;
            }
        }
        assert_eq!(got, 2000);
    }

    #[test]
    fn unknown_ops_and_results_error() {
        assert!(parse_request(r#"{"op":"mystery"}"#).is_err());
        assert!(parse_response(r#"{"ok":1,"result":"mystery"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn error_response_decodes_from_ok_zero() {
        let r = parse_response(r#"{"ok":0,"error":"boom"}"#).unwrap();
        assert_eq!(
            r,
            Response::Error {
                msg: "boom".to_string()
            }
        );
    }
}
