//! End-to-end daemon tests over real sockets on ephemeral ports.
//!
//! Each test boots an in-process daemon (`serve` with port 0), talks to
//! it through [`Client`], and drains it with a `shutdown` request. The
//! admission arc — join to capacity, rejection, leave, re-admission —
//! and the snapshot/restore crash-recovery path both run against the
//! full TCP stack, not the market thread in isolation.

use std::time::Duration;

use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_serve::{serve, Client, Response, ServerConfig, ServerHandle};

/// Two cloudlets, each with room for exactly two of the identical
/// providers (compute 4.0 / demand 2.0, bandwidth 20.0 / demand 8.0).
fn two_slot_market(providers: usize) -> Market {
    let mut b = Market::builder()
        .cloudlet(CloudletSpec::new(4.0, 20.0, 0.5, 0.5))
        .cloudlet(CloudletSpec::new(4.0, 20.0, 0.3, 0.2));
    for _ in 0..providers {
        b = b.provider(ProviderSpec::new(2.0, 8.0, 1.0, 30.0));
    }
    b.uniform_update_cost(0.2).build()
}

fn boot(market: Market, snapshot: Option<&std::path::Path>) -> (ServerHandle, Client) {
    let cfg = ServerConfig {
        snapshot_path: snapshot.map(|p| p.to_path_buf()),
        ..ServerConfig::default()
    };
    let handle = serve(market, &cfg).expect("boot");
    let client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    (handle, client)
}

fn drain(handle: ServerHandle, client: &mut Client) -> mec_serve::MarketOutcome {
    assert_eq!(client.shutdown().expect("shutdown"), Response::Draining);
    handle.join()
}

#[test]
fn join_to_capacity_rejection_leave_readmission() {
    let (handle, mut client) = boot(two_slot_market(5), None);

    // Four providers fill both cloudlets.
    for p in 0..4 {
        match client.join(p).expect("join") {
            Response::Admitted { cloudlet, cost } => {
                assert!(cost.is_finite());
                assert!(cloudlet < 2);
            }
            other => panic!("provider {p}: expected admission, got {other:?}"),
        }
    }
    // The fifth finds no capacity anywhere: rejected, not errored.
    assert!(matches!(
        client.join(4).expect("join"),
        Response::Rejected { .. }
    ));
    // Rejected providers stay inactive and remote.
    match client.query(4).expect("query") {
        Response::Placement { at, active, .. } => {
            assert_eq!(at, None);
            assert!(!active);
        }
        other => panic!("expected placement, got {other:?}"),
    }

    // A departure frees a slot; the rejected provider now gets in.
    // (Which cloudlet has the free slot depends on the maintenance epochs
    // that may have rebalanced providers in the meantime.)
    assert_eq!(client.leave(0).expect("leave"), Response::Left);
    assert!(matches!(
        client.join(4).expect("rejoin"),
        Response::Admitted { .. }
    ));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.providers, 5);
    assert_eq!(stats.active, 4);
    assert_eq!(stats.cached, 4);

    let outcome = drain(handle, &mut client);
    assert_eq!(outcome.active.iter().filter(|a| **a).count(), 4);
    assert!(outcome.equilibrium);
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
}

#[test]
fn protocol_errors_do_not_kill_the_connection() {
    let (handle, mut client) = boot(two_slot_market(2), None);
    // Unknown provider, double join, leave-without-join: all errors, all
    // on the same connection, which stays usable throughout.
    assert!(matches!(
        client.join(99).expect("join oob"),
        Response::Error { .. }
    ));
    assert!(matches!(
        client.join(0).expect("join"),
        Response::Admitted { .. }
    ));
    assert!(matches!(
        client.join(0).expect("double join"),
        Response::Error { .. }
    ));
    assert!(matches!(
        client.leave(1).expect("leave inactive"),
        Response::Error { .. }
    ));
    assert!(matches!(
        client.update(0, f64::NAN, 1.0).expect("bad update"),
        Response::Error { .. }
    ));
    // Still alive.
    assert_eq!(client.stats().expect("stats").active, 1);
    drain(handle, &mut client);
}

#[test]
fn update_demand_round_trips_and_evicts() {
    let (handle, mut client) = boot(two_slot_market(2), None);
    assert!(matches!(
        client.join(0).expect("join"),
        Response::Admitted { .. }
    ));
    // Shrink: still fits, not evicted.
    match client.update(0, 1.0, 4.0).expect("shrink") {
        Response::Updated { evicted, .. } => assert!(!evicted),
        other => panic!("expected update, got {other:?}"),
    }
    // Outgrow every cloudlet: evicted to remote but still active.
    match client.update(0, 100.0, 4.0).expect("grow") {
        Response::Updated { evicted, cost } => {
            assert!(evicted);
            assert!((cost - 30.0).abs() < 1e-9, "remote cost, got {cost}");
        }
        other => panic!("expected update, got {other:?}"),
    }
    match client.query(0).expect("query") {
        Response::Placement { at, active, .. } => {
            assert_eq!(at, None);
            assert!(active);
        }
        other => panic!("expected placement, got {other:?}"),
    }
    let outcome = drain(handle, &mut client);
    assert!(outcome.active[0]);
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
}

#[test]
fn snapshot_restore_recovers_market_state() {
    let dir = std::env::temp_dir().join(format!("mec-serve-it-{}-{}", std::process::id(), line!()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let snap = dir.join("market.snap");

    // Daemon #1: admit three providers, snapshot, then crash (kill the
    // process from the daemon's point of view: just abandon it after the
    // snapshot lands — the file must carry the whole state).
    let (handle, mut client) = boot(two_slot_market(5), Some(&snap));
    for p in 0..3 {
        assert!(matches!(
            client.join(p).expect("join"),
            Response::Admitted { .. }
        ));
    }
    let seq_at_snapshot = match client.snapshot().expect("snapshot") {
        Response::Snapshotted { seq } => seq,
        other => panic!("expected snapshot ack, got {other:?}"),
    };
    let pre: Vec<Response> = (0..5).map(|p| client.query(p).expect("query")).collect();
    // "kill -9": drop the connection and drain via a throwaway client so
    // the port is released, but restore from the mid-run snapshot, not
    // the drain-time one.
    let saved = std::fs::read(&snap).expect("snapshot bytes");
    let mut admin = Client::connect(handle.addr()).expect("admin");
    admin.shutdown().expect("shutdown");
    handle.join();
    std::fs::write(&snap, &saved).expect("rewind snapshot");

    // Daemon #2 boots from the snapshot: same placements, same seq.
    let (handle2, mut client2) = boot(two_slot_market(5), Some(&snap));
    let stats = client2.stats().expect("stats");
    assert_eq!(stats.seq, seq_at_snapshot);
    assert_eq!(stats.active, 3);
    assert_eq!(stats.cached, 3);
    for (p, before) in pre.iter().enumerate() {
        let after = client2.query(p).expect("query");
        let (
            Response::Placement {
                at: a0,
                active: x0,
                cost: c0,
                ..
            },
            Response::Placement {
                at: a1,
                active: x1,
                cost: c1,
                ..
            },
        ) = (before, &after)
        else {
            panic!("expected placements, got {before:?} / {after:?}");
        };
        assert_eq!(a0, a1, "provider {p} placement");
        assert_eq!(x0, x1, "provider {p} active flag");
        assert!((c0 - c1).abs() < 1e-12, "provider {p} cost");
    }

    // The restored daemon is fully operational: fill the market.
    assert!(matches!(
        client2.join(3).expect("join"),
        Response::Admitted { .. }
    ));
    assert!(matches!(
        client2.join(4).expect("join"),
        Response::Rejected { .. }
    ));
    let outcome = drain(handle2, &mut client2);
    assert_eq!(outcome.active.iter().filter(|a| **a).count(), 4);
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_request_rewinds_live_state() {
    let dir = std::env::temp_dir().join(format!("mec-serve-it-{}-{}", std::process::id(), line!()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let snap = dir.join("market.snap");

    let (handle, mut client) = boot(two_slot_market(4), Some(&snap));
    assert!(matches!(
        client.join(0).expect("join"),
        Response::Admitted { .. }
    ));
    let seq = match client.snapshot().expect("snapshot") {
        Response::Snapshotted { seq } => seq,
        other => panic!("expected snapshot ack, got {other:?}"),
    };
    // Mutate past the snapshot, then rewind to it.
    assert!(matches!(
        client.join(1).expect("join"),
        Response::Admitted { .. }
    ));
    match client.restore().expect("restore") {
        Response::Restored { seq: restored } => assert_eq!(restored, seq),
        other => panic!("expected restore ack, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.seq, seq);
    assert_eq!(stats.active, 1, "join(1) must be rewound");
    drain(handle, &mut client);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill9_mid_migration_restores_from_shard_slices() {
    let dir = std::env::temp_dir().join(format!("mec-serve-it-{}-{}", std::process::id(), line!()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let snap = dir.join("market.snap");

    // Two shards over the two-cloudlet market: the contiguous region map
    // gives shard 0 cloudlet 0 and shard 1 cloudlet 1. Providers home to
    // shard `p % 2`.
    let boot_sharded = |market: Market| {
        let cfg = ServerConfig {
            snapshot_path: Some(snap.clone()),
            shards: 2,
            ..ServerConfig::default()
        };
        let handle = serve(market, &cfg).expect("boot");
        let client = Client::connect(handle.addr()).expect("connect");
        client
            .set_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        (handle, client)
    };

    let (handle, mut client) = boot_sharded(two_slot_market(6));
    // Providers 0 and 2 (home shard 0) fill shard 0's cloudlet; provider
    // 4 (also home shard 0) then finds its region full and forwards
    // cross-shard — a live ownership handoff to shard 1 that the crash
    // must not lose or duplicate. Provider 1 fills shard 1's last slot.
    for p in [0, 2] {
        match client.join(p).expect("join") {
            Response::Admitted { cloudlet, .. } => assert_eq!(cloudlet, 0, "provider {p}"),
            other => panic!("provider {p}: expected admission, got {other:?}"),
        }
    }
    match client.join(4).expect("forwarded join") {
        Response::Admitted { cloudlet, .. } => {
            assert_eq!(cloudlet, 1, "forwarded join must land cross-shard")
        }
        other => panic!("expected cross-shard admission, got {other:?}"),
    }
    assert!(matches!(
        client.join(1).expect("join"),
        Response::Admitted { .. }
    ));

    // Coordinated snapshot: prepare quiesces in-flight handoffs before
    // any slice is written, so the set on disk is consistent even though
    // a migration was just in flight. (The coordinated ack carries the
    // set's coordinator epoch, not a state seq.)
    let epoch_at_snapshot = match client.snapshot().expect("snapshot") {
        Response::Snapshotted { seq } => seq,
        other => panic!("expected snapshot ack, got {other:?}"),
    };
    let pre: Vec<Response> = (0..6).map(|p| client.query(p).expect("query")).collect();

    // "kill -9": stash the whole snapshot set (manifest + slices), drain
    // via a throwaway client to free the port (which writes a *newer*
    // set and garbage-collects ours), then put the mid-run set back.
    let manifest_bytes = std::fs::read(&snap).expect("manifest bytes");
    let manifest = mec_serve::shard::parse_manifest(
        std::str::from_utf8(&manifest_bytes).expect("manifest utf8"),
    )
    .expect("manifest parses");
    assert_eq!(manifest.shards, 2);
    assert_eq!(manifest.epoch, epoch_at_snapshot);
    let slice_paths: Vec<_> = (0..manifest.shards)
        .map(|k| mec_serve::shard::shard_snapshot_path(&snap, manifest.epoch, k))
        .collect();
    let slice_bytes: Vec<_> = slice_paths
        .iter()
        .map(|p| std::fs::read(p).expect("slice bytes"))
        .collect();
    let mut admin = Client::connect(handle.addr()).expect("admin");
    admin.shutdown().expect("shutdown");
    handle.join();
    std::fs::remove_dir_all(&dir).expect("wipe");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    std::fs::write(&snap, &manifest_bytes).expect("rewind manifest");
    for (p, bytes) in slice_paths.iter().zip(&slice_bytes) {
        std::fs::write(p, bytes).expect("rewind slice");
    }

    // The set itself: every provider is claimed by exactly one shard's
    // ownership mask, and the forwarded provider 4 moved to shard 1.
    let slices: Vec<_> = slice_paths
        .iter()
        .map(|p| mec_core::load_snapshot(p).expect("slice parses"))
        .collect();
    let masks: Vec<&Vec<bool>> = slices
        .iter()
        .map(|s| &s.shard.as_ref().expect("slice has shard meta").owned)
        .collect();
    for p in 0..6 {
        let claims = masks.iter().filter(|m| m[p]).count();
        assert_eq!(claims, 1, "provider {p} claimed by {claims} shards");
    }
    assert!(masks[1][4], "forwarded provider must be owned by shard 1");
    for s in &slices {
        let meta = s.shard.as_ref().expect("meta");
        assert_eq!(meta.epoch, manifest.epoch, "mixed-epoch set");
        assert_eq!(meta.count, 2);
    }

    // Daemon #2 boots from the per-shard slices: same seq, same
    // placements, and fully operational — including fresh cross-shard
    // forwarding after a slot frees up.
    let slice_seq_sum: u64 = slices.iter().map(|s| s.seq).sum();
    let (handle2, mut client2) = boot_sharded(two_slot_market(6));
    let stats = client2.stats().expect("stats");
    // Composite stats sum the per-shard seqs; each restored shard starts
    // at its slice's seq.
    assert_eq!(stats.seq, slice_seq_sum);
    assert_eq!(stats.active, 4);
    assert_eq!(stats.shards.len(), 2, "restored daemon reports both shards");
    for (p, before) in pre.iter().enumerate() {
        let after = client2.query(p).expect("query");
        let (
            Response::Placement {
                at: a0, active: x0, ..
            },
            Response::Placement {
                at: a1, active: x1, ..
            },
        ) = (before, &after)
        else {
            panic!("expected placements, got {before:?} / {after:?}");
        };
        assert_eq!(a0, a1, "provider {p} placement");
        assert_eq!(x0, x1, "provider {p} active flag");
    }
    assert_eq!(client2.leave(0).expect("leave"), Response::Left);
    // Provider 5 homes to shard 1, whose cloudlet is still full; the
    // restored router must forward it to the slot shard 0 just freed.
    match client2.join(5).expect("post-restore forwarded join") {
        Response::Admitted { cloudlet, .. } => assert_eq!(cloudlet, 0),
        other => panic!("expected cross-shard admission, got {other:?}"),
    }
    let outcome = drain(handle2, &mut client2);
    assert_eq!(outcome.active.iter().filter(|a| **a).count(), 4);
    assert!(outcome.equilibrium);
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_reads_observe_preceding_writes() {
    // Read-your-writes across a batched drain: a query pipelined behind
    // writes on the same connection must see a view at least as new as
    // those writes, even though the market thread applies the whole
    // batch in one pass, publishes once, and only then acknowledges.
    // The pipelined reads sit behind in-flight commands, forcing the
    // event loop through its deferred-read path — a stale pre-write view
    // here is exactly the regression batching could introduce.
    use mec_serve::Request;
    let (handle, mut client) = boot(two_slot_market(4), None);
    let batch = [
        Request::Join {
            provider: 0,
            cloudlet: None,
        },
        Request::Query { provider: 0 }, // deferred behind the join
    ];
    let resps: Vec<Response> = client
        .pipeline(&batch)
        .expect("pipeline")
        .into_iter()
        .map(|(r, _)| r)
        .collect();
    assert!(matches!(resps[0], Response::Admitted { .. }));
    match &resps[1] {
        Response::Placement { at, active, .. } => {
            assert!(active, "query pipelined after join must see the join");
            assert!(at.is_some());
        }
        other => panic!("expected placement, got {other:?}"),
    }
    // A batch whose writes supersede each other: the trailing reads must
    // reflect the final state of the batch (join(1) + leave(0) both
    // applied), never a pre-write view.
    let batch = [
        Request::Join {
            provider: 1,
            cloudlet: None,
        },
        Request::Leave { provider: 0 },
        Request::Query { provider: 0 }, // must see the leave applied
        Request::Query { provider: 1 }, // must see the join applied
        Request::Stats,                 // must count exactly provider 1
    ];
    let resps: Vec<Response> = client
        .pipeline(&batch)
        .expect("pipeline")
        .into_iter()
        .map(|(r, _)| r)
        .collect();
    assert!(matches!(resps[0], Response::Admitted { .. }));
    assert_eq!(resps[1], Response::Left);
    match &resps[2] {
        Response::Placement { at, active, .. } => {
            assert!(!active, "query pipelined after leave must see the leave");
            assert_eq!(*at, None);
        }
        other => panic!("expected placement, got {other:?}"),
    }
    assert!(matches!(
        &resps[3],
        Response::Placement { active: true, .. }
    ));
    match &resps[4] {
        Response::Stats(s) => assert_eq!(s.active, 1),
        other => panic!("expected stats, got {other:?}"),
    }
    drain(handle, &mut client);
}

#[test]
fn slow_reader_does_not_stall_other_clients() {
    // One client writes a request but never reads the response; with the
    // event loop this parks a buffer, not a thread, and other clients
    // keep getting served.
    use std::io::Write;
    let (handle, mut client) = boot(two_slot_market(4), None);
    let mut lazy = std::net::TcpStream::connect(handle.addr()).expect("connect");
    lazy.write_all(b"24\n{\"op\":\"stats\",\"seq\":100}\n")
        .expect("write");
    // Never read from `lazy`; the daemon must still answer everyone else.
    for p in 0..2 {
        assert!(matches!(
            client.join(p).expect("join"),
            Response::Admitted { .. }
        ));
    }
    assert_eq!(client.stats().expect("stats").active, 2);
    drop(lazy);
    drain(handle, &mut client);
}

#[test]
fn concurrent_clients_admit_exactly_to_capacity() {
    // 8 providers race for 4 slots from 8 connections; admissions must
    // total exactly 4 with the rest rejected, and the daemon must drain
    // to a feasible equilibrium.
    let (handle, mut client) = boot(two_slot_market(8), None);
    let addr = handle.addr();
    let results: Vec<Response> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|p| {
                scope.spawn(move |_| {
                    let mut c = Client::connect(addr).expect("connect");
                    c.join(p).expect("join")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    })
    .expect("scope");
    let admitted = results
        .iter()
        .filter(|r| matches!(r, Response::Admitted { .. }))
        .count();
    let rejected = results
        .iter()
        .filter(|r| matches!(r, Response::Rejected { .. }))
        .count();
    assert_eq!(admitted, 4, "{results:?}");
    assert_eq!(rejected, 4, "{results:?}");
    let outcome = drain(handle, &mut client);
    assert!(outcome.equilibrium);
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
}
