//! End-to-end demand loop: a flash-crowd trace replayed against a live
//! writer thread must produce *observed* re-cache moves.
//!
//! The market has one expensive and one cheap cloudlet, two slots each.
//! Epoch 0 admits three services — two land on the cheap cloudlet, the
//! third is forced onto the expensive one. Then a flash crowd: one of
//! the cheap-cloudlet services goes cold (leaves, freeing a cheap slot)
//! while the surge service keeps hammering. The maintenance quanta —
//! scanning hottest-first from the folded demand EWMAs — must re-home
//! the displaced service into the freed cheap slot: a re-cache the
//! replay observes across the epoch boundary.

use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_scenario::{standard_traces, Trace};
use mec_serve::{run_scenario, ScenarioConfig};

/// Cloudlet 0 expensive (high congestion coefficients), cloudlet 1
/// cheap; each fits exactly two of the identical providers.
fn two_tier_market(providers: usize) -> Market {
    let mut b = Market::builder()
        .cloudlet(CloudletSpec::new(4.0, 20.0, 0.9, 0.9))
        .cloudlet(CloudletSpec::new(4.0, 20.0, 0.1, 0.1));
    for _ in 0..providers {
        b = b.provider(ProviderSpec::new(2.0, 8.0, 1.0, 30.0));
    }
    b.uniform_update_cost(0.2).build()
}

#[test]
fn flash_crowd_trace_triggers_observed_recache() {
    // Hand-authored flash schedule (the canonical replayable form):
    // epoch 0 warms services 0..3; from epoch 1 service 2 surges while
    // service 1 dies, freeing the cheap slot the displaced service
    // should be re-homed into.
    let text = "mec-scenario v1 label=flash_burst services=3 seed=7 epochs=3 flash=2\n\
                0 1 2 0 1 2\n\
                2 2 2 2 2 0\n\
                2 2 2 2 2 0\n";
    let trace = Trace::parse_schedule(text).expect("schedule parses");
    let report = run_scenario(two_tier_market(3), &trace, &ScenarioConfig::default());

    assert_eq!(report.label, "flash_burst");
    assert_eq!(report.requests, trace.total_requests());
    assert!(
        report.recaches >= 1,
        "flash crowd freed a cheap slot but no re-cache was observed: {report:?}"
    );
    assert!(report.leaves >= 1, "cold service never left: {report:?}");
    assert!(report.hits > 0);
    assert!(report.equilibrium, "drain must end at equilibrium");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn generated_flash_trace_replays_with_high_hit_rate() {
    // The standard generated flash trace on a market with ample room:
    // every warm service gets cached, so hits dominate.
    let trace = standard_traces(6, 8, 40, 42)
        .into_iter()
        .find(|t| t.label == "flash_crowd")
        .expect("standard flash trace");
    let mut b = Market::builder();
    for _ in 0..3 {
        b = b.cloudlet(CloudletSpec::new(8.0, 40.0, 0.2, 0.2));
    }
    for _ in 0..6 {
        b = b.provider(ProviderSpec::new(2.0, 8.0, 1.0, 30.0));
    }
    let report = run_scenario(
        b.uniform_update_cost(0.2).build(),
        &trace,
        &ScenarioConfig::default(),
    );
    assert!(!trace.flash_targets.is_empty(), "flash trace names targets");
    assert!(
        report.hit_rate() > 0.6,
        "ample capacity should cache the warm set: {report:?}"
    );
    assert!(report.equilibrium);
}
