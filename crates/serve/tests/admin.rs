//! End-to-end tests of the HTTP admin surface over real sockets.
//!
//! Each test boots an in-process daemon with an ephemeral admin port
//! ([`ServerConfig::admin_addr`] = `127.0.0.1:0`), talks HTTP/1.1 to it
//! with a hand-rolled client (the same discipline as the surface under
//! test), and drains through the regular wire protocol. Covered:
//! Prometheus conformance and registry coverage of `GET /metrics`
//! (including counter monotonicity across scrapes), `GET /placement`
//! agreement with the `stats` verb, robustness against malformed and
//! oversized requests, and validation-before-swap on
//! `POST /reload/topology`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mec_core::model::{CloudletSpec, Market, ProviderSpec};
use mec_obs::probes::{ProbeKind, REGISTRY};
use mec_serve::{serve, Client, Response, ServerConfig, ServerHandle};

/// Two cloudlets, each with room for exactly two of the identical
/// providers (same fixture as the wire-protocol integration tests).
fn two_slot_market(providers: usize) -> Market {
    let mut b = Market::builder()
        .cloudlet(CloudletSpec::new(4.0, 20.0, 0.5, 0.5))
        .cloudlet(CloudletSpec::new(4.0, 20.0, 0.3, 0.2));
    for _ in 0..providers {
        b = b.provider(ProviderSpec::new(2.0, 8.0, 1.0, 30.0));
    }
    b.uniform_update_cost(0.2).build()
}

fn boot(market: Market, shards: usize) -> (ServerHandle, Client, SocketAddr) {
    let cfg = ServerConfig {
        shards,
        admin_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    let handle = serve(market, &cfg).expect("boot");
    let admin = handle.admin_addr().expect("admin listener bound");
    let client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    (handle, client, admin)
}

fn drain(handle: ServerHandle, client: &mut Client) {
    assert_eq!(client.shutdown().expect("shutdown"), Response::Draining);
    handle.join();
}

/// Sends raw bytes, returns `(status, body)` of the one-shot response.
fn raw(admin: SocketAddr, request: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(admin).expect("connect admin");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    s.write_all(request).expect("write request");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("read reply");
    let status = reply
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| panic!("no status line in reply: {reply:.60}"));
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(admin: SocketAddr, path: &str) -> (u16, String) {
    raw(
        admin,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(admin: SocketAddr, path: &str, body: &str) -> (u16, String) {
    raw(
        admin,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Pulls `"field":<integer>` out of a flat JSON body.
fn json_u64(body: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let at = body
        .find(&key)
        .unwrap_or_else(|| panic!("no {key} in {body:.120}"));
    body[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body:.120}"))
}

/// The exposition family a probe lands in (mirrors `mec_obs::prom`):
/// per-shard variants like `serve.publish.s0.ns` fold into their base
/// family (`serve_publish_ns`) as `shard`-labeled series.
fn family(name: &str) -> String {
    let segs: Vec<&str> = name.split('.').collect();
    if segs.len() >= 2 {
        let pen = segs[segs.len() - 2];
        if pen.len() > 1 && pen.starts_with('s') && pen[1..].chars().all(|c| c.is_ascii_digit()) {
            let mut folded = segs;
            folded.remove(folded.len() - 2);
            return sanitized(&folded.join("."));
        }
    }
    sanitized(name)
}

/// The admin surface's metric-name sanitization (mirrors
/// `mec_obs::prom`): every char outside `[a-zA-Z0-9_:]` becomes `_`.
fn sanitized(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Parses exposition text into (`# TYPE` map, per-series sample values).
fn parse_prometheus(body: &str) -> (HashMap<String, String>, HashMap<String, f64>) {
    let mut types = HashMap::new();
    let mut samples = HashMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                panic!("malformed TYPE line: {line}");
            };
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "duplicate # TYPE for {name}"
            );
            continue;
        }
        if line.starts_with('#') {
            assert!(line.starts_with("# HELP "), "unknown comment line: {line}");
            continue;
        }
        // A sample: `series value` where series is `name` or `name{...}`.
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let v: f64 = value.parse().unwrap_or_else(|_| {
            panic!("non-numeric sample value in line: {line}");
        });
        let metric = series.split('{').next().expect("series name");
        assert!(
            metric
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name char in line: {line}"
        );
        samples.insert(series.to_string(), v);
    }
    (types, samples)
}

#[test]
fn metrics_covers_registry_and_counters_are_monotonic() {
    let (handle, mut client, admin) = boot(two_slot_market(4), 2);
    for p in 0..3 {
        client.join(p).expect("join");
    }

    let (status, first) = get(admin, "/metrics");
    assert_eq!(status, 200);
    let (types, samples1) = parse_prometheus(&first);

    // Every registered probe that /metrics promises (gauges stream to
    // the JSONL sink only) appears with the right exposition type, even
    // before its first emission.
    for p in REGISTRY {
        let metric = family(p.name);
        match p.kind {
            ProbeKind::Gauge => assert!(
                !types.contains_key(&metric),
                "gauge {} leaked into /metrics",
                p.name
            ),
            ProbeKind::Counter => assert_eq!(
                types.get(&metric).map(String::as_str),
                Some("counter"),
                "missing/mistyped counter {}",
                p.name
            ),
            ProbeKind::Histogram | ProbeKind::Span => assert_eq!(
                types.get(&metric).map(String::as_str),
                Some("summary"),
                "missing/mistyped summary {}",
                p.name
            ),
        }
    }
    // Per-shard publish latency folds into one labeled family.
    assert!(
        first.contains("serve_publish_ns_count{shard=\"0\"}")
            && first.contains("serve_publish_ns_count{shard=\"1\"}"),
        "expected shard-labeled publish series in:\n{first:.400}"
    );

    // More traffic, then a second scrape: counters never move backwards.
    for p in 0..3 {
        client.query(p).expect("query");
    }
    client.join(3).expect("join");
    let (status, second) = get(admin, "/metrics");
    assert_eq!(status, 200);
    let (_, samples2) = parse_prometheus(&second);
    for (series, &v1) in &samples1 {
        let metric = series.split('{').next().expect("name");
        if types.get(metric).map(String::as_str) != Some("counter") {
            continue;
        }
        let v2 = samples2
            .get(series)
            .unwrap_or_else(|| panic!("counter series {series} vanished on rescrape"));
        assert!(*v2 >= v1, "counter {series} went backwards: {v1} -> {v2}");
    }

    drain(handle, &mut client);
}

#[test]
fn placement_agrees_with_the_stats_verb() {
    let (handle, mut client, admin) = boot(two_slot_market(4), 2);
    for p in 0..3 {
        assert!(matches!(
            client.join(p).expect("join"),
            Response::Admitted { .. }
        ));
    }

    // Maintenance epochs may still be applying improving moves right
    // after the joins; poll until one scrape and one stats call observe
    // the same quiesced state.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("stats");
        let (status, body) = get(admin, "/placement");
        assert_eq!(status, 200);
        let agree = json_u64(&body, "seq") == stats.seq
            && json_u64(&body, "active") as usize == stats.active
            && body.matches("\"provider\":").count() == stats.active;
        if agree {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "placement never agreed with stats: {stats:?} vs {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    drain(handle, &mut client);
}

#[test]
fn malformed_and_oversized_requests_do_not_wedge_the_listener() {
    let (handle, mut client, admin) = boot(two_slot_market(2), 1);

    let (status, _) = raw(admin, b"GARBAGE NONSENSE\r\n\r\n");
    assert_eq!(status, 400, "non-HTTP bytes");

    let huge_header = format!(
        "GET /metrics HTTP/1.1\r\nX-Filler: {}\r\n\r\n",
        "x".repeat(16 * 1024)
    );
    let (status, _) = raw(admin, huge_header.as_bytes());
    assert_eq!(status, 431, "oversized head");

    let (status, _) = raw(
        admin,
        b"POST /reload/topology HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n",
    );
    assert_eq!(status, 413, "oversized body");

    let (status, _) = raw(admin, b"DELETE /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405, "unsupported method");

    let (status, _) = get(admin, "/nope");
    assert_eq!(status, 404, "unknown path");

    // A client that sends nothing and hangs up mid-head.
    drop(TcpStream::connect(admin).expect("connect"));

    // The listener survived all of it.
    let (status, body) = get(admin, "/shards");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&body, "shard"), 0);

    drain(handle, &mut client);
}

#[test]
fn topology_reload_validates_before_swapping() {
    let (handle, mut client, admin) = boot(two_slot_market(4), 2);

    let (_, body) = get(admin, "/shards");
    assert_eq!(json_u64(&body, "region_version"), 0);

    // Invalid maps: shard left empty, shard out of range, wrong length,
    // non-numeric. None may change the live map.
    for bad in ["0 0", "5 5", "0 1 0", "zero one"] {
        let (status, reply) = post(admin, "/reload/topology", bad);
        assert_eq!(status, 400, "map '{bad}' accepted: {reply}");
    }
    let (_, body) = get(admin, "/shards");
    assert_eq!(
        json_u64(&body, "region_version"),
        0,
        "rejected reload still bumped the version"
    );

    // A valid swap bumps the version and re-steers cloudlet routing.
    let (status, reply) = post(admin, "/reload/topology", "1,0");
    assert_eq!(status, 200, "{reply}");
    assert_eq!(json_u64(&reply, "region_version"), 1);
    let (_, residuals) = get(admin, "/residuals");
    assert_eq!(json_u64(&residuals, "region_version"), 1);
    assert!(
        residuals.contains("{\"cloudlet\":0,\"shard\":1,"),
        "cloudlet 0 not re-steered to shard 1: {residuals}"
    );

    // The data plane stays usable after the swap.
    assert!(matches!(
        client.join(0).expect("join after reload"),
        Response::Admitted { .. } | Response::Rejected { .. }
    ));

    drain(handle, &mut client);
}

#[test]
fn placement_drilldown_reports_one_provider() {
    let (handle, mut client, admin) = boot(two_slot_market(4), 2);
    assert!(matches!(
        client.join(1).expect("join"),
        Response::Admitted { .. }
    ));
    // Queries feed the demand tracker the drill-down's EWMA comes from.
    for _ in 0..5 {
        client.query(1).expect("query");
    }

    // Poll: the drill-down reads the owning shard's published view,
    // which covers the join once its batch is published.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let body = loop {
        let (status, body) = get(admin, "/placement/1");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"active\":true") {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "drill-down never saw the join: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(json_u64(&body, "provider"), 1);
    assert!(json_u64(&body, "shard") < 2);
    assert!(
        json_u64(&body, "cloudlet") < 2,
        "admitted provider must be cached: {body}"
    );
    // The fixture's demand vector rides along for capacity triage.
    assert_eq!(json_u64(&body, "compute_demand"), 2);
    assert_eq!(json_u64(&body, "bandwidth_demand"), 8);
    for field in [
        "demand_ewma",
        "residual_compute",
        "residual_bandwidth",
        "cost",
    ] {
        assert!(
            body.contains(&format!("\"{field}\":")),
            "{field} missing: {body}"
        );
    }

    // An admitted-but-unknown id is 404, a non-numeric one 400.
    let (status, body) = get(admin, "/placement/99");
    assert_eq!(status, 404, "{body}");
    let (status, body) = get(admin, "/placement/one");
    assert_eq!(status, 400, "{body}");

    drain(handle, &mut client);
}

#[test]
fn reset_histograms_keeps_counters_monotonic() {
    let (handle, mut client, admin) = boot(two_slot_market(4), 1);
    for p in 0..3 {
        client.join(p).expect("join");
        client.query(p).expect("query");
    }

    let (status, first) = get(admin, "/metrics");
    assert_eq!(status, 200);
    let (types, before) = parse_prometheus(&first);

    let (status, reply) = post(admin, "/reset/histograms", "");
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    // `cleared` reports how many distributions were dropped (0 in
    // builds without --features obs, where nothing ever records).
    let _ = json_u64(&reply, "cleared");

    // Histograms may re-baseline, counters must not move backwards.
    let (status, second) = get(admin, "/metrics");
    assert_eq!(status, 200);
    let (_, after) = parse_prometheus(&second);
    for (series, &v1) in &before {
        let metric = series.split('{').next().expect("name");
        if types.get(metric).map(String::as_str) != Some("counter") {
            continue;
        }
        let v2 = after
            .get(series)
            .unwrap_or_else(|| panic!("counter series {series} vanished after reset"));
        assert!(
            *v2 >= v1,
            "counter {series} went backwards across the reset: {v1} -> {v2}"
        );
    }
    // GET on the reset endpoint is not a thing.
    let (status, _) = get(admin, "/reset/histograms");
    assert_eq!(status, 404);

    drain(handle, &mut client);
}
