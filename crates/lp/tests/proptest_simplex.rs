//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random bounded-feasible LPs (box constraints plus
//! random `≤` rows with non-negative coefficients and rhs), then check that
//! the solver's answer is (a) feasible and (b) at least as good as a cloud of
//! random feasible points.

use mec_lp::{check_solution, LpBuilder, Relation, SolverBackend};
use proptest::prelude::*;

const TOL: f64 = 1e-6;

#[derive(Debug, Clone)]
struct RandomLp {
    n: usize,
    c: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    box_ub: f64,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..5).prop_flat_map(|n| {
        let c = proptest::collection::vec(-5.0..5.0f64, n);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(0.0..3.0f64, n), 1.0..10.0f64),
            1..4,
        );
        (Just(n), c, rows, 1.0..5.0f64).prop_map(|(n, c, rows, box_ub)| RandomLp {
            n,
            c,
            rows,
            box_ub,
        })
    })
}

fn build(lp: &RandomLp) -> LpBuilder {
    let mut b = LpBuilder::new(lp.n);
    b.objective(&lp.c);
    for (coeffs, rhs) in &lp.rows {
        b.constraint(coeffs, Relation::Le, *rhs);
    }
    for i in 0..lp.n {
        let mut e = vec![0.0; lp.n];
        e[i] = 1.0;
        b.constraint(&e, Relation::Le, lp.box_ub);
    }
    b
}

fn is_feasible(lp: &RandomLp, x: &[f64]) -> bool {
    x.iter().all(|&v| v >= -TOL && v <= lp.box_ub + TOL)
        && lp
            .rows
            .iter()
            .all(|(coeffs, rhs)| coeffs.iter().zip(x).map(|(a, v)| a * v).sum::<f64>() <= rhs + TOL)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn solution_is_feasible(lp in random_lp()) {
        let sol = build(&lp).solve().expect("box-bounded LP with rhs>0 is feasible");
        prop_assert!(is_feasible(&lp, &sol.x), "solution {:?} infeasible", sol.x);
    }

    #[test]
    fn solution_beats_random_feasible_points(lp in random_lp(), samples in proptest::collection::vec(proptest::collection::vec(0.0..1.0f64, 2..5), 20)) {
        let sol = build(&lp).solve().unwrap();
        for s in &samples {
            // Scale the unit sample into the box; reject if infeasible.
            let x: Vec<f64> = s.iter().cycle().take(lp.n).map(|v| v * lp.box_ub).collect();
            if is_feasible(&lp, &x) {
                let obj: f64 = lp.c.iter().zip(&x).map(|(c, v)| c * v).sum();
                prop_assert!(sol.objective <= obj + TOL,
                    "simplex {} worse than random point {}", sol.objective, obj);
            }
        }
    }

    #[test]
    fn objective_matches_x(lp in random_lp()) {
        let sol = build(&lp).solve().unwrap();
        let recomputed: f64 = lp.c.iter().zip(&sol.x).map(|(c, v)| c * v).sum();
        prop_assert!((sol.objective - recomputed).abs() < 1e-6);
    }

    #[test]
    fn strong_duality_holds(lp in random_lp()) {
        let sol = build(&lp).solve().unwrap();
        // b ordering matches build(): the random rows then the box rows.
        let mut by = 0.0;
        for (k, (_, rhs)) in lp.rows.iter().enumerate() {
            by += rhs * sol.duals[k];
        }
        for i in 0..lp.n {
            by += lp.box_ub * sol.duals[lp.rows.len() + i];
        }
        prop_assert!((by - sol.objective).abs() < 1e-5,
            "b·y = {by} but c·x = {}", sol.objective);
    }

    /// The sparse revised simplex and the dense tableau are independent
    /// implementations; they must agree on the optimum of every random LP,
    /// and both answers must survive the independent certifier.
    #[test]
    fn dense_and_revised_agree(lp in random_lp()) {
        let b = build(&lp);
        let dense = b.solve_with(SolverBackend::Dense).unwrap();
        let revised = b.solve_with(SolverBackend::Revised).unwrap();
        prop_assert!((dense.objective - revised.objective).abs()
            < 1e-6 * (1.0 + dense.objective.abs()),
            "dense {} vs revised {}", dense.objective, revised.objective);
        for (label, sol) in [("dense", &dense), ("revised", &revised)] {
            let violations = check_solution(&b, sol, 1e-6);
            prop_assert!(violations.is_empty(),
                "{label} solution rejected by certifier: {violations:?}");
        }
    }

    #[test]
    fn duals_nonpositive_for_le_rows(lp in random_lp()) {
        // Minimization with all-Le rows: tightening b can only help, so
        // every dual is <= 0.
        let sol = build(&lp).solve().unwrap();
        for (k, d) in sol.duals.iter().enumerate() {
            prop_assert!(*d <= 1e-7, "dual {k} = {d} > 0");
        }
    }
}
