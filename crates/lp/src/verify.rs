//! First-principles verification of simplex solutions.
//!
//! [`check_solution`] re-evaluates an [`LpSolution`] against the original
//! [`LpBuilder`] data — it shares **no** code with the tableau machinery, so
//! a pivoting bug cannot hide from it. It certifies:
//!
//! * every structural variable is non-negative,
//! * every constraint row holds within tolerance (primal feasibility),
//! * the reported objective equals `c · x`,
//! * the duality gap `|c · x − b · y|` is bounded (strong duality holds at
//!   a true optimum, so a large gap means the solver stopped early or the
//!   duals are wrong).
//!
//! With the `verify` cargo feature enabled, [`LpBuilder::solve`] runs these
//! checks on every solution before returning it and panics with a full
//! report on any violation.

use crate::simplex::{LpBuilder, LpSolution, Relation};
use mec_num::{approx_eq, approx_ge, approx_le};

/// A single broken invariant found in an [`LpSolution`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpViolation {
    /// A structural variable is negative beyond tolerance.
    NegativeVariable {
        /// Variable index.
        index: usize,
        /// Its value.
        value: f64,
    },
    /// A constraint row is violated.
    PrimalInfeasible {
        /// Constraint row index (insertion order).
        row: usize,
        /// `A_i · x` as recomputed.
        lhs: f64,
        /// The row's right-hand side.
        rhs: f64,
        /// How far past the relation the row is.
        violation: f64,
    },
    /// The reported objective does not equal `c · x`.
    ObjectiveMismatch {
        /// Objective reported by the solver.
        reported: f64,
        /// `c · x` recomputed from the solution vector.
        recomputed: f64,
    },
    /// `|c · x − b · y|` exceeds the allowed duality gap.
    DualityGap {
        /// Primal objective `c · x`.
        primal: f64,
        /// Dual objective `b · y`.
        dual: f64,
        /// `|primal − dual|`.
        gap: f64,
    },
}

impl std::fmt::Display for LpViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpViolation::NegativeVariable { index, value } => {
                write!(f, "variable x[{index}] = {value} is negative")
            }
            LpViolation::PrimalInfeasible {
                row,
                lhs,
                rhs,
                violation,
            } => write!(
                f,
                "constraint row {row} violated by {violation} (lhs {lhs}, rhs {rhs})"
            ),
            LpViolation::ObjectiveMismatch {
                reported,
                recomputed,
            } => write!(
                f,
                "objective mismatch: solver reported {reported}, c·x is {recomputed}"
            ),
            LpViolation::DualityGap { primal, dual, gap } => write!(
                f,
                "duality gap {gap} (primal {primal}, dual {dual}) exceeds tolerance"
            ),
        }
    }
}

/// Checks `sol` against `lp` from first principles; returns every violation
/// found (empty = certified).
///
/// `tol` is the absolute feasibility tolerance per row/variable; objective
/// and duality-gap comparisons additionally scale it by the objective's
/// magnitude so large instances are not flagged for benign round-off.
///
/// # Panics
///
/// Panics if `sol.x` or `sol.duals` do not match the builder's dimensions
/// (that is a caller bug, not a numerical violation).
pub fn check_solution(lp: &LpBuilder, sol: &LpSolution, tol: f64) -> Vec<LpViolation> {
    assert_eq!(sol.x.len(), lp.var_count(), "solution/variable mismatch");
    assert_eq!(
        sol.duals.len(),
        lp.constraint_count(),
        "dual/constraint mismatch"
    );
    let mut out = Vec::new();

    for (index, &value) in sol.x.iter().enumerate() {
        if !approx_ge(value, 0.0, tol) {
            out.push(LpViolation::NegativeVariable { index, value });
        }
    }

    let mut dual_obj = 0.0;
    for row in 0..lp.constraint_count() {
        let (coeffs, rel, rhs) = lp.constraint_row(row);
        let lhs: f64 = coeffs.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
        // Row-scaled tolerance: a row with large coefficients accumulates
        // proportionally more round-off.
        let scale = 1.0 + rhs.abs() + coeffs.iter().map(|a| a.abs()).fold(0.0, f64::max);
        let row_tol = tol * scale;
        let violation = match rel {
            Relation::Le => (lhs - rhs).max(0.0),
            Relation::Ge => (rhs - lhs).max(0.0),
            Relation::Eq => (lhs - rhs).abs(),
        };
        let ok = match rel {
            Relation::Le => approx_le(lhs, rhs, row_tol),
            Relation::Ge => approx_ge(lhs, rhs, row_tol),
            Relation::Eq => approx_eq(lhs, rhs, row_tol),
        };
        if !ok {
            out.push(LpViolation::PrimalInfeasible {
                row,
                lhs,
                rhs,
                violation,
            });
        }
        dual_obj += rhs * sol.duals[row];
    }

    let recomputed: f64 = lp
        .objective_coeffs()
        .iter()
        .zip(&sol.x)
        .map(|(c, x)| c * x)
        .sum();
    let obj_tol = tol * (1.0 + recomputed.abs());
    if !approx_eq(sol.objective, recomputed, obj_tol) {
        out.push(LpViolation::ObjectiveMismatch {
            reported: sol.objective,
            recomputed,
        });
    }

    let gap = (recomputed - dual_obj).abs();
    // Strong duality is exact in theory; allow round-off proportional to the
    // magnitudes involved.
    let gap_tol = tol * (1.0 + recomputed.abs() + dual_obj.abs()) * 10.0;
    if gap > gap_tol {
        out.push(LpViolation::DualityGap {
            primal: recomputed,
            dual: dual_obj,
            gap,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lp() -> LpBuilder {
        // minimize -x - 2y  s.t.  x + y <= 4,  y <= 3
        let mut lp = LpBuilder::new(2);
        lp.objective(&[-1.0, -2.0]);
        lp.constraint(&[1.0, 1.0], Relation::Le, 4.0);
        lp.constraint(&[0.0, 1.0], Relation::Le, 3.0);
        lp
    }

    #[test]
    fn optimal_solution_certifies_clean() {
        let lp = sample_lp();
        let sol = lp.solve().unwrap();
        assert_eq!(check_solution(&lp, &sol, 1e-7), vec![]);
    }

    #[test]
    fn detects_negative_variable() {
        let lp = sample_lp();
        let mut sol = lp.solve().unwrap();
        sol.x[0] = -0.5;
        let v = check_solution(&lp, &sol, 1e-7);
        assert!(v
            .iter()
            .any(|v| matches!(v, LpViolation::NegativeVariable { index: 0, .. })));
    }

    #[test]
    fn detects_primal_infeasibility() {
        let lp = sample_lp();
        let mut sol = lp.solve().unwrap();
        sol.x = vec![10.0, 10.0]; // breaks both rows
        let v = check_solution(&lp, &sol, 1e-7);
        assert!(v
            .iter()
            .any(|v| matches!(v, LpViolation::PrimalInfeasible { row: 0, .. })));
        assert!(v
            .iter()
            .any(|v| matches!(v, LpViolation::PrimalInfeasible { row: 1, .. })));
    }

    #[test]
    fn detects_objective_mismatch() {
        let lp = sample_lp();
        let mut sol = lp.solve().unwrap();
        sol.objective += 1.0;
        let v = check_solution(&lp, &sol, 1e-7);
        assert!(v
            .iter()
            .any(|v| matches!(v, LpViolation::ObjectiveMismatch { .. })));
    }

    #[test]
    fn detects_duality_gap() {
        let lp = sample_lp();
        let mut sol = lp.solve().unwrap();
        sol.duals = vec![5.0, 5.0]; // bogus shadow prices
        let v = check_solution(&lp, &sol, 1e-7);
        assert!(v
            .iter()
            .any(|v| matches!(v, LpViolation::DualityGap { .. })));
    }

    #[test]
    fn equality_and_ge_rows_checked() {
        // minimize x + y  s.t.  x + y = 2,  x >= 0.5
        let mut lp = LpBuilder::new(2);
        lp.objective(&[1.0, 1.0]);
        lp.constraint(&[1.0, 1.0], Relation::Eq, 2.0);
        lp.constraint(&[1.0, 0.0], Relation::Ge, 0.5);
        let sol = lp.solve().unwrap();
        assert_eq!(check_solution(&lp, &sol, 1e-7), vec![]);
        let mut bad = sol.clone();
        bad.x = vec![0.0, 0.0];
        let v = check_solution(&lp, &bad, 1e-7);
        assert!(v
            .iter()
            .any(|v| matches!(v, LpViolation::PrimalInfeasible { .. })));
    }

    #[test]
    fn violations_render() {
        let lp = sample_lp();
        let mut sol = lp.solve().unwrap();
        sol.x[1] = -1.0;
        for v in check_solution(&lp, &sol, 1e-7) {
            assert!(!v.to_string().is_empty());
        }
    }
}
