//! Sparse revised simplex with product-form (eta-file) basis updates.
//!
//! The dense tableau in [`crate::simplex`] carries the whole `m × (n+s+a)`
//! matrix through every pivot: an Appro-sized GAP relaxation (1000
//! providers × 80 cloudlets ⇒ ~81 000 columns × ~1 100 rows) costs
//! hundreds of megabytes and minutes of column-strided memory traffic.
//! The revised simplex stores the constraint matrix **once**, column-wise
//! sparse (GAP assignment columns have exactly two nonzeros: one item row,
//! one bin row), and represents the basis inverse as
//!
//! ```text
//! B⁻¹ = E_k · E_{k-1} · … · E_1 · B₀⁻¹
//! ```
//!
//! where `B₀` is refactorized into a dense LU every `refactor_interval(m)`
//! pivots and each `E_i` is an elementary *eta* matrix recorded at pivot
//! time. Per iteration it pays one BTRAN (duals), one reduced-cost scan
//! over the sparse columns (Dantzig rule within a rotating partial-pricing
//! block), one FTRAN (entering column) and one `O(m)` eta append — instead
//! of an `O(m · ncols)` dense elimination.
//!
//! The solver is deterministic: partial pricing scans blocks in a fixed
//! rotation, ties in the ratio test break on the smallest basis index
//! (artificials preferred out first), and a Bland-rule fallback engages
//! after a fixed iteration budget so cycling cannot occur. Numerics use
//! the same absolute-tolerance style as the dense path; solutions can be
//! re-certified from first principles by [`crate::verify::check_solution`]
//! (automatic under the `verify` cargo feature).

use crate::simplex::{LpBuilder, LpError, LpSolution, Relation};

/// Pivot/ratio tolerance (matches the dense tableau's `EPS`).
const EPS: f64 = 1e-9;

/// Refactorize the basis (fresh LU, eta file cleared) after this many
/// pivots: keeps FTRAN/BTRAN cost at `O(m² + interval·m)` and stops
/// round-off from accumulating through long eta chains. Scaled to the row
/// count because a dense LU refactor costs `O(m³)`: balancing the
/// amortized refactor cost `m³/interval` against the per-iteration eta
/// cost `interval·m` puts the optimum near `m`, clamped for stability.
fn refactor_interval(m: usize) -> usize {
    (m / 2).clamp(32, 512)
}

/// Minimum partial-pricing block; blocks also never shrink below
/// `ncols / 8` so a sweep finishes in a bounded number of blocks.
const MIN_PRICE_BLOCK: usize = 256;

/// Column-wise sparse standard form `min c·x  s.t.  A x = b, x ≥ 0` after
/// slack/surplus/artificial augmentation and `b ≥ 0` normalization.
struct SparseForm {
    m: usize,
    ncols: usize,
    /// First artificial column (artificials occupy `art0..ncols`).
    art0: usize,
    /// CSC storage: column `j` holds entries `idx[ptr[j]..ptr[j+1]]`.
    ptr: Vec<usize>,
    rows: Vec<u32>,
    vals: Vec<f64>,
    b: Vec<f64>,
    /// −1 where the original row was multiplied by −1 to make `b ≥ 0`.
    row_sign: Vec<f64>,
}

impl SparseForm {
    fn build(lp: &LpBuilder) -> SparseForm {
        let m = lp.constraint_count();
        let n = lp.var_count();
        let mut slack = 0usize;
        let mut art = 0usize;
        for i in 0..m {
            let (_, rel, rhs) = lp.constraint_row(i);
            match flip(rel, rhs < 0.0) {
                Relation::Le => slack += 1,
                Relation::Ge => {
                    slack += 1;
                    art += 1;
                }
                Relation::Eq => art += 1,
            }
        }
        let ncols = n + slack + art;
        let art0 = n + slack;

        // Structural columns: gather per-column entries row-by-row (the
        // builder stores rows dense, so this is one sequential sweep).
        let mut col_entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); ncols];
        let mut b = vec![0.0; m];
        let mut row_sign = vec![1.0; m];
        let mut next_slack = n;
        let mut next_art = art0;
        for i in 0..m {
            let (coeffs, rel, rhs) = lp.constraint_row(i);
            let sign = if rhs < 0.0 { -1.0 } else { 1.0 };
            row_sign[i] = sign;
            b[i] = sign * rhs;
            for (j, &v) in coeffs.iter().enumerate() {
                // Exact-zero test on stored input data: a coefficient the
                // caller never set must not materialize as a stored zero.
                // lint: allow(float-cmp)
                if v != 0.0 {
                    col_entries[j].push((i as u32, sign * v));
                }
            }
            match flip(rel, rhs < 0.0) {
                Relation::Le => {
                    col_entries[next_slack].push((i as u32, 1.0));
                    next_slack += 1;
                }
                Relation::Ge => {
                    col_entries[next_slack].push((i as u32, -1.0));
                    next_slack += 1;
                    col_entries[next_art].push((i as u32, 1.0));
                    next_art += 1;
                }
                Relation::Eq => {
                    col_entries[next_art].push((i as u32, 1.0));
                    next_art += 1;
                }
            }
        }
        let nnz: usize = col_entries.iter().map(Vec::len).sum();
        let mut ptr = Vec::with_capacity(ncols + 1);
        let mut rows = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        ptr.push(0);
        for col in &col_entries {
            for &(r, v) in col {
                rows.push(r);
                vals.push(v);
            }
            ptr.push(rows.len());
        }
        SparseForm {
            m,
            ncols,
            art0,
            ptr,
            rows,
            vals,
            b,
            row_sign,
        }
    }

    #[inline]
    fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.ptr[j], self.ptr[j + 1]);
        (&self.rows[lo..hi], &self.vals[lo..hi])
    }

    /// `y · A_j` over the sparse column.
    #[inline]
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        rows.iter()
            .zip(vals)
            .map(|(&r, &v)| y[r as usize] * v)
            .sum()
    }
}

fn flip(rel: Relation, negate: bool) -> Relation {
    if !negate {
        return rel;
    }
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

/// Dense LU factorization of the basis matrix with partial pivoting.
/// `f` holds L (unit diagonal, below) and U (on/above) row-major; `ft` is
/// the transposed copy so BTRAN's triangular solves also stream row-major.
struct Lu {
    m: usize,
    f: Vec<f64>,
    ft: Vec<f64>,
    perm: Vec<usize>,
}

impl Lu {
    /// Factors the matrix whose columns are the basis columns of `form`.
    /// Returns `None` if the basis is numerically singular.
    fn factor(form: &SparseForm, basis: &[usize]) -> Option<Lu> {
        let m = form.m;
        let mut f = vec![0.0; m * m];
        for (k, &j) in basis.iter().enumerate() {
            let (rows, vals) = form.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                f[r as usize * m + k] = v;
            }
        }
        let mut perm: Vec<usize> = (0..m).collect();
        for k in 0..m {
            let mut p = k;
            let mut best = f[k * m + k].abs();
            for i in k + 1..m {
                let a = f[i * m + k].abs();
                if a > best {
                    best = a;
                    p = i;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if p != k {
                perm.swap(k, p);
                for j in 0..m {
                    f.swap(k * m + j, p * m + j);
                }
            }
            let inv = 1.0 / f[k * m + k];
            for i in k + 1..m {
                let l = f[i * m + k] * inv;
                f[i * m + k] = l;
                if l.abs() > 0.0 {
                    for j in k + 1..m {
                        f[i * m + j] -= l * f[k * m + j];
                    }
                }
            }
        }
        let mut ft = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                ft[j * m + i] = f[i * m + j];
            }
        }
        Some(Lu { m, f, ft, perm })
    }

    /// Solves `B x = rhs` in place (`rhs` becomes `x`).
    fn solve(&self, rhs: &mut [f64], scratch: &mut Vec<f64>) {
        let m = self.m;
        scratch.clear();
        scratch.extend(self.perm.iter().map(|&p| rhs[p]));
        // Forward: L (unit diagonal).
        for i in 0..m {
            let row = &self.f[i * m..i * m + i];
            let mut s = scratch[i];
            for (j, &l) in row.iter().enumerate() {
                s -= l * scratch[j];
            }
            scratch[i] = s;
        }
        // Backward: U.
        for i in (0..m).rev() {
            let row = &self.f[i * m..(i + 1) * m];
            let mut s = scratch[i];
            for (j, &u) in row.iter().enumerate().skip(i + 1) {
                s -= u * scratch[j];
            }
            scratch[i] = s / row[i];
        }
        rhs.copy_from_slice(scratch);
    }

    /// Solves `Bᵀ y = rhs` in place (`rhs` becomes `y`).
    fn solve_transposed(&self, rhs: &mut [f64], scratch: &mut Vec<f64>) {
        let m = self.m;
        scratch.clear();
        scratch.extend_from_slice(rhs);
        // Forward: Uᵀ (rows of `ft` are columns of U).
        for i in 0..m {
            let row = &self.ft[i * m..i * m + i];
            let mut s = scratch[i];
            for (j, &u) in row.iter().enumerate() {
                s -= u * scratch[j];
            }
            scratch[i] = s / self.ft[i * m + i];
        }
        // Backward: Lᵀ (unit diagonal).
        for i in (0..m).rev() {
            let row = &self.ft[i * m..(i + 1) * m];
            let mut s = scratch[i];
            for (j, &l) in row.iter().enumerate().skip(i + 1) {
                s -= l * scratch[j];
            }
            scratch[i] = s;
        }
        for (i, &p) in self.perm.iter().enumerate() {
            rhs[p] = scratch[i];
        }
    }
}

/// One product-form update: the FTRAN'd entering column `d` and the pivot
/// row `r` (`B_new⁻¹ = E · B_old⁻¹`).
struct Eta {
    r: usize,
    d: Vec<f64>,
}

struct Revised<'a> {
    form: &'a SparseForm,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    lu: Lu,
    etas: Vec<Eta>,
    /// Current basic-variable values `B⁻¹ b`, maintained incrementally and
    /// recomputed at every refactorization.
    xb: Vec<f64>,
    /// Rotating partial-pricing cursor.
    cursor: usize,
    scratch: Vec<f64>,
    /// Pivot / refactorization tallies, published to `mec-obs` on drop so
    /// every exit path (including error returns) reports them.
    pivots: u64,
    refactorizations: u64,
}

impl Drop for Revised<'_> {
    fn drop(&mut self) {
        mec_obs::counter_add("lp.pivots", self.pivots);
        mec_obs::counter_add("lp.refactorizations", self.refactorizations);
    }
}

impl<'a> Revised<'a> {
    fn new(form: &'a SparseForm) -> Result<Revised<'a>, LpError> {
        let m = form.m;
        // Initial basis: the slack (Le rows) / artificial (Ge, Eq rows)
        // column of each row — B₀ is a signed permutation, trivially LU-able.
        let mut basis = vec![usize::MAX; m];
        let mut in_basis = vec![false; form.ncols];
        for j in form.art0..form.ncols {
            let (rows, _) = form.col(j);
            basis[rows[0] as usize] = j;
        }
        let n_struct_slack = form.art0;
        for j in 0..n_struct_slack {
            let (rows, vals) = form.col(j);
            // Slack columns (+1 on their row) seed rows with no artificial.
            if rows.len() == 1 && vals[0] > 0.0 {
                let r = rows[0] as usize;
                if basis[r] == usize::MAX {
                    basis[r] = j;
                }
            }
        }
        debug_assert!(basis.iter().all(|&j| j != usize::MAX));
        for &j in &basis {
            in_basis[j] = true;
        }
        let lu = Lu::factor(form, &basis).ok_or(LpError::IterationLimit)?;
        let mut me = Revised {
            form,
            basis,
            in_basis,
            lu,
            etas: Vec::new(),
            xb: vec![0.0; m],
            cursor: 0,
            scratch: Vec::with_capacity(m),
            pivots: 0,
            refactorizations: 0,
        };
        me.recompute_xb();
        Ok(me)
    }

    fn recompute_xb(&mut self) {
        self.xb.copy_from_slice(&self.form.b);
        let mut xb = std::mem::take(&mut self.xb);
        self.lu.solve(&mut xb, &mut self.scratch);
        self.apply_etas(&mut xb);
        self.xb = xb;
    }

    #[inline]
    fn apply_etas(&self, u: &mut [f64]) {
        for eta in &self.etas {
            let t = u[eta.r] / eta.d[eta.r];
            if t.abs() > 1e-300 {
                for (ui, &di) in u.iter_mut().zip(&eta.d) {
                    *ui -= di * t;
                }
            }
            u[eta.r] = t;
        }
    }

    /// FTRAN: `u = B⁻¹ A_j` for sparse column `j`.
    fn ftran(&mut self, j: usize) -> Vec<f64> {
        let mut u = vec![0.0; self.form.m];
        let (rows, vals) = self.form.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            u[r as usize] = v;
        }
        self.lu.solve(&mut u, &mut self.scratch);
        self.apply_etas(&mut u);
        u
    }

    /// BTRAN: `y = c_B B⁻¹` for the given full cost vector.
    fn btran(&mut self, cost: &[f64]) -> Vec<f64> {
        let mut y: Vec<f64> = self.basis.iter().map(|&j| cost[j]).collect();
        // Apply the etas transposed, newest first: only component `r`
        // of the running vector changes per eta.
        for eta in self.etas.iter().rev() {
            let s: f64 = y.iter().zip(&eta.d).map(|(a, b)| a * b).sum();
            y[eta.r] = (y[eta.r] - (s - y[eta.r] * eta.d[eta.r])) / eta.d[eta.r];
        }
        self.lu.solve_transposed(&mut y, &mut self.scratch);
        y
    }

    fn refactorize(&mut self) -> Result<(), LpError> {
        self.refactorizations += 1;
        self.lu = Lu::factor(self.form, &self.basis).ok_or(LpError::IterationLimit)?;
        self.etas.clear();
        self.recompute_xb();
        Ok(())
    }

    /// Applies the pivot `(leave row r, enter column q)` given the FTRAN'd
    /// entering column `d`.
    fn pivot(&mut self, r: usize, q: usize, d: Vec<f64>) -> Result<(), LpError> {
        self.pivots += 1;
        let t = self.xb[r] / d[r];
        for (xi, &di) in self.xb.iter_mut().zip(&d) {
            *xi -= di * t;
        }
        self.xb[r] = t;
        // Degenerate or round-off negatives are clamped like the dense
        // path's `rhs(i).max(0.0)` read-out.
        for xi in self.xb.iter_mut() {
            if *xi < 0.0 && *xi > -1e-9 {
                *xi = 0.0;
            }
        }
        self.in_basis[self.basis[r]] = false;
        self.in_basis[q] = true;
        self.basis[r] = q;
        self.etas.push(Eta { r, d });
        if self.etas.len() >= refactor_interval(self.form.m) {
            self.refactorize()?;
        }
        Ok(())
    }

    /// One pricing pass: returns the entering column with the most
    /// negative reduced cost inside the first rotating block that contains
    /// any candidate (Dantzig within a block = partial pricing), or `None`
    /// at optimality. `bland` switches to first-index selection.
    fn price<F: Fn(usize) -> bool>(
        &mut self,
        cost: &[f64],
        y: &[f64],
        allowed: &F,
        bland: bool,
    ) -> Option<usize> {
        let ncols = self.form.ncols;
        let block = MIN_PRICE_BLOCK.max(ncols / 8);
        let tol = EPS * 10.0;
        let mut scanned = 0usize;
        let mut best: Option<(usize, f64)> = None;
        let mut block_seen = 0usize;
        while scanned < ncols {
            let j = self.cursor;
            self.cursor += 1;
            if self.cursor >= ncols {
                self.cursor = 0;
            }
            scanned += 1;
            block_seen += 1;
            if allowed(j) && !self.in_basis[j] {
                let rj = cost[j] - self.form.col_dot(j, y);
                if rj < -tol {
                    if bland {
                        // Bland: the first candidate ends the scan.
                        return Some(j);
                    }
                    if best.is_none_or(|(_, b)| rj < b) {
                        best = Some((j, rj));
                    }
                }
            }
            if block_seen >= block {
                if best.is_some() {
                    break;
                }
                block_seen = 0;
            }
        }
        best.map(|(j, _)| j)
    }

    /// Ratio test on the FTRAN'd entering column: smallest `xb_i / d_i`
    /// over `d_i > EPS`; ties prefer kicking artificials out, then the
    /// smallest basis index (deterministic, Bland-compatible).
    fn ratio_test(&self, d: &[f64]) -> Option<usize> {
        let art0 = self.form.art0;
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for (i, &di) in d.iter().enumerate() {
            if di > EPS {
                let ratio = self.xb[i].max(0.0) / di;
                let better = match leave {
                    None => true,
                    Some(l) => {
                        ratio < best_ratio - EPS
                            || (ratio < best_ratio + EPS && {
                                let (bi, bl) = (self.basis[i], self.basis[l]);
                                // Prefer artificial leavers, then low index.
                                match ((bi >= art0), (bl >= art0)) {
                                    (true, false) => true,
                                    (false, true) => false,
                                    _ => bi < bl,
                                }
                            })
                    }
                };
                if better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        leave
    }

    /// Simplex iterations minimizing `cost`; `allowed` restricts entering
    /// columns (phase 2 excludes artificials).
    fn optimize<F: Fn(usize) -> bool>(&mut self, cost: &[f64], allowed: F) -> Result<(), LpError> {
        let max_iter = 2000 + 20 * (self.form.m + self.form.ncols);
        let bland_after = 1000 + 10 * (self.form.m + self.form.ncols);
        for iter in 0..max_iter {
            let bland = iter >= bland_after;
            let y = self.btran(cost);
            let Some(q) = self.price(cost, &y, &allowed, bland) else {
                return Ok(());
            };
            let d = self.ftran(q);
            let Some(r) = self.ratio_test(&d) else {
                return Err(LpError::Unbounded);
            };
            if d[r].abs() <= EPS {
                // Numerically unusable pivot: refresh the factorization
                // and re-price rather than dividing by noise.
                self.refactorize()?;
                continue;
            }
            self.pivot(r, q, d)?;
        }
        Err(LpError::IterationLimit)
    }

    /// Drives basic artificials sitting at zero level out of the basis
    /// where any admissible pivot exists (post-phase-1 cleanup).
    fn expel_artificials(&mut self) -> Result<(), LpError> {
        let art0 = self.form.art0;
        for r in 0..self.form.m {
            if self.basis[r] < art0 {
                continue;
            }
            // Row r of B⁻¹A: BTRAN of e_r, then a sparse dot per column.
            let mut e = vec![0.0; self.form.m];
            e[r] = 1.0;
            let mut row = {
                let mut y: Vec<f64> = (0..self.form.m)
                    .map(|i| if i == r { 1.0 } else { 0.0 })
                    .collect();
                for eta in self.etas.iter().rev() {
                    let s: f64 = y.iter().zip(&eta.d).map(|(a, b)| a * b).sum();
                    y[eta.r] = (y[eta.r] - (s - y[eta.r] * eta.d[eta.r])) / eta.d[eta.r];
                }
                self.lu.solve_transposed(&mut y, &mut self.scratch);
                y
            };
            // Guard against drift in the unit vector.
            if !row.iter().all(|v| v.is_finite()) {
                self.refactorize()?;
                row = {
                    let mut y = e;
                    self.lu.solve_transposed(&mut y, &mut self.scratch);
                    y
                };
            }
            let enter =
                (0..art0).find(|&j| !self.in_basis[j] && self.form.col_dot(j, &row).abs() > 1e-7);
            if let Some(q) = enter {
                let d = self.ftran(q);
                if d[r].abs() > 1e-7 {
                    self.pivot(r, q, d)?;
                }
            }
        }
        Ok(())
    }
}

/// Solves `lp` with the sparse revised simplex. Same contract as the dense
/// [`LpBuilder::solve_dense`]: identical error taxonomy, duals in original
/// row order, structural solution vector.
pub(crate) fn solve_revised(lp: &LpBuilder) -> Result<LpSolution, LpError> {
    let _span = mec_obs::span("lp.revised.solve");
    mec_obs::counter_add("lp.revised.solves", 1);
    let n = lp.var_count();
    let c = lp.objective_coeffs();
    let form = SparseForm::build(lp);
    if form.m == 0 {
        // No constraints: x = 0 unless some cost is negative (unbounded) —
        // mirrors the dense tableau's behaviour.
        if c.iter().any(|&cj| cj < -EPS) {
            return Err(LpError::Unbounded);
        }
        return Ok(LpSolution {
            x: vec![0.0; n],
            objective: 0.0,
            duals: Vec::new(),
        });
    }
    let mut s = Revised::new(&form)?;

    // Phase 1: minimize the sum of artificials (skipped when the initial
    // basis is all-slack).
    if form.art0 < form.ncols && s.basis.iter().any(|&j| j >= form.art0) {
        let mut cost1 = vec![0.0; form.ncols];
        for c1 in cost1.iter_mut().skip(form.art0) {
            *c1 = 1.0;
        }
        s.optimize(&cost1, |_| true)?;
        let infeas: f64 = s
            .basis
            .iter()
            .zip(&s.xb)
            .filter(|(&j, _)| j >= form.art0)
            .map(|(_, &v)| v.max(0.0))
            .sum();
        if infeas > 1e-6 {
            return Err(LpError::Infeasible);
        }
        s.expel_artificials()?;
    }

    // Phase 2: the true objective; artificials may not re-enter.
    let mut cost2 = vec![0.0; form.ncols];
    cost2[..n].copy_from_slice(c);
    let art0 = form.art0;
    s.optimize(&cost2, |j| j < art0)?;

    let mut x = vec![0.0; n];
    for (i, &j) in s.basis.iter().enumerate() {
        if j < n {
            x[j] = s.xb[i].max(0.0);
        }
    }
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();

    // Duals: y = c_B B⁻¹ in the normalized row space; undo the b ≥ 0
    // normalization sign per original row.
    let y = s.btran(&cost2);
    let duals = y
        .iter()
        .zip(&form.row_sign)
        .map(|(&yi, &sg)| sg * yi)
        .collect();

    Ok(LpSolution {
        x,
        objective,
        duals,
    })
}

#[cfg(test)]
mod tests {
    use crate::simplex::{LpBuilder, LpError, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Every dense-tableau unit case, replayed through the revised path.
    #[test]
    fn matches_dense_on_reference_cases() {
        let cases: Vec<LpBuilder> = {
            let mut v = Vec::new();
            let mut lp = LpBuilder::new(2);
            lp.objective(&[-1.0, -2.0]);
            lp.constraint(&[1.0, 1.0], Relation::Le, 4.0);
            lp.constraint(&[0.0, 1.0], Relation::Le, 3.0);
            v.push(lp);
            let mut lp = LpBuilder::new(2);
            lp.objective(&[1.0, 1.0]);
            lp.constraint(&[1.0, 2.0], Relation::Eq, 4.0);
            v.push(lp);
            let mut lp = LpBuilder::new(2);
            lp.objective(&[2.0, 3.0]);
            lp.constraint(&[1.0, 1.0], Relation::Ge, 5.0);
            lp.constraint(&[1.0, 0.0], Relation::Le, 3.0);
            v.push(lp);
            let mut lp = LpBuilder::new(1);
            lp.objective(&[1.0]);
            lp.constraint(&[-1.0], Relation::Le, -3.0);
            v.push(lp);
            let mut lp = LpBuilder::new(3);
            lp.objective(&[-0.75, 150.0, -0.02]);
            lp.constraint(&[0.25, -60.0, -0.04], Relation::Le, 0.0);
            lp.constraint(&[0.5, -90.0, -0.02], Relation::Le, 0.0);
            lp.constraint(&[0.0, 0.0, 1.0], Relation::Le, 1.0);
            v.push(lp);
            let mut lp = LpBuilder::new(4);
            lp.objective(&[1.0, 3.0, 2.0, 1.0]);
            lp.constraint(&[1.0, 1.0, 0.0, 0.0], Relation::Eq, 1.0);
            lp.constraint(&[0.0, 0.0, 1.0, 1.0], Relation::Eq, 1.0);
            lp.constraint(&[1.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
            lp.constraint(&[0.0, 1.0, 0.0, 1.0], Relation::Le, 1.0);
            v.push(lp);
            let mut lp = LpBuilder::new(2);
            lp.objective(&[1.0, 2.0]);
            lp.constraint(&[1.0, 1.0], Relation::Eq, 2.0);
            lp.constraint(&[2.0, 2.0], Relation::Eq, 4.0);
            v.push(lp);
            v
        };
        for (k, lp) in cases.iter().enumerate() {
            let dense = lp.solve_dense().unwrap();
            let revised = super::solve_revised(lp).unwrap();
            assert!(
                (dense.objective - revised.objective).abs() < 1e-6,
                "case {k}: dense {} vs revised {}",
                dense.objective,
                revised.objective
            );
            let violations = crate::verify::check_solution(lp, &revised, 1e-6);
            assert!(violations.is_empty(), "case {k}: {violations:?}");
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpBuilder::new(1);
        lp.objective(&[1.0]);
        lp.constraint(&[1.0], Relation::Le, 1.0);
        lp.constraint(&[1.0], Relation::Ge, 2.0);
        assert_eq!(super::solve_revised(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpBuilder::new(1);
        lp.objective(&[-1.0]);
        lp.constraint(&[-1.0], Relation::Le, 0.0);
        assert_eq!(super::solve_revised(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn unconstrained_zero_or_unbounded() {
        let lp = LpBuilder::new(2);
        let s = super::solve_revised(&lp).unwrap();
        assert_close(s.objective, 0.0);
        let mut lp = LpBuilder::new(1);
        lp.objective(&[-1.0]);
        assert_eq!(super::solve_revised(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn duals_match_dense() {
        let mut lp = LpBuilder::new(2);
        lp.objective(&[2.0, 3.0]);
        lp.constraint(&[1.0, 1.0], Relation::Ge, 5.0);
        lp.constraint(&[1.0, 0.0], Relation::Le, 3.0);
        let d = lp.solve_dense().unwrap();
        let r = super::solve_revised(&lp).unwrap();
        for (a, b) in d.duals.iter().zip(&r.duals) {
            assert_close(*a, *b);
        }
    }

    /// A GAP-shaped relaxation large enough to cross several refactorization
    /// intervals: 60 items × 12 bins ⇒ 720 structural columns, 72 rows.
    #[test]
    fn gap_shaped_instance_crosses_refactorizations() {
        let items = 60usize;
        let bins = 12usize;
        let nv = items * bins;
        let mut lp = LpBuilder::new(nv);
        let costs: Vec<f64> = (0..nv)
            .map(|v| {
                let (i, j) = (v / bins, v % bins);
                1.0 + ((i * 7 + j * 13) % 17) as f64
            })
            .collect();
        lp.objective(&costs);
        for i in 0..items {
            let mut row = vec![0.0; nv];
            for j in 0..bins {
                row[i * bins + j] = 1.0;
            }
            lp.constraint(&row, Relation::Eq, 1.0);
        }
        for j in 0..bins {
            let mut row = vec![0.0; nv];
            for i in 0..items {
                row[i * bins + j] = 0.5 + ((i + j) % 3) as f64 * 0.25;
            }
            lp.constraint(&row, Relation::Le, 4.5);
        }
        let dense = lp.solve_dense().unwrap();
        let revised = super::solve_revised(&lp).unwrap();
        assert!(
            (dense.objective - revised.objective).abs() < 1e-5,
            "dense {} vs revised {}",
            dense.objective,
            revised.objective
        );
        let violations = crate::verify::check_solution(&lp, &revised, 1e-5);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
