//! Two-phase dense tableau simplex.
//!
//! Deterministic: Dantzig pricing with a Bland's-rule fallback after a fixed
//! iteration budget, so cycling cannot occur. All numerics use absolute
//! tolerances scaled to the problem data.

use mec_num::approx_zero;
use std::fmt;

/// Relation of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `A_i · x ≤ b_i`
    Le,
    /// `A_i · x = b_i`
    Eq,
    /// `A_i · x ≥ b_i`
    Ge,
}

/// Errors returned by [`LpBuilder::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// A coefficient slice had the wrong length.
    DimensionMismatch {
        /// Number of structural variables the builder was created with.
        expected: usize,
        /// Length of the offending slice.
        got: usize,
    },
    /// The iteration budget was exhausted (numerical trouble).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::DimensionMismatch { expected, got } => {
                write!(f, "coefficient slice has length {got}, expected {expected}")
            }
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// Which simplex implementation answers a [`LpBuilder::solve_with`] call.
///
/// Both backends implement the same two-phase primal simplex contract —
/// identical error taxonomy, duals in row-insertion order — and both are
/// re-certified by [`crate::verify::check_solution`] under the `verify`
/// feature. They differ only in data layout and per-iteration cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Sparse revised simplex (column-wise storage, eta-file basis updates
    /// with periodic LU refactorization, Dantzig + partial pricing). The
    /// default: on GAP-shaped relaxations with 2 nonzeros per structural
    /// column it is orders of magnitude faster than the tableau.
    #[default]
    Revised,
    /// Dense two-phase tableau — the original implementation, kept as a
    /// slow reference oracle for differential testing.
    Dense,
}

/// An optimal solution of a linear program.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal values of the structural variables.
    pub x: Vec<f64>,
    /// Optimal objective value `c · x`.
    pub objective: f64,
    /// Dual values (shadow prices), one per constraint row in insertion
    /// order. For a minimization, `duals[i]` is the marginal change of the
    /// optimal objective per unit increase of `b_i`; strong duality
    /// (`b · y = c · x`) holds at the optimum.
    pub duals: Vec<f64>,
}

/// Builder for a minimization LP over non-negative variables.
///
/// See the [crate-level docs](crate) for the problem form and an example.
#[derive(Debug, Clone)]
pub struct LpBuilder {
    n: usize,
    c: Vec<f64>,
    rows: Vec<Row>,
}

#[derive(Debug, Clone)]
struct Row {
    coeffs: Vec<f64>,
    rel: Relation,
    rhs: f64,
}

const EPS: f64 = 1e-9;

impl LpBuilder {
    /// Creates a builder for an LP with `n` structural variables, all with a
    /// zero objective coefficient until [`LpBuilder::objective`] is called.
    pub fn new(n: usize) -> Self {
        LpBuilder {
            n,
            c: vec![0.0; n],
            rows: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn var_count(&self) -> usize {
        self.n
    }

    /// Number of constraint rows added so far.
    pub fn constraint_count(&self) -> usize {
        self.rows.len()
    }

    /// Coefficients, relation and right-hand side of constraint row `i`
    /// (insertion order). Used by [`crate::verify`] to re-check solutions
    /// from first principles.
    ///
    /// # Panics
    ///
    /// Panics if `i >= constraint_count()`.
    pub fn constraint_row(&self, i: usize) -> (&[f64], Relation, f64) {
        let r = &self.rows[i];
        (&r.coeffs, r.rel, r.rhs)
    }

    /// The objective coefficients (zeros until [`LpBuilder::objective`]).
    pub fn objective_coeffs(&self) -> &[f64] {
        &self.c
    }

    /// Sets the objective coefficients (minimization).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::DimensionMismatch`] if `coeffs.len() != n`.
    pub fn objective(&mut self, coeffs: &[f64]) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.n,
            "objective has {} coefficients, LP has {} variables",
            coeffs.len(),
            self.n
        );
        self.c.copy_from_slice(coeffs);
        self
    }

    /// Adds the constraint `coeffs · x (rel) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n` or if any value is non-finite.
    pub fn constraint(&mut self, coeffs: &[f64], rel: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.n,
            "constraint has {} coefficients, LP has {} variables",
            coeffs.len(),
            self.n
        );
        assert!(
            coeffs.iter().all(|v| v.is_finite()) && rhs.is_finite(),
            "constraint contains non-finite values"
        );
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
        self
    }

    /// Solves the LP with the default backend
    /// ([`SolverBackend::Revised`], the sparse revised simplex).
    ///
    /// With the `verify` cargo feature enabled, the solution is re-checked
    /// against the original problem data ([`crate::verify::check_solution`])
    /// before being returned; a violation panics with a full report.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — no point satisfies all constraints.
    /// * [`LpError::Unbounded`] — the objective decreases without bound.
    /// * [`LpError::IterationLimit`] — the pivot budget was exhausted.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.solve_with(SolverBackend::default())
    }

    /// Solves the LP with the dense two-phase tableau — the reference
    /// oracle. Same contract (and `verify`-feature self-certification) as
    /// [`LpBuilder::solve`]; use it in differential tests against the
    /// revised backend.
    ///
    /// # Errors
    ///
    /// Same as [`LpBuilder::solve`].
    pub fn solve_dense(&self) -> Result<LpSolution, LpError> {
        self.solve_with(SolverBackend::Dense)
    }

    /// Solves the LP with an explicit [`SolverBackend`].
    ///
    /// # Errors
    ///
    /// Same as [`LpBuilder::solve`].
    ///
    /// # Examples
    ///
    /// Both backends return the same optimum — useful for differential
    /// testing:
    ///
    /// ```
    /// use mec_lp::{LpBuilder, Relation, SolverBackend};
    ///
    /// // minimize  x + y   s.t.  x + 2y >= 4,  3x + y >= 3
    /// let mut lp = LpBuilder::new(2);
    /// lp.objective(&[1.0, 1.0]);
    /// lp.constraint(&[1.0, 2.0], Relation::Ge, 4.0);
    /// lp.constraint(&[3.0, 1.0], Relation::Ge, 3.0);
    ///
    /// let fast = lp.solve_with(SolverBackend::Revised)?;
    /// let oracle = lp.solve_with(SolverBackend::Dense)?;
    /// assert!((fast.objective - oracle.objective).abs() < 1e-9);
    /// # Ok::<(), mec_lp::LpError>(())
    /// ```
    pub fn solve_with(&self, backend: SolverBackend) -> Result<LpSolution, LpError> {
        let sol = match backend {
            SolverBackend::Revised => crate::revised::solve_revised(self)?,
            SolverBackend::Dense => Tableau::build(self).solve(&self.c, self.n)?,
        };
        #[cfg(feature = "verify")]
        {
            let violations = crate::verify::check_solution(self, &sol, 1e-6);
            assert!(
                violations.is_empty(),
                "simplex self-certification failed ({backend:?} backend):\n{}",
                violations
                    .iter()
                    .map(|v| format!("  - {v}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
        Ok(sol)
    }
}

/// Dense simplex tableau in canonical form.
struct Tableau {
    m: usize,
    /// Total columns excluding the RHS.
    ncols: usize,
    /// Row-major `m × (ncols + 1)`; the last column is the RHS.
    t: Vec<f64>,
    basis: Vec<usize>,
    /// First artificial column index (artificials occupy `art0..ncols`).
    art0: usize,
    /// Per original row: the auxiliary column carrying its dual (slack,
    /// surplus or artificial) and that column's coefficient (+1 / −1).
    row_marker: Vec<(usize, f64)>,
    /// Per original row: −1 if the row was multiplied by −1 to make b ≥ 0.
    row_sign: Vec<f64>,
}

impl Tableau {
    fn build(lp: &LpBuilder) -> Tableau {
        let m = lp.rows.len();
        let n = lp.n;
        // Count auxiliary columns.
        let mut slack = 0;
        let mut art = 0;
        for r in &lp.rows {
            let b_neg = r.rhs < 0.0;
            let rel = flip(r.rel, b_neg);
            match rel {
                Relation::Le => slack += 1,
                Relation::Ge => {
                    slack += 1;
                    art += 1;
                }
                Relation::Eq => art += 1,
            }
        }
        let ncols = n + slack + art;
        let art0 = n + slack;
        let width = ncols + 1;
        let mut t = vec![0.0; m * width];
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = n;
        let mut next_art = art0;
        let mut row_marker = vec![(usize::MAX, 1.0); m];
        let mut row_sign = vec![1.0; m];

        for (i, r) in lp.rows.iter().enumerate() {
            let b_neg = r.rhs < 0.0;
            let sign = if b_neg { -1.0 } else { 1.0 };
            let rel = flip(r.rel, b_neg);
            let row = &mut t[i * width..(i + 1) * width];
            for (j, &v) in r.coeffs.iter().enumerate() {
                row[j] = sign * v;
            }
            row[ncols] = sign * r.rhs;
            row_sign[i] = sign;
            match rel {
                Relation::Le => {
                    row[next_slack] = 1.0;
                    basis[i] = next_slack;
                    row_marker[i] = (next_slack, 1.0);
                    next_slack += 1;
                }
                Relation::Ge => {
                    row[next_slack] = -1.0;
                    row_marker[i] = (next_slack, -1.0);
                    next_slack += 1;
                    row[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    row[next_art] = 1.0;
                    basis[i] = next_art;
                    row_marker[i] = (next_art, 1.0);
                    next_art += 1;
                }
            }
        }
        Tableau {
            m,
            ncols,
            t,
            basis,
            art0,
            row_marker,
            row_sign,
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.t[i * (self.ncols + 1) + j]
    }

    #[inline]
    fn rhs(&self, i: usize) -> f64 {
        self.at(i, self.ncols)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.ncols + 1;
        let piv = self.t[row * width + col];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for j in 0..width {
            self.t[row * width + j] *= inv;
        }
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.t[i * width + col];
            if factor.abs() <= EPS {
                continue;
            }
            for j in 0..width {
                let v = self.t[row * width + j];
                self.t[i * width + j] -= factor * v;
            }
            // Kill residual round-off in the pivot column.
            self.t[i * width + col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations minimizing `cost` (length `ncols`).
    /// `allowed(j)` limits which columns may enter.
    fn optimize<F: Fn(usize) -> bool>(&mut self, cost: &[f64], allowed: F) -> Result<(), LpError> {
        let max_iter = 200 + 20 * (self.m + self.ncols);
        let bland_after = 100 + 10 * (self.m + self.ncols);
        for iter in 0..max_iter {
            let bland = iter >= bland_after;
            // Reduced costs r_j = cost_j - y · A_j with y_i = cost[basis_i].
            let mut entering: Option<usize> = None;
            let mut best = -EPS * 10.0;
            for j in 0..self.ncols {
                if !allowed(j) || self.basis.contains(&j) {
                    continue;
                }
                let mut rj = cost[j];
                for i in 0..self.m {
                    let cb = cost[self.basis[i]];
                    if !approx_zero(cb, 0.0) {
                        rj -= cb * self.at(i, j);
                    }
                }
                if rj < best {
                    if bland {
                        entering = Some(j);
                        break;
                    }
                    best = rj;
                    entering = Some(j);
                }
            }
            let Some(e) = entering else {
                return Ok(());
            };
            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m {
                let a = self.at(i, e);
                if a > EPS {
                    let ratio = self.rhs(i) / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(l) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(l, e);
        }
        Err(LpError::IterationLimit)
    }

    fn solve(mut self, c: &[f64], n: usize) -> Result<LpSolution, LpError> {
        // Phase 1: minimize the sum of artificials.
        if self.art0 < self.ncols {
            let mut cost1 = vec![0.0; self.ncols];
            #[allow(clippy::needless_range_loop)] // j is a column id
            for j in self.art0..self.ncols {
                cost1[j] = 1.0;
            }
            self.optimize(&cost1, |_| true)?;
            let phase1: f64 = (0..self.m)
                .filter(|&i| self.basis[i] >= self.art0)
                .map(|i| self.rhs(i))
                .sum();
            if phase1 > 1e-6 {
                return Err(LpError::Infeasible);
            }
            // Drive artificials at zero level out of the basis when possible.
            for i in 0..self.m {
                if self.basis[i] >= self.art0 {
                    if let Some(j) = (0..self.art0).find(|&j| self.at(i, j).abs() > 1e-7) {
                        self.pivot(i, j);
                    }
                }
            }
        }

        // Phase 2: minimize the true objective; artificials may not re-enter.
        let mut cost2 = vec![0.0; self.ncols];
        cost2[..n].copy_from_slice(c);
        let art0 = self.art0;
        self.optimize(&cost2, |j| j < art0)?;

        let mut x = vec![0.0; n];
        for i in 0..self.m {
            if self.basis[i] < n {
                x[self.basis[i]] = self.rhs(i).max(0.0);
            }
        }
        let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();

        // Duals from the reduced costs of each row's marker column:
        // the marker is `coeff · e_row`, so r = -coeff · y_row (its own
        // objective coefficient is zero in phase 2), and the original-row
        // dual undoes the b >= 0 normalization sign.
        let mut duals = vec![0.0; self.m];
        #[allow(clippy::needless_range_loop)] // row is a constraint id
        for row in 0..self.m {
            let (col, coeff) = self.row_marker[row];
            if col == usize::MAX {
                continue;
            }
            let mut r = cost2[col];
            for i in 0..self.m {
                let cb = cost2[self.basis[i]];
                if !approx_zero(cb, 0.0) {
                    r -= cb * self.at(i, col);
                }
            }
            duals[row] = self.row_sign[row] * (-r / coeff);
        }
        Ok(LpSolution {
            x,
            objective,
            duals,
        })
    }
}

fn flip(rel: Relation, negate: bool) -> Relation {
    if !negate {
        return rel;
    }
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn basic_maximization_as_minimization() {
        // max x + 2y s.t. x+y<=4, y<=3 -> min -x-2y, opt at (1,3): -7.
        let mut lp = LpBuilder::new(2);
        lp.objective(&[-1.0, -2.0]);
        lp.constraint(&[1.0, 1.0], Relation::Le, 4.0);
        lp.constraint(&[0.0, 1.0], Relation::Le, 3.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -7.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn equality_constraints() {
        // min x+y s.t. x+2y = 4, x,y >= 0 -> y=2, x=0, obj 2.
        let mut lp = LpBuilder::new(2);
        lp.objective(&[1.0, 1.0]);
        lp.constraint(&[1.0, 2.0], Relation::Eq, 4.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn ge_constraints() {
        // min 2x+3y s.t. x+y >= 5, x <= 3 -> x=3, y=2, obj 12.
        let mut lp = LpBuilder::new(2);
        lp.objective(&[2.0, 3.0]);
        lp.constraint(&[1.0, 1.0], Relation::Ge, 5.0);
        lp.constraint(&[1.0, 0.0], Relation::Le, 3.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 12.0);
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3) -> x=3.
        let mut lp = LpBuilder::new(1);
        lp.objective(&[1.0]);
        lp.constraint(&[-1.0], Relation::Le, -3.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpBuilder::new(1);
        lp.objective(&[1.0]);
        lp.constraint(&[1.0], Relation::Le, 1.0);
        lp.constraint(&[1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpBuilder::new(1);
        lp.objective(&[-1.0]);
        lp.constraint(&[-1.0], Relation::Le, 0.0); // x >= 0, minimize -x
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut lp = LpBuilder::new(2);
        lp.constraint(&[1.0, 1.0], Relation::Eq, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[0] + s.x[1], 1.0);
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example (multiple identical corners).
        let mut lp = LpBuilder::new(3);
        lp.objective(&[-0.75, 150.0, -0.02]);
        lp.constraint(&[0.25, -60.0, -0.04], Relation::Le, 0.0);
        lp.constraint(&[0.5, -90.0, -0.02], Relation::Le, 0.0);
        lp.constraint(&[0.0, 0.0, 1.0], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        assert!(s.objective.is_finite());
    }

    #[test]
    fn transportation_like_lp() {
        // 2 items to 2 bins, assignment rows Eq, capacity rows Le.
        // Vars: x00 x01 x10 x11; costs 1,3,2,1.
        let mut lp = LpBuilder::new(4);
        lp.objective(&[1.0, 3.0, 2.0, 1.0]);
        lp.constraint(&[1.0, 1.0, 0.0, 0.0], Relation::Eq, 1.0);
        lp.constraint(&[0.0, 0.0, 1.0, 1.0], Relation::Eq, 1.0);
        lp.constraint(&[1.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        lp.constraint(&[0.0, 1.0, 0.0, 1.0], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        // Optimal: item0->bin0 (1), item1->bin1 (1) => 2.
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn redundant_equalities_ok() {
        let mut lp = LpBuilder::new(2);
        lp.objective(&[1.0, 2.0]);
        lp.constraint(&[1.0, 1.0], Relation::Eq, 2.0);
        lp.constraint(&[2.0, 2.0], Relation::Eq, 4.0); // redundant copy
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0); // x=2, y=0
    }

    #[test]
    fn solution_within_bounds() {
        let mut lp = LpBuilder::new(3);
        lp.objective(&[-1.0, -1.0, -1.0]);
        lp.constraint(&[1.0, 0.0, 0.0], Relation::Le, 2.0);
        lp.constraint(&[0.0, 1.0, 0.0], Relation::Le, 3.0);
        lp.constraint(&[0.0, 0.0, 1.0], Relation::Le, 4.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -9.0);
        for v in &s.x {
            assert!(*v >= -1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "variables")]
    fn dimension_mismatch_panics() {
        let mut lp = LpBuilder::new(2);
        lp.constraint(&[1.0], Relation::Le, 1.0);
    }

    #[test]
    fn duals_satisfy_strong_duality() {
        // max x + 2y s.t. x+y<=4, y<=3  (min -x-2y): y* = (-1, -1),
        // b·y = 4(-1) + 3(-1) = -7 = objective.
        let mut lp = LpBuilder::new(2);
        lp.objective(&[-1.0, -2.0]);
        lp.constraint(&[1.0, 1.0], Relation::Le, 4.0);
        lp.constraint(&[0.0, 1.0], Relation::Le, 3.0);
        let s = lp.solve().unwrap();
        let by: f64 = 4.0 * s.duals[0] + 3.0 * s.duals[1];
        assert_close(by, s.objective);
        assert_close(s.duals[0], -1.0);
        assert_close(s.duals[1], -1.0);
    }

    #[test]
    fn duals_for_ge_and_eq_rows() {
        // min 2x+3y s.t. x+y >= 5, x <= 3: x=3, y=2, obj 12.
        // Duals: y_ge = 3 (marginal unit of demand costs 3 via y),
        // y_le = -1 (one more unit of x-capacity saves 3-2=1).
        let mut lp = LpBuilder::new(2);
        lp.objective(&[2.0, 3.0]);
        lp.constraint(&[1.0, 1.0], Relation::Ge, 5.0);
        lp.constraint(&[1.0, 0.0], Relation::Le, 3.0);
        let s = lp.solve().unwrap();
        assert_close(5.0 * s.duals[0] + 3.0 * s.duals[1], s.objective);
        assert_close(s.duals[0], 3.0);
        assert_close(s.duals[1], -1.0);

        // Equality version: min x+y s.t. x+2y = 4 -> y=2 obj 2; dual 0.5.
        let mut lp2 = LpBuilder::new(2);
        lp2.objective(&[1.0, 1.0]);
        lp2.constraint(&[1.0, 2.0], Relation::Eq, 4.0);
        let s2 = lp2.solve().unwrap();
        assert_close(s2.duals[0], 0.5);
        assert_close(4.0 * s2.duals[0], s2.objective);
    }

    #[test]
    fn complementary_slackness() {
        // Slack constraint (y <= 3 not tight when y* < 3) has dual 0.
        let mut lp = LpBuilder::new(2);
        lp.objective(&[-1.0, -2.0]);
        lp.constraint(&[1.0, 1.0], Relation::Le, 4.0);
        lp.constraint(&[0.0, 1.0], Relation::Le, 30.0); // never tight
        let s = lp.solve().unwrap();
        assert_close(s.duals[1], 0.0);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            LpError::Infeasible.to_string(),
            "linear program is infeasible"
        );
        assert_eq!(
            LpError::Unbounded.to_string(),
            "linear program is unbounded"
        );
    }
}
