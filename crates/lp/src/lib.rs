//! Two-phase primal-simplex linear-programming solvers.
//!
//! The Shmoys–Tardos approximation algorithm for the Generalized Assignment
//! Problem (used by the paper's `Appro` algorithm) needs the optimal solution
//! of an LP relaxation. No external solver is assumed; this crate implements
//! two interchangeable deterministic backends with Bland's rule as an
//! anti-cycling fallback (select via [`SolverBackend`]):
//!
//! * a **sparse revised simplex** ([`simplex::SolverBackend::Revised`], the
//!   default) — column-wise sparse storage and product-form basis updates,
//!   built for the large, very sparse assignment LPs Appro produces;
//! * a **dense tableau** ([`simplex::SolverBackend::Dense`]) — the original
//!   implementation, kept as a reference oracle for differential testing.
//!
//! The solver handles problems of the form
//!
//! ```text
//! minimize    c · x
//! subject to  A_i · x  (≤ | = | ≥)  b_i     for every row i
//!             x ≥ 0
//! ```
//!
//! # Examples
//!
//! ```
//! use mec_lp::{LpBuilder, Relation};
//!
//! // minimize  -x - 2y   s.t.  x + y <= 4,  y <= 3,  x,y >= 0
//! let mut lp = LpBuilder::new(2);
//! lp.objective(&[-1.0, -2.0]);
//! lp.constraint(&[1.0, 1.0], Relation::Le, 4.0);
//! lp.constraint(&[0.0, 1.0], Relation::Le, 3.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective - (-7.0)).abs() < 1e-9); // x=1, y=3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod revised;
pub mod simplex;
pub mod verify;

pub use simplex::{LpBuilder, LpError, LpSolution, Relation, SolverBackend};
pub use verify::{check_solution, LpViolation};
