//! Discrete-event simulation of the two-tiered MEC network.
//!
//! While `mec-core` evaluates placements with the paper's closed-form cost
//! model, this crate replays the actual request streams — uplink transfers,
//! FIFO VM queues per cloudlet, asynchronous consistency updates — so that
//! latency claims ("caching cuts the motion-to-photon detour") can be
//! observed rather than assumed, and the dollar accounting can be
//! cross-checked against the analytical social cost.
//!
//! * [`event`] — deterministic discrete-event queue,
//! * [`simulator`] — the request-level simulation.
//!
//! # Examples
//!
//! ```
//! use mec_sim::{simulate, nearest_cloudlet_profile, SimConfig};
//! use mec_workload::{gtitm_scenario, Params};
//!
//! let s = gtitm_scenario(100, &Params::paper().with_providers(10), 1);
//! let profile = nearest_cloudlet_profile(&s.net, &s.generated);
//! let report = simulate(&s.net, &s.generated, &profile, &SimConfig::default());
//! assert!(report.completed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod mobility;
pub mod simulator;
pub mod stats;
pub mod trace;

pub use mobility::{mobility_drift, MobilityConfig, MobilityReport};
pub use simulator::{
    nearest_cloudlet_profile, simulate, simulate_all_remote, ArrivalProcess, CloudletStats,
    SimConfig, SimReport,
};
pub use stats::{replicate, ReplicationReport, Summary};
pub use trace::{RequestRecord, ServedAt, Trace};
