//! Per-request traces and latency analytics.
//!
//! When [`crate::SimConfig::record_trace`] is set, the simulator keeps one
//! [`RequestRecord`] per completed request; [`Trace`] then answers the
//! questions the aggregate report cannot — per-provider latency, which
//! cloudlets serve which providers, and full latency histograms.

use mec_core::ProviderId;
use mec_topology::CloudletId;

/// Where a request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedAt {
    /// Served by a cached instance at this cloudlet.
    Cloudlet(CloudletId),
    /// Served by the original remote instance.
    Remote,
}

/// One completed request.
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// The provider whose user issued the request.
    pub provider: ProviderId,
    /// Serving site.
    pub served_at: ServedAt,
    /// Send instant, seconds.
    pub sent_at_s: f64,
    /// Completion instant, seconds.
    pub completed_at_s: f64,
}

impl RequestRecord {
    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        (self.completed_at_s - self.sent_at_s) * 1000.0
    }
}

/// A collection of completed-request records with analytics helpers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<RequestRecord>,
}

impl Trace {
    /// Wraps raw records.
    pub fn new(records: Vec<RequestRecord>) -> Self {
        Trace { records }
    }

    /// All records in completion order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no requests were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean latency of one provider's requests, ms (`None` if it had none).
    pub fn provider_mean_latency_ms(&self, l: ProviderId) -> Option<f64> {
        let lats: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.provider == l)
            .map(RequestRecord::latency_ms)
            .collect();
        if lats.is_empty() {
            None
        } else {
            Some(lats.iter().sum::<f64>() / lats.len() as f64)
        }
    }

    /// Requests served per cloudlet (indexed by cloudlet id).
    pub fn requests_per_cloudlet(&self, cloudlets: usize) -> Vec<u64> {
        let mut counts = vec![0u64; cloudlets];
        for r in &self.records {
            if let ServedAt::Cloudlet(c) = r.served_at {
                counts[c.index()] += 1;
            }
        }
        counts
    }

    /// Latency histogram with the given bucket edges (ms); returns one
    /// count per bucket plus a final overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn latency_histogram(&self, edges: &[f64]) -> Vec<u64> {
        assert!(!edges.is_empty(), "need at least one bucket edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        let mut counts = vec![0u64; edges.len() + 1];
        for r in &self.records {
            let lat = r.latency_ms();
            let bucket = edges.iter().position(|&e| lat <= e).unwrap_or(edges.len());
            counts[bucket] += 1;
        }
        counts
    }

    /// A latency percentile (0.0–1.0) over all records.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `q` is outside `[0, 1]`.
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        assert!(!self.records.is_empty(), "empty trace");
        assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
        let mut lats: Vec<f64> = self.records.iter().map(RequestRecord::latency_ms).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((lats.len() as f64 - 1.0) * q).round() as usize;
        lats[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(p: usize, site: ServedAt, sent: f64, done: f64) -> RequestRecord {
        RequestRecord {
            provider: ProviderId(p),
            served_at: site,
            sent_at_s: sent,
            completed_at_s: done,
        }
    }

    fn sample() -> Trace {
        Trace::new(vec![
            rec(0, ServedAt::Cloudlet(CloudletId(0)), 0.0, 0.010),
            rec(0, ServedAt::Cloudlet(CloudletId(0)), 1.0, 1.020),
            rec(1, ServedAt::Remote, 0.5, 0.600),
            rec(1, ServedAt::Cloudlet(CloudletId(1)), 2.0, 2.030),
        ])
    }

    #[test]
    fn latency_computed_in_ms() {
        let t = sample();
        assert!((t.records()[0].latency_ms() - 10.0).abs() < 1e-9);
        assert!((t.records()[2].latency_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn provider_means() {
        let t = sample();
        assert!((t.provider_mean_latency_ms(ProviderId(0)).unwrap() - 15.0).abs() < 1e-9);
        assert!((t.provider_mean_latency_ms(ProviderId(1)).unwrap() - 65.0).abs() < 1e-9);
        assert!(t.provider_mean_latency_ms(ProviderId(9)).is_none());
    }

    #[test]
    fn cloudlet_counts() {
        let t = sample();
        assert_eq!(t.requests_per_cloudlet(2), vec![2, 1]);
    }

    #[test]
    fn histogram_buckets() {
        let t = sample();
        // Latencies are 10, 20, 100, 30 ms; edges at 15 and 50 ms.
        assert_eq!(t.latency_histogram(&[15.0, 50.0]), vec![1, 2, 1]);
    }

    #[test]
    fn percentiles() {
        let t = sample();
        assert!((t.latency_percentile_ms(0.0) - 10.0).abs() < 1e-9);
        assert!((t.latency_percentile_ms(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_edges_rejected() {
        sample().latency_histogram(&[10.0, 10.0]);
    }
}
