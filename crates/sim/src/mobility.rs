//! User mobility: how placements age as users move.
//!
//! Cached placements are computed against a snapshot of user locations,
//! but mobile users drift (the paper's motivating AR/VR users walk through
//! museums and stadiums). This module models each provider's user
//! population as a token doing a lazy random walk on the physical graph
//! and measures how the access latency of a *fixed* placement degrades
//! relative to an idealized placement that follows the users — the
//! replacement-pressure signal a dynamic mechanism (see
//! `mec_core::dynamics`) responds to.

use mec_core::strategy::{Placement, Profile};
use mec_core::ProviderId;
use mec_topology::{MecNetwork, NodeId};
use mec_workload::GeneratedMarket;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Mobility-model configuration.
#[derive(Debug, Clone)]
pub struct MobilityConfig {
    /// Number of epochs to walk.
    pub epochs: usize,
    /// Probability a user token moves to a random neighbor each epoch.
    pub move_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            epochs: 12,
            move_prob: 0.6,
            seed: 0,
        }
    }
}

/// Per-epoch latency series of a placement under mobility.
#[derive(Debug, Clone)]
pub struct MobilityReport {
    /// Mean user→serving-site distance (ms) per epoch under the *fixed*
    /// placement.
    pub fixed_latency_ms: Vec<f64>,
    /// Mean user→nearest-cloudlet distance (ms) per epoch — what an
    /// always-replaced placement could achieve.
    pub chasing_latency_ms: Vec<f64>,
}

impl MobilityReport {
    /// Ratio of final-epoch fixed latency to epoch-0 fixed latency
    /// (how much the placement aged).
    pub fn aging_factor(&self) -> f64 {
        let first = self.fixed_latency_ms.first().copied().unwrap_or(1.0);
        let last = self.fixed_latency_ms.last().copied().unwrap_or(1.0);
        if first > 0.0 {
            last / first
        } else {
            1.0
        }
    }

    /// Mean per-epoch latency gap between the fixed placement and the
    /// user-chasing ideal, ms.
    pub fn mean_gap_ms(&self) -> f64 {
        let n = self.fixed_latency_ms.len().max(1) as f64;
        self.fixed_latency_ms
            .iter()
            .zip(&self.chasing_latency_ms)
            .map(|(f, c)| f - c)
            .sum::<f64>()
            / n
    }
}

/// Walks every provider's users for `config.epochs` epochs and measures
/// the access latency of `profile` at each epoch.
///
/// Remote placements are measured to the provider's home data center.
///
/// # Panics
///
/// Panics if `profile` does not cover the market or `move_prob` is outside
/// `[0, 1]`.
pub fn mobility_drift(
    net: &MecNetwork,
    gen: &GeneratedMarket,
    profile: &Profile,
    config: &MobilityConfig,
) -> MobilityReport {
    assert_eq!(
        profile.len(),
        gen.market.provider_count(),
        "profile/market mismatch"
    );
    assert!(
        (0.0..=1.0).contains(&config.move_prob),
        "move_prob must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let graph = &net.topology().graph;
    let mut positions: Vec<NodeId> = gen.providers.iter().map(|m| m.user_node).collect();

    let mut fixed = Vec::with_capacity(config.epochs);
    let mut chasing = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        // Measure.
        let mut f_total = 0.0;
        let mut c_total = 0.0;
        for (idx, &pos) in positions.iter().enumerate() {
            let l = ProviderId(idx);
            let site_dist = match profile.placement(l) {
                Placement::Cloudlet(c) => net.node_cloudlet_distance(pos, c),
                Placement::Remote => net.node_dc_distance(pos, gen.providers[idx].home_dc),
            };
            f_total += site_dist;
            let nearest = net.nearest_cloudlet(pos);
            c_total += net.node_cloudlet_distance(pos, nearest);
        }
        let n = positions.len().max(1) as f64;
        fixed.push(f_total / n);
        chasing.push(c_total / n);

        // Walk.
        for pos in positions.iter_mut() {
            if rng.random_bool(config.move_prob) {
                let nbrs: Vec<NodeId> = graph.neighbors(*pos).map(|(v, _)| v).collect();
                if !nbrs.is_empty() {
                    *pos = nbrs[rng.random_range(0..nbrs.len())];
                }
            }
        }
    }
    MobilityReport {
        fixed_latency_ms: fixed,
        chasing_latency_ms: chasing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::nearest_cloudlet_profile;
    use mec_workload::{gtitm_scenario, Params, Scenario};

    fn scenario() -> Scenario {
        gtitm_scenario(120, &Params::paper().with_providers(25), 3)
    }

    #[test]
    fn chasing_never_beaten_by_fixed() {
        let s = scenario();
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let rep = mobility_drift(&s.net, &s.generated, &profile, &MobilityConfig::default());
        for (f, c) in rep.fixed_latency_ms.iter().zip(&rep.chasing_latency_ms) {
            assert!(*f >= *c - 1e-9, "fixed {f} < chasing {c}");
        }
    }

    #[test]
    fn epoch_zero_matches_for_nearest_placement() {
        // The nearest-cloudlet placement is optimal for epoch-0 positions.
        let s = scenario();
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let rep = mobility_drift(&s.net, &s.generated, &profile, &MobilityConfig::default());
        assert!(
            (rep.fixed_latency_ms[0] - rep.chasing_latency_ms[0]).abs() < 1e-9,
            "epoch 0 should match"
        );
    }

    #[test]
    fn placements_age_under_mobility() {
        let s = scenario();
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let rep = mobility_drift(
            &s.net,
            &s.generated,
            &profile,
            &MobilityConfig {
                epochs: 20,
                move_prob: 0.9,
                seed: 1,
            },
        );
        assert!(
            rep.aging_factor() > 1.0,
            "placement did not age: {}",
            rep.aging_factor()
        );
        assert!(rep.mean_gap_ms() >= 0.0);
    }

    #[test]
    fn zero_mobility_is_flat() {
        let s = scenario();
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let rep = mobility_drift(
            &s.net,
            &s.generated,
            &profile,
            &MobilityConfig {
                epochs: 5,
                move_prob: 0.0,
                seed: 2,
            },
        );
        let first = rep.fixed_latency_ms[0];
        for f in &rep.fixed_latency_ms {
            assert!((f - first).abs() < 1e-12);
        }
        assert!((rep.aging_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = scenario();
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let a = mobility_drift(&s.net, &s.generated, &profile, &MobilityConfig::default());
        let b = mobility_drift(&s.net, &s.generated, &profile, &MobilityConfig::default());
        assert_eq!(a.fixed_latency_ms, b.fixed_latency_ms);
    }
}
