//! Discrete-event engine: a time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence; `T` is the payload type supplied by the
//  simulation layer.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earliest time first; FIFO on ties via seq.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
///
/// Events fire in non-decreasing time order; events scheduled at the same
/// instant fire in insertion order, making simulations reproducible.
///
/// # Examples
///
/// ```
/// use mec_sim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current time.
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule in the past: {time} < {}",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_num::assert_approx_eq;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        q.schedule(1.0, "b");
        q.schedule(1.0, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_approx_eq!(q.now(), 0.0, 1e-12);
        q.pop();
        assert_approx_eq!(q.now(), 5.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
