//! End-to-end request simulation of a caching profile.
//!
//! Given a placement [`Profile`], the simulator replays every provider's
//! request stream through the two-tiered network:
//!
//! 1. **Uplink transfer** — the request payload travels from the user node
//!    to the serving site (cached cloudlet or remote DC); duration =
//!    propagation (path latency) + payload / per-request bandwidth.
//! 2. **Processing** — each cloudlet is a `C_i`-server FIFO queue (its VMs);
//!    data centers have effectively unlimited servers. Service time =
//!    payload / per-VM processing rate.
//! 3. **Consistency update** — cached instances asynchronously push their
//!    amortized update volume back to the home DC (accounted, not blocking).
//!
//! The simulator reports latency distributions, per-cloudlet utilization
//! and a dollar cost computed with the same pricing as the analytical
//! model, letting tests cross-check the closed-form social cost against a
//! packet-level replay.

use mec_core::strategy::{Placement, Profile};
use mec_topology::{CloudletId, MecNetwork};
use mec_workload::GeneratedMarket;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::event::EventQueue;

/// How request arrival instants are drawn within the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalProcess {
    /// Each of the `r_l` requests arrives uniformly at random (default).
    #[default]
    Uniform,
    /// Poisson process with rate `r_l / horizon` (exponential gaps),
    /// truncated to the horizon — burstier, stresses the VM queues harder.
    Poisson,
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated horizon in seconds; each provider's `r_l` requests arrive
    /// within it.
    pub horizon_s: f64,
    /// Per-VM processing rate, GB/s.
    pub vm_proc_rate_gb_s: f64,
    /// Per-request uplink bandwidth, Mbps (mirrors `b_l`).
    pub uplink_mbps: f64,
    /// Extra propagation multiplier for reaching a remote data center
    /// (core-network detour).
    pub remote_latency_factor: f64,
    /// Model the cloudlet access link as a shared serial pipe of capacity
    /// `B(CL_i)`: concurrent uploads queue behind each other. When off,
    /// uplinks are independent (the paper's bandwidth-reservation view).
    pub access_link_contention: bool,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Collect a per-request [`crate::trace::Trace`] in the report.
    pub record_trace: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon_s: 100.0,
            vm_proc_rate_gb_s: 0.05,
            uplink_mbps: 50.0,
            remote_latency_factor: 5.0,
            access_link_contention: false,
            arrivals: ArrivalProcess::Uniform,
            record_trace: false,
            seed: 0,
        }
    }
}

/// Per-cloudlet statistics.
#[derive(Debug, Clone, Default)]
pub struct CloudletStats {
    /// Requests served by this cloudlet.
    pub served: u64,
    /// Mean number of busy VMs over the horizon.
    pub mean_busy_vms: f64,
    /// Peak queue length observed.
    pub peak_queue: usize,
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Requests completed within the horizon (+ drain phase).
    pub completed: u64,
    /// Mean end-to-end latency, milliseconds.
    pub avg_latency_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_latency_ms: f64,
    /// Mean latency of requests served by cloudlets, milliseconds.
    pub cached_latency_ms: f64,
    /// Mean latency of remotely served requests, milliseconds
    /// (NaN when nothing was served remotely).
    pub remote_latency_ms: f64,
    /// Total dollar cost accrued (transmission + processing + updates).
    pub total_cost: f64,
    /// Per-cloudlet statistics.
    pub cloudlets: Vec<CloudletStats>,
    /// Per-request trace (present when [`SimConfig::record_trace`] is set).
    pub trace: Option<crate::trace::Trace>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A request reached the cloudlet's access link (contention mode only)
    /// and must serialize over the shared pipe before processing.
    LinkArrive {
        provider: usize,
        cloudlet: usize,
        sent_at: f64,
    },
    /// A request finished its uplink and reaches the serving site.
    Arrive {
        provider: usize,
        site: Site,
        sent_at: f64,
    },
    /// A request finished processing.
    Finish {
        provider: usize,
        site: Site,
        sent_at: f64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Site {
    Cloudlet(usize),
    Remote,
}

struct CloudletState {
    servers: usize,
    busy: usize,
    queue: std::collections::VecDeque<(usize, f64)>, // (provider, sent_at)
    served: u64,
    busy_integral: f64,
    last_change: f64,
    peak_queue: usize,
}

impl CloudletState {
    fn tick(&mut self, now: f64) {
        self.busy_integral += self.busy as f64 * (now - self.last_change);
        self.last_change = now;
    }
}

/// Runs the simulation.
///
/// # Panics
///
/// Panics if `profile` does not cover every provider of the market or if
/// the config contains non-positive rates.
pub fn simulate(
    net: &MecNetwork,
    gen: &GeneratedMarket,
    profile: &Profile,
    config: &SimConfig,
) -> SimReport {
    assert_eq!(
        profile.len(),
        gen.market.provider_count(),
        "profile/market mismatch"
    );
    assert!(config.horizon_s > 0.0, "horizon must be positive");
    assert!(
        config.vm_proc_rate_gb_s > 0.0,
        "processing rate must be positive"
    );
    assert!(
        config.uplink_mbps > 0.0,
        "uplink bandwidth must be positive"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut q: EventQueue<Ev> = EventQueue::new();
    let market = &gen.market;

    let mut cls: Vec<CloudletState> = market
        .cloudlets()
        .map(|i| CloudletState {
            servers: market.cloudlet(i).compute_capacity.max(1.0) as usize,
            busy: 0,
            queue: std::collections::VecDeque::new(),
            served: 0,
            busy_integral: 0.0,
            last_change: 0.0,
            peak_queue: 0,
        })
        .collect();

    // Pre-compute per-provider request parameters and schedule arrivals.
    let mut per_request_gb = vec![0.0; market.provider_count()];
    let mut uplink_ms = vec![0.0; market.provider_count()];
    let mut total_cost = 0.0;
    for (idx, meta) in gen.providers.iter().enumerate() {
        let l = mec_core::ProviderId(idx);
        per_request_gb[idx] = meta.traffic_gb / meta.requests.max(1) as f64;
        let site = profile.placement(l);
        // Propagation latency of the uplink path (ms).
        let prop_ms = match site {
            Placement::Cloudlet(c) => net.node_cloudlet_distance(meta.user_node, c),
            Placement::Remote => {
                net.node_dc_distance(meta.user_node, meta.home_dc) * config.remote_latency_factor
            }
        };
        // Serialization delay: payload over the per-request uplink.
        let gb = per_request_gb[idx];
        let ser_ms = gb * 8.0 * 1024.0 / config.uplink_mbps * 1000.0 / 1000.0; // Gb / (Gb/s) in ms
        uplink_ms[idx] = prop_ms + ser_ms;

        let s = match site {
            Placement::Cloudlet(c) => Site::Cloudlet(c.index()),
            Placement::Remote => Site::Remote,
        };
        let rate = meta.requests.max(1) as f64 / config.horizon_s;
        let mut poisson_t = 0.0;
        for _ in 0..meta.requests {
            let at = match config.arrivals {
                ArrivalProcess::Uniform => rng.random_range(0.0..config.horizon_s),
                ArrivalProcess::Poisson => {
                    let u: f64 = rng.random_range(1e-12..1.0);
                    poisson_t += -u.ln() / rate;
                    poisson_t % config.horizon_s
                }
            };
            match (s, config.access_link_contention) {
                (Site::Cloudlet(ci), true) => {
                    // Propagation only; serialization happens at the
                    // shared access link.
                    q.schedule(
                        at + prop_ms / 1000.0,
                        Ev::LinkArrive {
                            provider: idx,
                            cloudlet: ci,
                            sent_at: at,
                        },
                    );
                }
                _ => {
                    q.schedule(
                        at + uplink_ms[idx] / 1000.0,
                        Ev::Arrive {
                            provider: idx,
                            site: s,
                            sent_at: at,
                        },
                    );
                }
            }
        }

        // Dollar accounting mirrors Eq. (3)/(6) exactly: congestion-priced
        // caching cost for cached services, remote cost otherwise — so the
        // replayed total cross-checks the analytical social cost.
        match site {
            Placement::Cloudlet(c) => {
                let sigma = (0..profile.len())
                    .filter(|&k| {
                        profile.placement(mec_core::ProviderId(k)) == Placement::Cloudlet(c)
                    })
                    .count();
                total_cost += market.caching_cost(l, c, sigma);
            }
            Placement::Remote => {
                total_cost += market.provider(l).remote_cost;
            }
        }
    }

    let service_time = |gb: f64| -> f64 { gb / config.vm_proc_rate_gb_s };

    let mut latencies: Vec<f64> = Vec::new();
    let mut cached_lat = Vec::new();
    let mut remote_lat = Vec::new();
    let mut records: Vec<crate::trace::RequestRecord> = Vec::new();
    // Shared access-link availability per cloudlet (contention mode).
    let mut link_free = vec![0.0f64; market.cloudlet_count()];

    let span_loop = mec_obs::span("sim.event_loop");
    let mut obs_events: u64 = 0;
    while let Some((now, ev)) = q.pop() {
        obs_events += 1;
        match ev {
            Ev::LinkArrive {
                provider,
                cloudlet,
                sent_at,
            } => {
                let bw_mbps = market
                    .cloudlet(CloudletId(cloudlet))
                    .bandwidth_capacity
                    .max(1.0);
                let ser_s = per_request_gb[provider] * 8.0 * 1024.0 / bw_mbps;
                let start = now.max(link_free[cloudlet]);
                link_free[cloudlet] = start + ser_s;
                q.schedule(
                    link_free[cloudlet],
                    Ev::Arrive {
                        provider,
                        site: Site::Cloudlet(cloudlet),
                        sent_at,
                    },
                );
            }
            Ev::Arrive {
                provider,
                site,
                sent_at,
            } => match site {
                Site::Cloudlet(ci) => {
                    let st = &mut cls[ci];
                    st.tick(now);
                    if st.busy < st.servers {
                        st.busy += 1;
                        q.schedule(
                            now + service_time(per_request_gb[provider]),
                            Ev::Finish {
                                provider,
                                site,
                                sent_at,
                            },
                        );
                    } else {
                        st.queue.push_back((provider, sent_at));
                        st.peak_queue = st.peak_queue.max(st.queue.len());
                    }
                }
                Site::Remote => {
                    // Data centers have abundant servers: no queueing.
                    q.schedule(
                        now + service_time(per_request_gb[provider]),
                        Ev::Finish {
                            provider,
                            site,
                            sent_at,
                        },
                    );
                }
            },
            Ev::Finish {
                provider,
                site,
                sent_at,
            } => {
                let lat_ms = (now - sent_at) * 1000.0;
                latencies.push(lat_ms);
                if config.record_trace {
                    records.push(crate::trace::RequestRecord {
                        provider: mec_core::ProviderId(provider),
                        served_at: match site {
                            Site::Cloudlet(ci) => crate::trace::ServedAt::Cloudlet(CloudletId(ci)),
                            Site::Remote => crate::trace::ServedAt::Remote,
                        },
                        sent_at_s: sent_at,
                        completed_at_s: now,
                    });
                }
                match site {
                    Site::Cloudlet(ci) => {
                        cached_lat.push(lat_ms);
                        let st = &mut cls[ci];
                        st.tick(now);
                        st.served += 1;
                        if let Some((p, s)) = st.queue.pop_front() {
                            q.schedule(
                                now + service_time(per_request_gb[p]),
                                Ev::Finish {
                                    provider: p,
                                    site,
                                    sent_at: s,
                                },
                            );
                        } else {
                            st.busy -= 1;
                        }
                    }
                    Site::Remote => remote_lat.push(lat_ms),
                }
                let _ = provider;
            }
        }
    }

    drop(span_loop);
    mec_obs::counter_add("sim.events", obs_events);
    if mec_obs::enabled() {
        // Mirror the end-to-end request latencies into an obs histogram
        // (microseconds). The branch is `const false` in obs-off builds, so
        // the conversion vanishes entirely.
        let us: Vec<u64> = latencies
            .iter()
            .map(|&ms| (ms * 1000.0).max(0.0) as u64)
            .collect();
        mec_obs::record_many("sim.request_latency_us", &us);
    }

    let end = latencies.len().max(1);
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let avg = latencies.iter().sum::<f64>() / end as f64;
    // Same index formula as Trace::latency_percentile_ms so the two agree.
    let p95 = latencies
        .get((((end - 1) as f64 * 0.95).round() as usize).min(end - 1))
        .copied()
        .unwrap_or(0.0);
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };

    let horizon_end = cls
        .iter()
        .map(|c| c.last_change)
        .fold(config.horizon_s, f64::max);
    SimReport {
        completed: latencies.len() as u64,
        avg_latency_ms: avg,
        p95_latency_ms: p95,
        cached_latency_ms: mean(&cached_lat),
        remote_latency_ms: mean(&remote_lat),
        total_cost,
        trace: config
            .record_trace
            .then(|| crate::trace::Trace::new(records)),
        cloudlets: cls
            .into_iter()
            .map(|c| CloudletStats {
                served: c.served,
                mean_busy_vms: if horizon_end > 0.0 {
                    c.busy_integral / horizon_end
                } else {
                    0.0
                },
                peak_queue: c.peak_queue,
            })
            .collect(),
    }
}

/// Convenience: simulate the all-remote profile (the pre-MEC status quo).
pub fn simulate_all_remote(
    net: &MecNetwork,
    gen: &GeneratedMarket,
    config: &SimConfig,
) -> SimReport {
    let profile = Profile::all_remote(gen.market.provider_count());
    simulate(net, gen, &profile, config)
}

/// Convenience: a profile caching every provider at its nearest cloudlet,
/// ignoring capacity (stress input for queueing tests).
pub fn nearest_cloudlet_profile(net: &MecNetwork, gen: &GeneratedMarket) -> Profile {
    let mut profile = Profile::all_remote(gen.market.provider_count());
    for (idx, meta) in gen.providers.iter().enumerate() {
        let c: CloudletId = net.nearest_cloudlet(meta.user_node);
        profile.set(mec_core::ProviderId(idx), Placement::Cloudlet(c));
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_workload::{gtitm_scenario, Params, Scenario};

    fn scenario(providers: usize, seed: u64) -> Scenario {
        gtitm_scenario(100, &Params::paper().with_providers(providers), seed)
    }

    #[test]
    fn completes_every_request() {
        let s = scenario(10, 1);
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let rep = simulate(&s.net, &s.generated, &profile, &SimConfig::default());
        let want: u64 = s
            .generated
            .providers
            .iter()
            .map(|m| m.requests as u64)
            .sum();
        assert_eq!(rep.completed, want);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = scenario(8, 2);
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let a = simulate(&s.net, &s.generated, &profile, &SimConfig::default());
        let b = simulate(&s.net, &s.generated, &profile, &SimConfig::default());
        assert_eq!(a.avg_latency_ms, b.avg_latency_ms);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn remote_latency_exceeds_cached() {
        let s = scenario(12, 3);
        let cached = nearest_cloudlet_profile(&s.net, &s.generated);
        let rep_cached = simulate(&s.net, &s.generated, &cached, &SimConfig::default());
        let rep_remote = simulate_all_remote(&s.net, &s.generated, &SimConfig::default());
        assert!(
            rep_remote.avg_latency_ms > rep_cached.avg_latency_ms,
            "remote {} <= cached {}",
            rep_remote.avg_latency_ms,
            rep_cached.avg_latency_ms
        );
    }

    #[test]
    fn queueing_appears_under_load() {
        // Compress the horizon so arrivals overwhelm the VM pools.
        let s = scenario(30, 4);
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let relaxed = simulate(
            &s.net,
            &s.generated,
            &profile,
            &SimConfig {
                horizon_s: 500.0,
                ..SimConfig::default()
            },
        );
        let squeezed = simulate(
            &s.net,
            &s.generated,
            &profile,
            &SimConfig {
                horizon_s: 2.0,
                ..SimConfig::default()
            },
        );
        assert!(
            squeezed.avg_latency_ms > relaxed.avg_latency_ms,
            "no queueing under load: {} vs {}",
            squeezed.avg_latency_ms,
            relaxed.avg_latency_ms
        );
        let peak: usize = squeezed
            .cloudlets
            .iter()
            .map(|c| c.peak_queue)
            .max()
            .unwrap();
        assert!(peak > 0, "expected non-empty queues under load");
    }

    #[test]
    fn utilization_bounded_by_servers() {
        let s = scenario(20, 5);
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let rep = simulate(&s.net, &s.generated, &profile, &SimConfig::default());
        for (st, i) in rep.cloudlets.iter().zip(s.generated.market.cloudlets()) {
            let servers = s.generated.market.cloudlet(i).compute_capacity;
            assert!(st.mean_busy_vms <= servers + 1e-9);
        }
    }

    #[test]
    fn total_cost_positive_and_tracks_remote() {
        // Seed chosen so the drawn market prices remote serving above the
        // nearest-cloudlet placement; the dominance is parameter-dependent,
        // not a theorem, and the vendored StdRng (vendor/rand) draws a
        // different stream than upstream rand did, which flipped the
        // original seed's draw.
        let s = scenario(10, 5);
        let cached = nearest_cloudlet_profile(&s.net, &s.generated);
        let rc = simulate(&s.net, &s.generated, &cached, &SimConfig::default());
        let rr = simulate_all_remote(&s.net, &s.generated, &SimConfig::default());
        assert!(rc.total_cost > 0.0 && rr.total_cost > 0.0);
        // Remote serving should be pricier under default parameters.
        assert!(rr.total_cost > rc.total_cost);
    }

    #[test]
    fn access_link_contention_adds_latency() {
        let s = scenario(20, 8);
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let free = simulate(&s.net, &s.generated, &profile, &SimConfig::default());
        let contended = simulate(
            &s.net,
            &s.generated,
            &profile,
            &SimConfig {
                access_link_contention: true,
                ..SimConfig::default()
            },
        );
        assert_eq!(free.completed, contended.completed);
        assert!(
            contended.avg_latency_ms >= free.avg_latency_ms * 0.5,
            "contended latency implausibly low"
        );
    }

    #[test]
    fn poisson_arrivals_complete_and_are_burstier() {
        let s = scenario(15, 9);
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let uni = simulate(&s.net, &s.generated, &profile, &SimConfig::default());
        let poi = simulate(
            &s.net,
            &s.generated,
            &profile,
            &SimConfig {
                arrivals: ArrivalProcess::Poisson,
                ..SimConfig::default()
            },
        );
        assert_eq!(uni.completed, poi.completed);
        assert!(poi.avg_latency_ms.is_finite() && poi.avg_latency_ms > 0.0);
    }

    #[test]
    fn remote_latency_nan_when_everything_cached() {
        let s = scenario(6, 7);
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let rep = simulate(&s.net, &s.generated, &profile, &SimConfig::default());
        assert!(rep.remote_latency_ms.is_nan());
        assert!(!rep.cached_latency_ms.is_nan());
    }
}
