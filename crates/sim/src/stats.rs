//! Replicated simulation runs with confidence intervals.
//!
//! A single discrete-event run is one sample; credible latency claims need
//! replications. [`replicate`] reruns the simulator with independent seeds
//! and summarizes each metric with a mean and a 95 % confidence interval
//! (normal approximation — fine for the ≥ 10 replications used here).

use mec_core::strategy::Profile;
use mec_topology::MecNetwork;
use mec_workload::GeneratedMarket;

use crate::simulator::{simulate, SimConfig};

/// Mean / spread summary of one metric across replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// Lower edge of the 95 % confidence interval.
    pub ci95_low: f64,
    /// Upper edge of the 95 % confidence interval.
    pub ci95_high: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary needs samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let half = 1.96 * std_dev / (n as f64).sqrt();
        Summary {
            mean,
            std_dev,
            ci95_low: mean - half,
            ci95_high: mean + half,
            n,
        }
    }

    /// `true` if `v` lies within the 95 % CI.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.ci95_low && v <= self.ci95_high
    }
}

/// Replicated-simulation summary.
#[derive(Debug, Clone)]
pub struct ReplicationReport {
    /// Mean end-to-end latency, ms.
    pub avg_latency_ms: Summary,
    /// 95th-percentile latency, ms.
    pub p95_latency_ms: Summary,
    /// Total dollar cost (deterministic given the profile — zero spread).
    pub total_cost: Summary,
}

/// Runs `trials` independent replications of the simulation.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn replicate(
    net: &MecNetwork,
    gen: &GeneratedMarket,
    profile: &Profile,
    base: &SimConfig,
    trials: usize,
) -> ReplicationReport {
    assert!(trials > 0, "need at least one trial");
    let mut avg = Vec::with_capacity(trials);
    let mut p95 = Vec::with_capacity(trials);
    let mut cost = Vec::with_capacity(trials);
    for t in 0..trials {
        let config = SimConfig {
            seed: base.seed.wrapping_add(t as u64).wrapping_mul(0x9E37_79B9),
            ..base.clone()
        };
        let rep = simulate(net, gen, profile, &config);
        avg.push(rep.avg_latency_ms);
        p95.push(rep.p95_latency_ms);
        cost.push(rep.total_cost);
    }
    ReplicationReport {
        avg_latency_ms: Summary::of(&avg),
        p95_latency_ms: Summary::of(&p95),
        total_cost: Summary::of(&cost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::nearest_cloudlet_profile;
    use mec_num::assert_approx_eq;
    use mec_workload::{gtitm_scenario, Params};

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert!(s.contains(2.0));
        assert!(!s.contains(10.0));
        assert_eq!(s.n, 3);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::of(&[5.0]);
        assert_approx_eq!(s.std_dev, 0.0, 1e-12);
        assert_approx_eq!(s.ci95_low, 5.0, 1e-12);
        assert_approx_eq!(s.ci95_high, 5.0, 1e-12);
    }

    #[test]
    fn replications_tighten_around_a_stable_mean() {
        let s = gtitm_scenario(100, &Params::paper().with_providers(12), 4);
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let rep = replicate(&s.net, &s.generated, &profile, &SimConfig::default(), 10);
        assert_eq!(rep.avg_latency_ms.n, 10);
        assert!(rep.avg_latency_ms.mean > 0.0);
        assert!(rep.avg_latency_ms.ci95_low <= rep.avg_latency_ms.mean);
        assert!(rep.avg_latency_ms.ci95_high >= rep.avg_latency_ms.mean);
        // The dollar cost does not depend on arrival randomness.
        assert!(rep.total_cost.std_dev < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let s = gtitm_scenario(100, &Params::paper().with_providers(5), 5);
        let profile = nearest_cloudlet_profile(&s.net, &s.generated);
        let _ = replicate(&s.net, &s.generated, &profile, &SimConfig::default(), 0);
    }
}
