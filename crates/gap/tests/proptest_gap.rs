//! Property tests for the GAP pipeline.
//!
//! Invariants checked on random small instances:
//! * the Shmoys–Tardos assignment costs no more than the LP optimum;
//! * the LP optimum lower-bounds the exact integral optimum;
//! * rounding never overflows a bin by more than the largest item weight;
//! * the transportation fast path agrees with the general LP relaxation;
//! * the `verify::check_assignment` certifier accepts every rounded output.

use mec_gap::{check_assignment, exact, greedy, lp_relax, shmoys_tardos, GapInstance, FORBIDDEN};
use mec_lp::SolverBackend;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandInst {
    items: usize,
    bins: usize,
    costs: Vec<f64>,
    weights: Vec<f64>,
    cap_slack: f64,
}

fn rand_inst() -> impl Strategy<Value = RandInst> {
    (2usize..6, 2usize..4).prop_flat_map(|(items, bins)| {
        let costs = proptest::collection::vec(0.1..10.0f64, items * bins);
        let weights = proptest::collection::vec(0.5..2.0f64, items);
        (Just(items), Just(bins), costs, weights, 1.1..3.0f64).prop_map(
            |(items, bins, costs, weights, cap_slack)| RandInst {
                items,
                bins,
                costs,
                weights,
                cap_slack,
            },
        )
    })
}

fn build(r: &RandInst) -> GapInstance {
    let mut inst = GapInstance::new(r.items, r.bins);
    for i in 0..r.items {
        for j in 0..r.bins {
            inst.set_cost(i, j, r.costs[i * r.bins + j]);
        }
        inst.set_item_weight(i, r.weights[i]);
    }
    // Capacity sized so the instance is always feasible: the total weight
    // split across bins with some slack.
    let total: f64 = r.weights.iter().sum();
    let per_bin = total / r.bins as f64 * r.cap_slack + 2.0;
    for j in 0..r.bins {
        inst.set_capacity(j, per_bin);
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn st_cost_at_most_lp(r in rand_inst()) {
        let inst = build(&r);
        let sol = shmoys_tardos::solve(&inst).unwrap();
        prop_assert!(sol.assignment_cost <= sol.lp_objective + 1e-6,
            "rounded {} > LP {}", sol.assignment_cost, sol.lp_objective);
    }

    #[test]
    fn lp_lower_bounds_exact(r in rand_inst()) {
        let inst = build(&r);
        let sol = shmoys_tardos::solve(&inst).unwrap();
        let opt = exact::solve(&inst).unwrap();
        prop_assert!(sol.lp_objective <= opt.total_cost(&inst) + 1e-6,
            "LP {} > OPT {}", sol.lp_objective, opt.total_cost(&inst));
    }

    #[test]
    fn rounding_overflow_bounded(r in rand_inst()) {
        let inst = build(&r);
        let sol = shmoys_tardos::solve(&inst).unwrap();
        let max_w = r.weights.iter().cloned().fold(0.0, f64::max);
        prop_assert!(sol.assignment.max_overflow(&inst) <= max_w + 1e-9);
    }

    #[test]
    fn transportation_agrees_with_lp(r in rand_inst()) {
        let inst = build(&r);
        let a = lp_relax::solve_lp(&inst).unwrap();
        let b = lp_relax::solve_transportation(&inst).unwrap();
        prop_assert!((a.objective - b.objective).abs() < 1e-5,
            "LP {} vs transportation {}", a.objective, b.objective);
    }

    #[test]
    fn greedy_feasible_when_it_succeeds(r in rand_inst()) {
        let inst = build(&r);
        if let Ok(a) = greedy::solve(&inst) {
            prop_assert!(a.is_capacity_feasible(&inst));
            let opt = exact::solve(&inst).unwrap();
            prop_assert!(a.total_cost(&inst) >= opt.total_cost(&inst) - 1e-9);
        }
    }

    /// The independent validity certifier (`verify::check_assignment`)
    /// accepts every Shmoys–Tardos output: in-range bins, no forbidden
    /// pairs, loads within the augmented capacities.
    #[test]
    fn st_output_passes_validity_certificate(r in rand_inst()) {
        let inst = build(&r);
        let sol = shmoys_tardos::solve(&inst).unwrap();
        let violations = check_assignment(&inst, &sol.assignment, 1e-9);
        prop_assert!(violations.is_empty(), "certifier rejected ST output: {violations:?}");
    }

    #[test]
    fn fractional_solution_covers_items(r in rand_inst()) {
        let inst = build(&r);
        let frac = lp_relax::solve_relaxation(&inst).unwrap();
        prop_assert!(frac.covers_all_items(r.items));
    }

    /// The dense tableau and the sparse revised simplex solve the same
    /// assignment LP; their optima must agree on every random relaxation.
    #[test]
    fn dense_and_revised_agree_on_relaxation(r in rand_inst()) {
        let inst = build(&r);
        let dense = lp_relax::solve_lp_with(&inst, SolverBackend::Dense).unwrap();
        let revised = lp_relax::solve_lp_with(&inst, SolverBackend::Revised).unwrap();
        prop_assert!((dense.objective - revised.objective).abs()
            < 1e-5 * (1.0 + dense.objective.abs()),
            "dense {} vs revised {}", dense.objective, revised.objective);
    }

    /// Widened fast-path applicability: uniform per-item weights with
    /// FORBIDDEN arcs still qualify (`has_uniform_allowed_weights`), and
    /// the transportation optimum matches the general LP there. Bin 0 is
    /// never forbidden, so every item fits somewhere.
    #[test]
    fn transportation_agrees_with_forbidden_arcs(
        r in rand_inst(),
        forbidden in proptest::collection::vec(proptest::bool::ANY, 5 * 3),
    ) {
        let mut inst = build(&r);
        for i in 0..r.items {
            for j in 1..r.bins {
                if forbidden[(i * r.bins + j) % forbidden.len()] {
                    inst.set_cost(i, j, FORBIDDEN);
                }
            }
        }
        // Forbidding arcs can push every item onto one bin; size capacities
        // so the instance stays feasible no matter how arcs were removed.
        let total: f64 = r.weights.iter().sum();
        for j in 0..r.bins {
            inst.set_capacity(j, total + 2.0);
        }
        prop_assert!(inst.has_uniform_allowed_weights());
        let a = lp_relax::solve_lp(&inst).unwrap();
        let b = lp_relax::solve_transportation(&inst).unwrap();
        prop_assert!((a.objective - b.objective).abs()
            < 1e-5 * (1.0 + a.objective.abs()),
            "LP {} vs transportation {}", a.objective, b.objective);
    }
}
