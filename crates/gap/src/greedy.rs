//! Greedy regret heuristic for GAP (ablation baseline for Shmoys–Tardos).
//!
//! Items are processed in decreasing *regret* order (cheapest vs
//! second-cheapest admissible bin); each item goes to its cheapest bin that
//! still has room. No quality guarantee — used by the `ablation_gap` bench
//! to quantify what the LP rounding buys.

use crate::instance::{Assignment, GapInstance};
use crate::lp_relax::GapError;

/// Solves `inst` greedily.
///
/// # Errors
///
/// Returns [`GapError::Infeasible`] when some item finds no bin with
/// remaining capacity (the greedy order may paint itself into a corner even
/// on feasible instances), and [`GapError::ItemDoesNotFit`] when an item is
/// inadmissible everywhere.
pub fn solve(inst: &GapInstance) -> Result<Assignment, GapError> {
    let n = inst.items();
    let m = inst.bins();

    for i in 0..n {
        if !(0..m).any(|j| inst.cost(i, j).is_finite() && inst.weight(i, j) <= inst.capacity(j)) {
            return Err(GapError::ItemDoesNotFit { item: i });
        }
    }

    // Regret = cost(second-best) - cost(best); large regret first.
    let mut order: Vec<usize> = (0..n).collect();
    let regret = |i: usize| -> f64 {
        let mut best = f64::INFINITY;
        let mut second = f64::INFINITY;
        for j in 0..m {
            let c = inst.cost(i, j);
            if c < best {
                second = best;
                best = c;
            } else if c < second {
                second = c;
            }
        }
        if second.is_finite() {
            second - best
        } else {
            f64::MAX
        }
    };
    order.sort_by(|&a, &b| {
        regret(b)
            .partial_cmp(&regret(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut remaining: Vec<f64> = (0..m).map(|j| inst.capacity(j)).collect();
    let mut of = vec![usize::MAX; n];
    for &i in &order {
        let mut best: Option<usize> = None;
        #[allow(clippy::needless_range_loop)] // j is a bin id
        for j in 0..m {
            if inst.cost(i, j).is_finite()
                && inst.weight(i, j) <= remaining[j] + 1e-12
                && best.is_none_or(|b| inst.cost(i, j) < inst.cost(i, b))
            {
                best = Some(j);
            }
        }
        let Some(j) = best else {
            return Err(GapError::Infeasible);
        };
        of[i] = j;
        remaining[j] -= inst.weight(i, j);
    }
    Ok(Assignment::new(of))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_instance() {
        let mut inst = GapInstance::new(2, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 5.0);
        inst.set_cost(1, 0, 5.0).set_cost(1, 1, 1.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        inst.set_capacity(1, 1.0);
        let a = solve(&inst).unwrap();
        assert_eq!(a.bin_of(0), 0);
        assert_eq!(a.bin_of(1), 1);
        assert!(a.is_capacity_feasible(&inst));
    }

    #[test]
    fn respects_capacity() {
        let mut inst = GapInstance::new(3, 2);
        for i in 0..3 {
            inst.set_cost(i, 0, 1.0).set_cost(i, 1, 2.0);
        }
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        inst.set_capacity(1, 2.0);
        let a = solve(&inst).unwrap();
        assert!(a.is_capacity_feasible(&inst));
    }

    #[test]
    fn reports_infeasible() {
        let mut inst = GapInstance::new(2, 1);
        inst.set_cost(0, 0, 1.0).set_cost(1, 0, 1.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        assert_eq!(solve(&inst).unwrap_err(), GapError::Infeasible);
    }

    #[test]
    fn item_does_not_fit() {
        let mut inst = GapInstance::new(1, 1);
        inst.set_cost(0, 0, 1.0);
        inst.set_uniform_weights(2.0);
        inst.set_capacity(0, 1.0);
        assert_eq!(
            solve(&inst).unwrap_err(),
            GapError::ItemDoesNotFit { item: 0 }
        );
    }

    #[test]
    fn high_regret_items_first() {
        // Item 1 has huge regret; it must claim the shared cheap bin.
        let mut inst = GapInstance::new(2, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 2.0);
        inst.set_cost(1, 0, 1.0).set_cost(1, 1, 100.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        inst.set_capacity(1, 1.0);
        let a = solve(&inst).unwrap();
        assert_eq!(a.bin_of(1), 0);
        assert_eq!(a.bin_of(0), 1);
    }
}
