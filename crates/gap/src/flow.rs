//! Minimum-cost flow on sparse graphs (successive shortest paths with
//! Johnson potentials).
//!
//! Used by the Shmoys–Tardos rounding to extract a minimum-cost integral
//! matching from the fractional LP solution, and by the transportation fast
//! path of the relaxation. Arc costs must be non-negative (true for every
//! graph built in this crate), which lets each augmentation run Dijkstra on
//! reduced costs instead of Bellman–Ford — the difference between seconds
//! and minutes on the paper's 400-node sweeps.

use mec_num::approx_zero;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A directed arc with residual bookkeeping.
#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: f64,
    cost: f64,
    flow: f64,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
}

/// Handle to an arc added with [`MinCostFlow::add_edge`]; use it to query
/// the final flow with [`MinCostFlow::flow_on`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcId(usize);

/// Outcome of a [`MinCostFlow::run`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Amount of flow actually routed (≤ the requested amount).
    pub flow: f64,
    /// Total cost of the routed flow.
    pub cost: f64,
}

/// Sparse min-cost-flow network builder/solver.
///
/// # Examples
///
/// ```
/// use mec_gap::flow::MinCostFlow;
///
/// // s=0 -> a=1 -> t=2 with capacity 1, plus a costlier parallel path.
/// let mut f = MinCostFlow::new(3);
/// let cheap = f.add_edge(0, 1, 1.0, 1.0);
/// f.add_edge(1, 2, 1.0, 1.0);
/// f.add_edge(0, 2, 1.0, 10.0);
/// let r = f.run(0, 2, 2.0);
/// assert!((r.flow - 2.0).abs() < 1e-9);
/// assert!((r.cost - 12.0).abs() < 1e-9);
/// assert!((f.flow_on(cheap) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    n: usize,
    arcs: Vec<Arc>,
    adj: Vec<Vec<usize>>,
}

const EPS: f64 = 1e-12;

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl MinCostFlow {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            n,
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds a directed arc `u -> v` with the given capacity and per-unit
    /// cost; returns a handle for [`MinCostFlow::flow_on`].
    ///
    /// # Panics
    ///
    /// Panics if a node is out of range, the capacity is negative or
    /// non-finite, or the cost is negative or non-finite (non-negative
    /// costs are what allow the Dijkstra-based solver).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64, cost: f64) -> ArcId {
        assert!(u < self.n && v < self.n, "node out of range");
        assert!(cap.is_finite() && cap >= 0.0, "capacity must be >= 0");
        assert!(cost.is_finite() && cost >= 0.0, "cost must be >= 0");
        let fwd = self.arcs.len();
        self.arcs.push(Arc {
            to: v,
            cap,
            cost,
            flow: 0.0,
            rev: fwd + 1,
        });
        self.arcs.push(Arc {
            to: u,
            cap: 0.0,
            cost: -cost,
            flow: 0.0,
            rev: fwd,
        });
        self.adj[u].push(fwd);
        self.adj[v].push(fwd + 1);
        ArcId(fwd)
    }

    /// Flow currently on the arc (after [`MinCostFlow::run`]).
    pub fn flow_on(&self, id: ArcId) -> f64 {
        self.arcs[id.0].flow
    }

    /// Routes up to `amount` units of flow from `s` to `t` at minimum cost.
    ///
    /// Returns the amount actually routed and its cost. If the network
    /// cannot carry the full amount, the result's `flow` is smaller than
    /// `amount` (callers decide whether that is an error).
    ///
    /// # Panics
    ///
    /// Panics if `s == t`, a node is out of range, or `amount` is negative.
    pub fn run(&mut self, s: usize, t: usize, amount: f64) -> FlowResult {
        assert!(s < self.n && t < self.n && s != t, "bad terminals");
        assert!(amount >= 0.0, "amount must be >= 0");
        let mut remaining = amount;
        let mut total_cost = 0.0;
        let mut routed = 0.0;
        // Johnson potentials: all arc costs are >= 0 initially, so pi = 0 is
        // a valid start; after each Dijkstra, pi[v] += dist[v] keeps every
        // residual reduced cost non-negative.
        let mut pi = vec![0.0; self.n];
        let mut dist = vec![f64::INFINITY; self.n];
        let mut pred: Vec<Option<usize>> = vec![None; self.n];

        while remaining > EPS {
            dist.fill(f64::INFINITY);
            pred.fill(None);
            dist[s] = 0.0;
            let mut heap = BinaryHeap::new();
            heap.push(HeapEntry { dist: 0.0, node: s });
            while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
                if d > dist[u] + EPS {
                    continue;
                }
                for &ai in &self.adj[u] {
                    let a = &self.arcs[ai];
                    // Saturated arc: residual capacity within EPS of zero
                    // (flow never exceeds cap, so this is a one-sided test).
                    if approx_zero(a.cap - a.flow, EPS) {
                        continue;
                    }
                    let rc = a.cost + pi[u] - pi[a.to];
                    debug_assert!(rc > -1e-6, "negative reduced cost {rc}");
                    let nd = d + rc.max(0.0);
                    if nd < dist[a.to] - EPS {
                        dist[a.to] = nd;
                        pred[a.to] = Some(ai);
                        heap.push(HeapEntry {
                            dist: nd,
                            node: a.to,
                        });
                    }
                }
            }
            if !dist[t].is_finite() {
                break; // No augmenting path left.
            }
            for v in 0..self.n {
                if dist[v].is_finite() {
                    pi[v] += dist[v];
                }
            }
            // Bottleneck along the path.
            let mut push = remaining;
            let mut v = t;
            while v != s {
                let ai = pred[v].expect("path is connected");
                let a = &self.arcs[ai];
                push = push.min(a.cap - a.flow);
                v = self.arcs[a.rev].to;
            }
            if approx_zero(push, EPS) {
                break; // Degenerate path; cannot make progress.
            }
            // Apply, accumulating the true (unreduced) cost.
            let mut v = t;
            let mut path_cost = 0.0;
            while v != s {
                let ai = pred[v].expect("path is connected");
                let rev = self.arcs[ai].rev;
                path_cost += self.arcs[ai].cost;
                self.arcs[ai].flow += push;
                self.arcs[rev].flow -= push;
                v = self.arcs[rev].to;
            }
            total_cost += push * path_cost;
            routed += push;
            remaining -= push;
        }
        FlowResult {
            flow: routed,
            cost: total_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_num::assert_approx_eq;

    #[test]
    fn single_path() {
        let mut f = MinCostFlow::new(2);
        f.add_edge(0, 1, 5.0, 2.0);
        let r = f.run(0, 1, 3.0);
        assert_approx_eq!(r.flow, 3.0, 1e-12);
        assert_approx_eq!(r.cost, 6.0, 1e-12);
    }

    #[test]
    fn prefers_cheaper_path() {
        let mut f = MinCostFlow::new(4);
        let cheap1 = f.add_edge(0, 1, 1.0, 1.0);
        f.add_edge(1, 3, 1.0, 1.0);
        let exp1 = f.add_edge(0, 2, 1.0, 5.0);
        f.add_edge(2, 3, 1.0, 5.0);
        let r = f.run(0, 3, 1.0);
        assert_approx_eq!(r.cost, 2.0, 1e-12);
        assert_approx_eq!(f.flow_on(cheap1), 1.0, 1e-12);
        assert_approx_eq!(f.flow_on(exp1), 0.0, 1e-12);
    }

    #[test]
    fn splits_when_capacity_binds() {
        let mut f = MinCostFlow::new(4);
        f.add_edge(0, 1, 1.0, 1.0);
        f.add_edge(1, 3, 1.0, 1.0);
        f.add_edge(0, 2, 1.0, 5.0);
        f.add_edge(2, 3, 1.0, 5.0);
        let r = f.run(0, 3, 2.0);
        assert_approx_eq!(r.flow, 2.0, 1e-12);
        assert_approx_eq!(r.cost, 12.0, 1e-12);
    }

    #[test]
    fn partial_flow_when_capacity_insufficient() {
        let mut f = MinCostFlow::new(2);
        f.add_edge(0, 1, 1.0, 1.0);
        let r = f.run(0, 1, 5.0);
        assert_approx_eq!(r.flow, 1.0, 1e-12);
    }

    #[test]
    fn rerouting_via_residual_arcs() {
        // The second augmentation must undo part of the first via the
        // residual arc a->b: optimum routes {s-a-t, s-b-t} at cost 22.
        let mut f = MinCostFlow::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        f.add_edge(s, a, 1.0, 1.0);
        f.add_edge(a, t, 1.0, 10.0);
        f.add_edge(s, b, 1.0, 10.0);
        f.add_edge(b, t, 1.0, 1.0);
        f.add_edge(a, b, 1.0, 0.0);
        let r = f.run(s, t, 2.0);
        assert_approx_eq!(r.flow, 2.0, 1e-12);
        assert!((r.cost - 22.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_capacities() {
        let mut f = MinCostFlow::new(3);
        f.add_edge(0, 1, 0.5, 1.0);
        f.add_edge(0, 1, 0.75, 2.0);
        f.add_edge(1, 2, 2.0, 0.0);
        let r = f.run(0, 2, 1.0);
        assert!((r.flow - 1.0).abs() < 1e-9);
        assert!((r.cost - (0.5 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn disconnected_routes_zero() {
        let mut f = MinCostFlow::new(3);
        f.add_edge(0, 1, 1.0, 1.0);
        let r = f.run(0, 2, 1.0);
        assert_approx_eq!(r.flow, 0.0, 1e-12);
        assert_approx_eq!(r.cost, 0.0, 1e-12);
    }

    #[test]
    fn larger_random_instance_matches_greedy_lower_bound() {
        // Bipartite 6x6 unit assignment: SSP must return a perfect matching
        // whose cost is >= the sum of row minima and <= sum of row maxima.
        let costs = [
            [4.0, 1.0, 3.0, 2.0, 9.0, 5.0],
            [2.0, 0.5, 6.0, 3.0, 1.0, 8.0],
            [7.0, 2.0, 2.5, 1.0, 4.0, 3.0],
            [1.5, 6.0, 4.0, 2.0, 3.0, 2.0],
            [3.0, 3.0, 1.0, 5.0, 2.0, 4.0],
            [5.0, 4.0, 2.0, 3.0, 6.0, 1.0],
        ];
        let n = 6;
        let (s, t) = (2 * n, 2 * n + 1);
        let mut f = MinCostFlow::new(2 * n + 2);
        #[allow(clippy::needless_range_loop)] // i, j are bipartite node ids
        for i in 0..n {
            f.add_edge(s, i, 1.0, 0.0);
            f.add_edge(n + i, t, 1.0, 0.0);
            for j in 0..n {
                f.add_edge(i, n + j, 1.0, costs[i][j]);
            }
        }
        let r = f.run(s, t, n as f64);
        assert!((r.flow - n as f64).abs() < 1e-9);
        let lb: f64 = costs
            .iter()
            .map(|row| row.iter().cloned().fold(f64::INFINITY, f64::min))
            .sum();
        assert!(r.cost >= lb - 1e-9);
        // Known optimum by inspection/brute force: check against exhaustive.
        let mut best = f64::INFINITY;
        let mut perm = [0usize; 6];
        fn go(
            k: usize,
            used: &mut u32,
            perm: &mut [usize; 6],
            costs: &[[f64; 6]; 6],
            best: &mut f64,
        ) {
            if k == 6 {
                let c: f64 = (0..6).map(|i| costs[i][perm[i]]).sum();
                if c < *best {
                    *best = c;
                }
                return;
            }
            for j in 0..6 {
                if *used & (1 << j) == 0 {
                    *used |= 1 << j;
                    perm[k] = j;
                    go(k + 1, used, perm, costs, best);
                    *used &= !(1 << j);
                }
            }
        }
        let mut used = 0u32;
        go(0, &mut used, &mut perm, &costs, &mut best);
        assert!(
            (r.cost - best).abs() < 1e-9,
            "SSP {} vs brute {}",
            r.cost,
            best
        );
    }

    #[test]
    #[should_panic(expected = "cost must be >= 0")]
    fn rejects_negative_costs() {
        let mut f = MinCostFlow::new(2);
        f.add_edge(0, 1, 1.0, -1.0);
    }
}
