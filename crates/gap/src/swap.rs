//! 2-opt local improvement for GAP assignments.
//!
//! Post-processes any feasible assignment with single-item *shifts* and
//! pairwise *swaps* while respecting capacities. Used as an ablation on the
//! Shmoys–Tardos output and to strengthen the greedy heuristic.

use crate::instance::{Assignment, GapInstance};

/// Result of [`improve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapResult {
    /// Cost before improvement.
    pub before: f64,
    /// Cost after improvement.
    pub after: f64,
    /// Shifts applied (item moved to another bin).
    pub shifts: usize,
    /// Swaps applied (two items exchanged bins).
    pub swaps: usize,
}

/// Improves `assignment` in place with best-improvement shifts and swaps
/// until a local optimum or `max_moves` moves.
///
/// Only capacity-feasible moves are considered; if the input is feasible,
/// the output is too.
///
/// # Panics
///
/// Panics if the assignment does not match the instance dimensions.
pub fn improve(inst: &GapInstance, assignment: &mut Assignment, max_moves: usize) -> SwapResult {
    assert_eq!(
        assignment.len(),
        inst.items(),
        "assignment/instance mismatch"
    );
    let before = assignment.total_cost(inst);
    let mut shifts = 0;
    let mut swaps = 0;

    let mut loads = assignment.loads(inst);
    let mut of: Vec<usize> = (0..inst.items()).map(|i| assignment.bin_of(i)).collect();

    for _ in 0..max_moves {
        let mut best_delta = -1e-9;
        // (kind, i, j-or-item2, target-bin-for-shift)
        let mut best_move: Option<(bool, usize, usize)> = None;

        // Shifts: move item i to bin j.
        #[allow(clippy::needless_range_loop)] // i, j are item/bin ids
        for i in 0..inst.items() {
            let from = of[i];
            for j in 0..inst.bins() {
                if j == from || !inst.cost(i, j).is_finite() {
                    continue;
                }
                if loads[j] + inst.weight(i, j) > inst.capacity(j) + 1e-12 {
                    continue;
                }
                let delta = inst.cost(i, j) - inst.cost(i, from);
                if delta < best_delta {
                    best_delta = delta;
                    best_move = Some((false, i, j));
                }
            }
        }
        // Swaps: exchange the bins of items a and b.
        for a in 0..inst.items() {
            for b in (a + 1)..inst.items() {
                let (ba, bb) = (of[a], of[b]);
                if ba == bb {
                    continue;
                }
                if !inst.cost(a, bb).is_finite() || !inst.cost(b, ba).is_finite() {
                    continue;
                }
                let la = loads[ba] - inst.weight(a, ba) + inst.weight(b, ba);
                let lb = loads[bb] - inst.weight(b, bb) + inst.weight(a, bb);
                if la > inst.capacity(ba) + 1e-12 || lb > inst.capacity(bb) + 1e-12 {
                    continue;
                }
                let delta =
                    inst.cost(a, bb) + inst.cost(b, ba) - inst.cost(a, ba) - inst.cost(b, bb);
                if delta < best_delta {
                    best_delta = delta;
                    best_move = Some((true, a, b));
                }
            }
        }

        match best_move {
            Some((false, i, j)) => {
                let from = of[i];
                loads[from] -= inst.weight(i, from);
                loads[j] += inst.weight(i, j);
                of[i] = j;
                shifts += 1;
            }
            Some((true, a, b)) => {
                let (ba, bb) = (of[a], of[b]);
                loads[ba] = loads[ba] - inst.weight(a, ba) + inst.weight(b, ba);
                loads[bb] = loads[bb] - inst.weight(b, bb) + inst.weight(a, bb);
                of.swap(a, b);
                swaps += 1;
            }
            None => break,
        }
    }

    *assignment = Assignment::new(of);
    SwapResult {
        before,
        after: assignment.total_cost(inst),
        shifts,
        swaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossed() -> (GapInstance, Assignment) {
        // Two items assigned "crossed" — swapping them is strictly better.
        let mut inst = GapInstance::new(2, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 5.0);
        inst.set_cost(1, 0, 5.0).set_cost(1, 1, 1.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        inst.set_capacity(1, 1.0);
        (inst, Assignment::new(vec![1, 0]))
    }

    #[test]
    fn swap_fixes_crossed_assignment() {
        let (inst, mut a) = crossed();
        let res = improve(&inst, &mut a, 100);
        assert_eq!(res.swaps, 1);
        assert!((res.after - 2.0).abs() < 1e-9);
        assert!(res.after < res.before);
        assert!(a.is_capacity_feasible(&inst));
    }

    #[test]
    fn shift_moves_to_cheaper_open_bin() {
        let mut inst = GapInstance::new(1, 2);
        inst.set_cost(0, 0, 9.0).set_cost(0, 1, 1.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        inst.set_capacity(1, 1.0);
        let mut a = Assignment::new(vec![0]);
        let res = improve(&inst, &mut a, 100);
        assert_eq!(res.shifts, 1);
        assert_eq!(a.bin_of(0), 1);
    }

    #[test]
    fn respects_capacity() {
        // Cheaper bin is full: no move possible.
        let mut inst = GapInstance::new(2, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 9.0);
        inst.set_cost(1, 0, 1.0).set_cost(1, 1, 9.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        inst.set_capacity(1, 1.0);
        let mut a = Assignment::new(vec![0, 1]);
        let res = improve(&inst, &mut a, 100);
        assert_eq!(res.shifts + res.swaps, 0);
        assert_eq!(res.before, res.after);
    }

    #[test]
    fn never_worsens() {
        // Random-ish instance: improvement is monotone.
        let mut inst = GapInstance::new(5, 3);
        let costs = [
            [3.0, 1.0, 4.0],
            [1.0, 5.0, 9.0],
            [2.0, 6.0, 5.0],
            [3.0, 5.0, 8.0],
            [9.0, 7.0, 9.0],
        ];
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                inst.set_cost(i, j, c);
            }
            inst.set_item_weight(i, 1.0);
        }
        for j in 0..3 {
            inst.set_capacity(j, 2.0);
        }
        let mut a = Assignment::new(vec![0, 0, 1, 1, 2]);
        let res = improve(&inst, &mut a, 100);
        assert!(res.after <= res.before + 1e-12);
        assert!(a.is_capacity_feasible(&inst));
    }

    #[test]
    fn move_budget_respected() {
        let (inst, mut a) = crossed();
        let res = improve(&inst, &mut a, 0);
        assert_eq!(res.shifts + res.swaps, 0);
        assert_eq!(res.before, res.after);
    }
}
