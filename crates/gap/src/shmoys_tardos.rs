//! Shmoys–Tardos rounding for the Generalized Assignment Problem.
//!
//! Given an optimal fractional solution of the GAP relaxation, the rounding
//! of Shmoys & Tardos (Math. Programming 62, 1993) produces an integral
//! assignment whose cost is **no more than the LP optimum** and whose bin
//! loads exceed capacity by **at most the largest item weight in that bin**
//! (the "2-approximation with capacity augmentation" guarantee the paper's
//! Lemma 2 builds on).
//!
//! Procedure:
//! 1. For each bin `j`, sort its fractionally assigned items by
//!    non-increasing weight and pour their fractions into unit-size *slots*
//!    (`⌈Σ_i x_ij⌉` of them). An item's fraction may straddle two
//!    consecutive slots.
//! 2. The items and slots form a bipartite graph in which the fractional
//!    solution is a fractional perfect matching on the item side; a
//!    minimum-cost integral matching therefore exists and costs no more.
//!    We extract it with unit-capacity min-cost flow.

use crate::flow::MinCostFlow;
use crate::instance::{Assignment, GapInstance};
use crate::lp_relax::{solve_relaxation_with, FractionalSolution, GapError, LpBackend};

/// Fractional entries below which slot construction stays sequential:
/// thread startup (~tens of µs) dwarfs the per-bin sort-and-pour work on
/// small relaxations.
const PAR_MIN_ENTRIES: usize = 1 << 14;

/// Worker count for slot construction over `entries` fractional entries
/// split across at most `bins` bins; `1` means "stay sequential".
fn par_workers(entries: usize, bins: usize) -> usize {
    if entries < PAR_MIN_ENTRIES || bins < 2 {
        return 1;
    }
    std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(16)
        .min(bins)
}

/// Result of [`solve`]: the rounded assignment plus the LP lower bound used
/// to certify its quality.
#[derive(Debug, Clone)]
pub struct StSolution {
    /// The integral assignment (cost ≤ `lp_objective`).
    pub assignment: Assignment,
    /// Optimal value of the LP relaxation (lower bound on integral OPT).
    pub lp_objective: f64,
    /// Cost of `assignment` on the instance.
    pub assignment_cost: f64,
}

/// Rounds a fractional solution to an integral assignment.
///
/// # Errors
///
/// Returns [`GapError::Infeasible`] if the matching cannot saturate every
/// item (cannot happen for a valid fractional solution; guards against
/// numerically corrupt inputs).
///
/// # Panics
///
/// Panics if `frac` references items/bins outside the instance.
pub fn round(inst: &GapInstance, frac: &FractionalSolution) -> Result<Assignment, GapError> {
    let workers = par_workers(frac.fractions.len(), inst.bins());
    round_with(inst, frac, workers)
}

/// [`round`] with an explicit worker count for the slot-construction
/// fan-out — test/bench hook for exercising the parallel path regardless
/// of instance size.
#[doc(hidden)]
pub fn round_workers(
    inst: &GapInstance,
    frac: &FractionalSolution,
    workers: usize,
) -> Result<Assignment, GapError> {
    round_with(inst, frac, workers)
}

#[derive(Debug)]
struct SlotEdge {
    item: usize,
    bin: usize,
}

/// Step 1 of the rounding for a single bin: sort its fractional entries by
/// non-increasing weight (ties by item id for determinism) and pour them
/// into `⌈Σ_i x_ij⌉` unit slots, recording each (item, slot) edge once.
/// Pure per-bin work — the parallel fan-out runs it on disjoint bins and
/// concatenates the outputs in bin order.
fn bin_slots(inst: &GapInstance, j: usize, mut entries: Vec<(usize, f64)>) -> Vec<Vec<SlotEdge>> {
    entries.sort_by(|a, b| {
        inst.weight(b.0, j)
            .partial_cmp(&inst.weight(a.0, j))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let total: f64 = entries.iter().map(|(_, f)| f).sum();
    let slots = (total - 1e-9).ceil().max(1.0) as usize;
    let mut out: Vec<Vec<SlotEdge>> = (0..slots).map(|_| Vec::new()).collect();
    let mut current = 0usize;
    let mut filled = 0.0f64; // mass in the current slot
    for (item, mut f) in entries {
        while f > 1e-12 {
            if filled >= 1.0 - 1e-12 {
                current += 1;
                filled = 0.0;
            }
            debug_assert!(current < out.len(), "slot overflow in bin {j}");
            let take = f.min(1.0 - filled);
            // Record the edge once per (item, slot).
            if out[current]
                .last()
                .is_none_or(|e: &SlotEdge| e.item != item)
            {
                out[current].push(SlotEdge { item, bin: j });
            }
            filled += take;
            f -= take;
        }
    }
    out
}

fn round_with(
    inst: &GapInstance,
    frac: &FractionalSolution,
    workers: usize,
) -> Result<Assignment, GapError> {
    let _span = mec_obs::span("gap.round");
    let n = inst.items();
    let m = inst.bins();

    // 1. Build slots per bin — independent per bin, so fan the bins out
    //    across the bounded worker pool and stitch the outputs back
    //    together in bin order (deterministic regardless of worker count).
    let per_bin = frac.per_bin(m);
    let mut slot_edges: Vec<Vec<SlotEdge>> = Vec::new(); // per slot: candidate items
    if workers <= 1 {
        for (j, entries) in per_bin.into_iter().enumerate() {
            if !entries.is_empty() {
                slot_edges.extend(bin_slots(inst, j, entries));
            }
        }
    } else {
        type BinJob = (usize, Vec<(usize, f64)>);
        let jobs: Vec<BinJob> = per_bin
            .into_iter()
            .enumerate()
            .filter(|(_, e)| !e.is_empty())
            .collect();
        let chunk = jobs.len().div_ceil(workers);
        let chunks: Vec<&[BinJob]> = jobs.chunks(chunk.max(1)).collect();
        let per_chunk: Vec<Vec<Vec<SlotEdge>>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    s.spawn(move |_| {
                        chunk
                            .iter()
                            .flat_map(|(j, entries)| bin_slots(inst, *j, entries.clone()))
                            .collect::<Vec<Vec<SlotEdge>>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                // lint: allow(panics) — a worker panic is already fatal;
                // joining re-raises it on the caller rather than
                // deadlocking the scope.
                .map(|h| h.join().expect("slot construction worker panicked"))
                .collect()
        })
        // lint: allow(panics) — propagate worker panics to the caller.
        .expect("slot construction scope panicked");
        slot_edges.extend(per_chunk.into_iter().flatten());
    }

    // 2. Min-cost perfect matching on the item side via unit-cap flow.
    let s_count = slot_edges.len();
    mec_obs::counter_add("gap.rounding_slots", s_count as u64);
    let src = 0;
    let item0 = 1;
    let slot0 = 1 + n;
    let sink = 1 + n + s_count;
    let mut f = MinCostFlow::new(n + s_count + 2);
    let mut pair_arcs = Vec::new();
    for i in 0..n {
        f.add_edge(src, item0 + i, 1.0, 0.0);
    }
    for (s, edges) in slot_edges.iter().enumerate() {
        for e in edges {
            let arc = f.add_edge(item0 + e.item, slot0 + s, 1.0, inst.cost(e.item, e.bin));
            pair_arcs.push((e.item, e.bin, arc));
        }
        f.add_edge(slot0 + s, sink, 1.0, 0.0);
    }
    let res = f.run(src, sink, n as f64);
    if res.flow + 1e-6 < n as f64 {
        return Err(GapError::Infeasible);
    }

    let mut of = vec![usize::MAX; n];
    for (item, bin, arc) in pair_arcs {
        if f.flow_on(arc) > 0.5 {
            of[item] = bin;
        }
    }
    debug_assert!(of.iter().all(|&b| b != usize::MAX));
    Ok(Assignment::new(of))
}

/// Solves a GAP instance end to end: relaxation + Shmoys–Tardos rounding.
///
/// # Errors
///
/// Propagates [`GapError`] from the relaxation ([`solve_relaxation_with`])
/// or the rounding ([`round`]).
///
/// # Examples
///
/// ```
/// use mec_gap::{GapInstance, shmoys_tardos};
///
/// let mut inst = GapInstance::new(2, 2);
/// inst.set_cost(0, 0, 1.0).set_cost(0, 1, 3.0);
/// inst.set_cost(1, 0, 2.0).set_cost(1, 1, 1.0);
/// inst.set_uniform_weights(1.0);
/// inst.set_capacity(0, 1.0);
/// inst.set_capacity(1, 1.0);
/// let sol = shmoys_tardos::solve(&inst).unwrap();
/// assert!(sol.assignment_cost <= sol.lp_objective + 1e-6);
/// ```
pub fn solve(inst: &GapInstance) -> Result<StSolution, GapError> {
    solve_with(inst, LpBackend::Auto)
}

/// [`solve`] with an explicit relaxation backend ([`LpBackend`]): dense
/// tableau, revised simplex, or the transportation fast path. All backends
/// produce the same LP optimum, so the rounded assignment differs between
/// them only by equal-cost ties.
///
/// # Errors
///
/// Same as [`solve`].
///
/// # Panics
///
/// [`LpBackend::Transportation`] panics when the instance is outside the
/// fast path's applicability class.
pub fn solve_with(inst: &GapInstance, backend: LpBackend) -> Result<StSolution, GapError> {
    let frac = {
        let _span = mec_obs::span("gap.lp_relax");
        solve_relaxation_with(inst, backend)?
    };
    let assignment = round(inst, &frac)?;
    let assignment_cost = assignment.total_cost(inst);
    #[cfg(feature = "verify")]
    {
        let violations = crate::verify::check_assignment(inst, &assignment, 1e-9);
        assert!(
            violations.is_empty(),
            "Shmoys-Tardos self-certification failed:\n{}",
            violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    Ok(StSolution {
        assignment,
        lp_objective: frac.objective,
        assignment_cost,
    })
}

/// The per-bin augmented-capacity bound the rounding guarantees:
/// `load(j) ≤ CAP_j + max_i w_ij` over items allowed in `j`.
pub fn augmented_capacity(inst: &GapInstance, bin: usize) -> f64 {
    let max_w = (0..inst.items())
        .filter(|&i| inst.cost(i, bin).is_finite())
        .map(|i| inst.weight(i, bin))
        .fold(0.0, f64::max);
    inst.capacity(bin) + max_w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(n: usize) -> GapInstance {
        let mut inst = GapInstance::new(n, n);
        for i in 0..n {
            for j in 0..n {
                inst.set_cost(i, j, if i == j { 1.0 } else { 10.0 });
            }
        }
        inst.set_uniform_weights(1.0);
        for j in 0..n {
            inst.set_capacity(j, 1.0);
        }
        inst
    }

    #[test]
    fn diagonal_optimum() {
        let inst = diag(4);
        let sol = solve(&inst).unwrap();
        assert!((sol.assignment_cost - 4.0).abs() < 1e-6);
        for i in 0..4 {
            assert_eq!(sol.assignment.bin_of(i), i);
        }
    }

    #[test]
    fn cost_never_exceeds_lp() {
        let inst = diag(5);
        let sol = solve(&inst).unwrap();
        assert!(sol.assignment_cost <= sol.lp_objective + 1e-6);
    }

    #[test]
    fn load_within_augmented_capacity() {
        // Capacities force fractional splits; rounding may overflow by at
        // most one item weight.
        let mut inst = GapInstance::new(4, 2);
        for i in 0..4 {
            inst.set_cost(i, 0, 1.0).set_cost(i, 1, 2.0);
            inst.set_item_weight(i, 1.0);
        }
        inst.set_capacity(0, 2.0);
        inst.set_capacity(1, 2.0);
        let sol = solve(&inst).unwrap();
        let loads = sol.assignment.loads(&inst);
        #[allow(clippy::needless_range_loop)] // j is a bin id
        for j in 0..2 {
            assert!(loads[j] <= augmented_capacity(&inst, j) + 1e-9);
        }
    }

    #[test]
    fn heterogeneous_weights() {
        let mut inst = GapInstance::new(3, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 2.0);
        inst.set_cost(1, 0, 1.0).set_cost(1, 1, 2.0);
        inst.set_cost(2, 0, 5.0).set_cost(2, 1, 1.0);
        inst.set_item_weight(0, 2.0);
        inst.set_item_weight(1, 1.0);
        inst.set_item_weight(2, 1.5);
        inst.set_capacity(0, 3.0);
        inst.set_capacity(1, 2.0);
        let sol = solve(&inst).unwrap();
        assert!(sol.assignment_cost <= sol.lp_objective + 1e-6);
        assert!(sol.assignment.max_overflow(&inst) <= 2.0 + 1e-9); // max item weight
    }

    #[test]
    fn single_bin_all_fit() {
        let mut inst = GapInstance::new(3, 1);
        for i in 0..3 {
            inst.set_cost(i, 0, 1.0);
            inst.set_item_weight(i, 1.0);
        }
        inst.set_capacity(0, 3.0);
        let sol = solve(&inst).unwrap();
        assert!((sol.assignment_cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_item_propagates() {
        let mut inst = GapInstance::new(1, 1);
        inst.set_cost(0, 0, 1.0);
        inst.set_item_weight(0, 9.0);
        inst.set_capacity(0, 1.0);
        assert_eq!(
            solve(&inst).unwrap_err(),
            GapError::ItemDoesNotFit { item: 0 }
        );
    }
}
