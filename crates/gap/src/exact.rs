//! Exact branch-and-bound GAP solver for small instances.
//!
//! Used by tests and the PoA study to certify optima against which the
//! Shmoys–Tardos solution and game equilibria are compared. Exponential in
//! the number of items; intended for `items ≤ ~14`.

use crate::instance::{Assignment, GapInstance};
use crate::lp_relax::GapError;

/// Maximum item count accepted by [`solve`] (guards accidental blowups).
pub const MAX_ITEMS: usize = 16;

/// Finds a minimum-cost capacity-feasible assignment by branch and bound.
///
/// # Errors
///
/// * [`GapError::Infeasible`] — no feasible assignment exists.
/// * [`GapError::ItemDoesNotFit`] — some item is inadmissible everywhere.
///
/// # Panics
///
/// Panics if `inst.items() > MAX_ITEMS`.
pub fn solve(inst: &GapInstance) -> Result<Assignment, GapError> {
    let n = inst.items();
    let m = inst.bins();
    assert!(
        n <= MAX_ITEMS,
        "exact solver limited to {MAX_ITEMS} items, got {n}"
    );

    for i in 0..n {
        if !(0..m).any(|j| inst.cost(i, j).is_finite() && inst.weight(i, j) <= inst.capacity(j)) {
            return Err(GapError::ItemDoesNotFit { item: i });
        }
    }

    // Per-item cheapest admissible cost for the lower bound.
    let min_cost: Vec<f64> = (0..n)
        .map(|i| {
            (0..m)
                .map(|j| inst.cost(i, j))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    // Suffix sums of min_cost.
    let mut suffix = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + min_cost[i];
    }

    struct Search<'a> {
        inst: &'a GapInstance,
        suffix: Vec<f64>,
        best_cost: f64,
        best: Option<Vec<usize>>,
        current: Vec<usize>,
        remaining: Vec<f64>,
    }

    impl Search<'_> {
        fn dfs(&mut self, item: usize, cost_so_far: f64) {
            let n = self.inst.items();
            if cost_so_far + self.suffix[item] >= self.best_cost - 1e-12 {
                return;
            }
            if item == n {
                self.best_cost = cost_so_far;
                self.best = Some(self.current.clone());
                return;
            }
            // Try bins in increasing cost order for better pruning.
            let m = self.inst.bins();
            let mut bins: Vec<usize> = (0..m)
                .filter(|&j| self.inst.cost(item, j).is_finite())
                .collect();
            bins.sort_by(|&a, &b| {
                self.inst
                    .cost(item, a)
                    .partial_cmp(&self.inst.cost(item, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for j in bins {
                let w = self.inst.weight(item, j);
                if w <= self.remaining[j] + 1e-12 {
                    self.remaining[j] -= w;
                    self.current[item] = j;
                    self.dfs(item + 1, cost_so_far + self.inst.cost(item, j));
                    self.remaining[j] += w;
                }
            }
        }
    }

    let mut s = Search {
        inst,
        suffix,
        best_cost: f64::INFINITY,
        best: None,
        current: vec![0; n],
        remaining: (0..m).map(|j| inst.capacity(j)).collect(),
    };
    s.dfs(0, 0.0);
    s.best.map(Assignment::new).ok_or(GapError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_optimum() {
        let mut inst = GapInstance::new(3, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 4.0);
        inst.set_cost(1, 0, 2.0).set_cost(1, 1, 1.0);
        inst.set_cost(2, 0, 3.0).set_cost(2, 1, 2.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 2.0);
        inst.set_capacity(1, 2.0);
        let a = solve(&inst).unwrap();
        assert!((a.total_cost(&inst) - 4.0).abs() < 1e-9); // 1 + 1 + 2
        assert!(a.is_capacity_feasible(&inst));
    }

    #[test]
    fn capacity_forces_expensive_choice() {
        let mut inst = GapInstance::new(2, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 10.0);
        inst.set_cost(1, 0, 1.0).set_cost(1, 1, 10.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        inst.set_capacity(1, 1.0);
        let a = solve(&inst).unwrap();
        assert!((a.total_cost(&inst) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_reported() {
        let mut inst = GapInstance::new(2, 1);
        inst.set_cost(0, 0, 1.0).set_cost(1, 0, 1.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        assert_eq!(solve(&inst).unwrap_err(), GapError::Infeasible);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn rejects_large_instances() {
        let inst = GapInstance::new(MAX_ITEMS + 1, 2);
        let _ = solve(&inst);
    }

    #[test]
    fn matches_brute_force_small() {
        // 4 items, 3 bins, random-ish fixed costs; brute force 3^4 = 81.
        let mut inst = GapInstance::new(4, 3);
        let costs = [
            [3.0, 1.0, 4.0],
            [1.0, 5.0, 9.0],
            [2.0, 6.0, 5.0],
            [3.0, 5.0, 8.0],
        ];
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                inst.set_cost(i, j, c);
            }
            inst.set_item_weight(i, 1.0);
        }
        for j in 0..3 {
            inst.set_capacity(j, 2.0);
        }
        let a = solve(&inst).unwrap();

        let mut best = f64::INFINITY;
        for mask in 0..81usize {
            let mut x = mask;
            let mut of = Vec::new();
            for _ in 0..4 {
                of.push(x % 3);
                x /= 3;
            }
            let cand = Assignment::new(of);
            if cand.is_capacity_feasible(&inst) {
                best = best.min(cand.total_cost(&inst));
            }
        }
        assert!((a.total_cost(&inst) - best).abs() < 1e-9);
    }
}
