//! LP relaxation of the Generalized Assignment Problem.
//!
//! The Shmoys–Tardos algorithm starts from an optimal *fractional* solution
//! of the GAP relaxation:
//!
//! ```text
//! minimize   Σ_ij c_ij x_ij
//! subject to Σ_j x_ij = 1            for every item i
//!            Σ_i w_ij x_ij ≤ CAP_j   for every bin j
//!            x_ij ≥ 0, and x_ij = 0 whenever w_ij > CAP_j
//! ```
//!
//! Three solution paths are provided, selected by [`LpBackend`]:
//! * [`solve_lp`] — the general relaxation via the [`mec_lp`] simplex
//!   (sparse revised by default, dense tableau as the reference oracle);
//!   works for arbitrary bin-dependent weights.
//! * [`solve_transportation`] — a min-cost-flow fast path for the
//!   *uniform-allowed-weight* case (`w_ij = w_i` across every admissible
//!   bin, [`GapInstance::has_uniform_allowed_weights`]), which is exactly
//!   the class produced by the paper's virtual-cloudlet reduction —
//!   uniform slot demand with per-item [`FORBIDDEN`] arcs. The relaxation
//!   is then a transportation LP whose optimal vertex the flow computes.
//!
//! [`FORBIDDEN`]: crate::instance::FORBIDDEN

use mec_lp::{LpBuilder, LpError, Relation, SolverBackend};

use crate::flow::MinCostFlow;
use crate::instance::GapInstance;

/// Which relaxation path [`solve_relaxation_with`] takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpBackend {
    /// Dispatch automatically: the transportation fast path whenever
    /// [`GapInstance::has_uniform_allowed_weights`] holds, the revised
    /// simplex otherwise.
    #[default]
    Auto,
    /// Force the min-cost-flow transportation fast path (panics when the
    /// instance is outside its applicability class).
    Transportation,
    /// Force the general LP on the sparse revised simplex.
    Revised,
    /// Force the general LP on the dense tableau (reference oracle).
    Dense,
}

/// Errors produced while relaxing/rounding a GAP instance.
#[derive(Debug, Clone, PartialEq)]
pub enum GapError {
    /// `item` does not fit in any bin (weight exceeds every capacity or all
    /// its costs are forbidden).
    ItemDoesNotFit {
        /// The offending item.
        item: usize,
    },
    /// The relaxation itself is infeasible (total weight exceeds total
    /// capacity in every fractional split).
    Infeasible,
    /// The underlying LP solver failed.
    Lp(LpError),
}

impl std::fmt::Display for GapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GapError::ItemDoesNotFit { item } => {
                write!(f, "item {item} fits in no bin")
            }
            GapError::Infeasible => write!(f, "GAP relaxation is infeasible"),
            GapError::Lp(e) => write!(f, "LP solver failed: {e}"),
        }
    }
}

impl std::error::Error for GapError {}

impl From<LpError> for GapError {
    fn from(e: LpError) -> Self {
        match e {
            LpError::Infeasible => GapError::Infeasible,
            other => GapError::Lp(other),
        }
    }
}

/// A fractional solution of the GAP relaxation: sparse `(item, bin, frac)`
/// triples with `Σ_j frac(i, j) = 1` per item.
#[derive(Debug, Clone)]
pub struct FractionalSolution {
    /// Sparse nonzero fractions.
    pub fractions: Vec<(usize, usize, f64)>,
    /// Objective value `Σ c_ij x_ij` (a lower bound on the integral optimum).
    pub objective: f64,
}

impl FractionalSolution {
    /// Fractions grouped per bin: `result[j]` lists `(item, frac)`.
    pub fn per_bin(&self, bins: usize) -> Vec<Vec<(usize, f64)>> {
        let mut out = vec![Vec::new(); bins];
        for &(i, j, f) in &self.fractions {
            out[j].push((i, f));
        }
        out
    }

    /// Checks `Σ_j x_ij ≈ 1` for every item in `0..items`.
    pub fn covers_all_items(&self, items: usize) -> bool {
        let mut sums = vec![0.0; items];
        for &(i, _, f) in &self.fractions {
            sums[i] += f;
        }
        sums.iter().all(|s| (s - 1.0).abs() < 1e-6)
    }
}

/// Returns whether `(item, bin)` is an admissible pair.
fn allowed(inst: &GapInstance, i: usize, j: usize) -> bool {
    inst.is_allowed(i, j)
}

fn check_items_fit(inst: &GapInstance) -> Result<(), GapError> {
    for i in 0..inst.items() {
        if !(0..inst.bins()).any(|j| allowed(inst, i, j)) {
            return Err(GapError::ItemDoesNotFit { item: i });
        }
    }
    Ok(())
}

/// The assignment LP of `inst`, plus the variable and row layout needed to
/// interpret its solution: one variable per admissible `(item, bin)` pair
/// (in `pairs` order), item `Eq` rows first (one per item, in item order),
/// then one `Le` capacity row per bin that admits any item (`bin_row[j]`
/// maps a bin to its row index, `None` when the bin admits nothing).
///
/// This is the **single** construction shared by [`solve_lp`] and
/// [`capacity_shadow_prices`], so the row layout the duals are read from
/// cannot drift out of sync with the LP being solved.
struct AssignmentLp {
    lp: LpBuilder,
    pairs: Vec<(usize, usize)>,
    bin_row: Vec<Option<usize>>,
}

fn build_assignment_lp(inst: &GapInstance) -> AssignmentLp {
    let n = inst.items();
    let m = inst.bins();
    // Variable layout: dense over allowed pairs.
    let mut var_of = vec![usize::MAX; n * m];
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in 0..m {
            if allowed(inst, i, j) {
                var_of[i * m + j] = pairs.len();
                pairs.push((i, j));
            }
        }
    }
    let nv = pairs.len();
    let mut lp = LpBuilder::new(nv);
    let costs: Vec<f64> = pairs.iter().map(|&(i, j)| inst.cost(i, j)).collect();
    lp.objective(&costs);
    // Item rows.
    for i in 0..n {
        let mut row = vec![0.0; nv];
        for j in 0..m {
            let v = var_of[i * m + j];
            if v != usize::MAX {
                row[v] = 1.0;
            }
        }
        lp.constraint(&row, Relation::Eq, 1.0);
    }
    // Bin rows.
    let mut bin_row = vec![None; m];
    for j in 0..m {
        let mut row = vec![0.0; nv];
        let mut any = false;
        for i in 0..n {
            let v = var_of[i * m + j];
            if v != usize::MAX {
                row[v] = inst.weight(i, j);
                any = true;
            }
        }
        if any {
            bin_row[j] = Some(lp.constraint_count());
            lp.constraint(&row, Relation::Le, inst.capacity(j));
        }
    }
    AssignmentLp { lp, pairs, bin_row }
}

/// Solves the GAP relaxation with the default simplex backend (the sparse
/// revised simplex).
///
/// # Errors
///
/// * [`GapError::ItemDoesNotFit`] — some item is inadmissible everywhere.
/// * [`GapError::Infeasible`] — the relaxation has no solution.
/// * [`GapError::Lp`] — numerical trouble in the simplex.
pub fn solve_lp(inst: &GapInstance) -> Result<FractionalSolution, GapError> {
    solve_lp_with(inst, SolverBackend::default())
}

/// Solves the GAP relaxation with an explicit [`mec_lp`] backend.
///
/// # Errors
///
/// Same as [`solve_lp`].
pub fn solve_lp_with(
    inst: &GapInstance,
    backend: SolverBackend,
) -> Result<FractionalSolution, GapError> {
    check_items_fit(inst)?;
    let built = build_assignment_lp(inst);
    let sol = built.lp.solve_with(backend)?;
    let mut fractions = Vec::new();
    for (v, &(i, j)) in built.pairs.iter().enumerate() {
        if sol.x[v] > 1e-9 {
            fractions.push((i, j, sol.x[v].min(1.0)));
        }
    }
    Ok(FractionalSolution {
        fractions,
        objective: sol.objective,
    })
}

/// Solves the relaxation via min-cost flow when every item's weight is
/// uniform across its admissible bins.
///
/// The substitution `y_ij = w_i · x_ij` turns the relaxation into a
/// transportation problem: item `i` supplies `w_i` units, bin `j` absorbs at
/// most `CAP_j`, and a unit of `y_ij` costs `c_ij / w_i`. Zero-weight items
/// are assigned integrally to their cheapest admissible bin up front.
/// `w_i` is read at the item's first admissible bin, so [`FORBIDDEN`] pairs
/// (or bins the item does not fit) may carry arbitrary weights — this is
/// the whole instance class Appro's virtual-cloudlet split produces.
///
/// [`FORBIDDEN`]: crate::instance::FORBIDDEN
///
/// # Errors
///
/// Same as [`solve_lp`]; additionally returns [`GapError::Infeasible`] if
/// the flow cannot route the full supply.
///
/// # Panics
///
/// Panics if some item's weight differs between two of its admissible bins
/// (checked via [`GapInstance::has_uniform_allowed_weights`]).
pub fn solve_transportation(inst: &GapInstance) -> Result<FractionalSolution, GapError> {
    assert!(
        inst.has_uniform_allowed_weights(),
        "transportation fast path requires per-item uniform weights over admissible bins"
    );
    check_items_fit(inst)?;
    let n = inst.items();
    let m = inst.bins();
    let mut fractions = Vec::new();
    let mut objective = 0.0;

    // Nodes: 0 = source, 1..=n items, n+1..=n+m bins, n+m+1 = sink.
    let src = 0;
    let item0 = 1;
    let bin0 = 1 + n;
    let sink = 1 + n + m;
    let mut f = MinCostFlow::new(n + m + 2);
    let mut arc_of_pair = Vec::new();
    let mut total_supply = 0.0;

    for i in 0..n {
        // The item's uniform weight, read at its first admissible bin
        // (check_items_fit guarantees one exists).
        let w = (0..m)
            .find(|&j| allowed(inst, i, j))
            .map(|j| inst.weight(i, j))
            .expect("checked by check_items_fit");
        if w <= 1e-12 {
            // Weightless item: integral assignment to its cheapest bin.
            let best = (0..m)
                .filter(|&j| allowed(inst, i, j))
                .min_by(|&a, &b| {
                    inst.cost(i, a)
                        .partial_cmp(&inst.cost(i, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("checked by check_items_fit");
            fractions.push((i, best, 1.0));
            objective += inst.cost(i, best);
            continue;
        }
        total_supply += w;
        f.add_edge(src, item0 + i, w, 0.0);
        for j in 0..m {
            if allowed(inst, i, j) {
                let arc = f.add_edge(item0 + i, bin0 + j, w, inst.cost(i, j) / w);
                arc_of_pair.push((i, j, arc, w));
            }
        }
    }
    for j in 0..m {
        f.add_edge(bin0 + j, sink, inst.capacity(j), 0.0);
    }

    if total_supply > 0.0 {
        let res = f.run(src, sink, total_supply);
        if res.flow + 1e-6 < total_supply {
            return Err(GapError::Infeasible);
        }
        objective += res.cost;
        for (i, j, arc, w) in arc_of_pair {
            let y = f.flow_on(arc);
            if y > 1e-9 {
                fractions.push((i, j, (y / w).min(1.0)));
            }
        }
    }

    Ok(FractionalSolution {
        fractions,
        objective,
    })
}

/// Solves the relaxation with the best available method: the transportation
/// fast path when every item's weight is uniform over its admissible bins,
/// the general LP (revised simplex) otherwise.
///
/// # Errors
///
/// See [`solve_lp`].
pub fn solve_relaxation(inst: &GapInstance) -> Result<FractionalSolution, GapError> {
    solve_relaxation_with(inst, LpBackend::Auto)
}

/// Solves the relaxation through an explicit [`LpBackend`].
///
/// # Errors
///
/// See [`solve_lp`].
///
/// # Panics
///
/// [`LpBackend::Transportation`] panics when the instance is outside the
/// fast path's applicability class (see [`solve_transportation`]).
pub fn solve_relaxation_with(
    inst: &GapInstance,
    backend: LpBackend,
) -> Result<FractionalSolution, GapError> {
    match backend {
        LpBackend::Auto => {
            if inst.has_uniform_allowed_weights() {
                solve_transportation(inst)
            } else {
                solve_lp_with(inst, SolverBackend::Revised)
            }
        }
        LpBackend::Transportation => solve_transportation(inst),
        LpBackend::Revised => solve_lp_with(inst, SolverBackend::Revised),
        LpBackend::Dense => solve_lp_with(inst, SolverBackend::Dense),
    }
}

/// Shadow price of every bin's capacity at the LP optimum: the marginal
/// *reduction* of the optimal assignment cost per extra unit of capacity
/// (non-negative; zero when the bin's capacity is slack).
///
/// Solves the general LP (the transportation fast path does not produce
/// duals) and negates the `≤`-row duals of the capacity constraints.
///
/// # Errors
///
/// Same conditions as [`solve_lp`].
pub fn capacity_shadow_prices(inst: &GapInstance) -> Result<Vec<f64>, GapError> {
    check_items_fit(inst)?;
    let built = build_assignment_lp(inst);
    let sol = built.lp.solve()?;
    Ok(built
        .bin_row
        .iter()
        .map(|row| match row {
            Some(r) => (-sol.duals[*r]).max(0.0),
            None => 0.0,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> GapInstance {
        // 2 items of weight 1, 2 bins of capacity 1; diagonal is cheap.
        let mut inst = GapInstance::new(2, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 3.0);
        inst.set_cost(1, 0, 2.0).set_cost(1, 1, 1.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        inst.set_capacity(1, 1.0);
        inst
    }

    #[test]
    fn lp_matches_known_optimum() {
        let sol = solve_lp(&tight()).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
        assert!(sol.covers_all_items(2));
    }

    #[test]
    fn transportation_matches_lp() {
        let inst = tight();
        let a = solve_lp(&inst).unwrap();
        let b = solve_transportation(&inst).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-6);
        assert!(b.covers_all_items(2));
    }

    #[test]
    fn fractional_split_when_forced() {
        // One bin with capacity 1, two items of weight 1: infeasible.
        let mut inst = GapInstance::new(2, 1);
        inst.set_cost(0, 0, 1.0).set_cost(1, 0, 1.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        assert_eq!(solve_lp(&inst).unwrap_err(), GapError::Infeasible);
        assert_eq!(
            solve_transportation(&inst).unwrap_err(),
            GapError::Infeasible
        );
    }

    #[test]
    fn item_too_big_everywhere() {
        let mut inst = GapInstance::new(1, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 1.0);
        inst.set_uniform_weights(5.0);
        inst.set_capacity(0, 1.0);
        inst.set_capacity(1, 1.0);
        assert_eq!(
            solve_lp(&inst).unwrap_err(),
            GapError::ItemDoesNotFit { item: 0 }
        );
    }

    #[test]
    fn zero_weight_items_assigned_cheapest() {
        let mut inst = GapInstance::new(2, 2);
        inst.set_cost(0, 0, 5.0).set_cost(0, 1, 1.0);
        inst.set_cost(1, 0, 1.0).set_cost(1, 1, 5.0);
        inst.set_uniform_weights(0.0);
        inst.set_capacity(0, 0.0);
        inst.set_capacity(1, 0.0);
        let sol = solve_transportation(&inst).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_when_capacity_forces_split() {
        // 1 item weight 2; two bins capacity 1 each: x must split 0.5/0.5.
        let mut inst = GapInstance::new(1, 2);
        inst.set_cost(0, 0, 2.0).set_cost(0, 1, 4.0);
        inst.set_uniform_weights(2.0);
        inst.set_capacity(0, 2.0);
        inst.set_capacity(1, 2.0);
        let sol = solve_transportation(&inst).unwrap();
        // Fits entirely in bin 0 (cheapest).
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn respects_forbidden_pairs() {
        let mut inst = tight();
        inst.set_cost(0, 0, crate::instance::FORBIDDEN);
        let sol = solve_relaxation(&inst).unwrap();
        // Item 0 must go to bin 1, pushing item 1 to bin 0: cost 3 + 2.
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn relaxation_lower_bounds_any_integral_assignment() {
        let inst = tight();
        let sol = solve_relaxation(&inst).unwrap();
        use crate::instance::Assignment;
        for assign in [vec![0, 1], vec![1, 0]] {
            let a = Assignment::new(assign);
            if a.is_capacity_feasible(&inst) {
                assert!(sol.objective <= a.total_cost(&inst) + 1e-6);
            }
        }
    }

    #[test]
    fn shadow_prices_zero_when_capacity_slack() {
        // Huge capacities: no bin constraint binds, every price is 0.
        let mut inst = tight();
        inst.set_capacity(0, 100.0);
        inst.set_capacity(1, 100.0);
        let prices = capacity_shadow_prices(&inst).unwrap();
        assert!(prices.iter().all(|p| *p < 1e-9), "{prices:?}");
    }

    #[test]
    fn shadow_prices_positive_when_capacity_binds() {
        // Bin 0 is cheap for both items but only fits one: its capacity is
        // worth exactly the detour cost the second item pays elsewhere.
        let mut inst = GapInstance::new(2, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 4.0);
        inst.set_cost(1, 0, 1.0).set_cost(1, 1, 4.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 1.0);
        inst.set_capacity(1, 2.0);
        let prices = capacity_shadow_prices(&inst).unwrap();
        assert!(prices[0] > 1.0, "bin 0 price {:?}", prices);
        assert!(prices[1] < 1e-9, "bin 1 should be free, {prices:?}");
        // Marginal check: adding a unit of capacity to bin 0 reduces the
        // optimum by (close to) its shadow price.
        let base = solve_lp(&inst).unwrap().objective;
        let mut relaxed = inst.clone();
        relaxed.set_capacity(0, 2.0);
        let better = solve_lp(&relaxed).unwrap().objective;
        assert!(
            (base - better - prices[0]).abs() < 1e-6,
            "price {} vs realized saving {}",
            prices[0],
            base - better
        );
    }

    #[test]
    fn bin_dependent_weights_use_lp() {
        let mut inst = GapInstance::new(2, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 2.0);
        inst.set_cost(1, 0, 2.0).set_cost(1, 1, 1.0);
        inst.set_weight(0, 0, 1.0).set_weight(0, 1, 2.0);
        inst.set_weight(1, 0, 2.0).set_weight(1, 1, 1.0);
        inst.set_capacity(0, 2.0);
        inst.set_capacity(1, 2.0);
        let sol = solve_relaxation(&inst).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }
}
