//! Generalized Assignment Problem instances and assignments.
//!
//! A GAP instance has `n` items and `m` knapsacks (bins). Assigning item `i`
//! to bin `j` costs `cost(i, j)` and consumes `weight(i, j)` of bin `j`'s
//! capacity. The goal is a minimum-cost assignment of every item to exactly
//! one bin, respecting capacities. The paper reduces its service-caching
//! problem to GAP by treating virtual cloudlets as bins (Section III-B).

use std::fmt;

/// Marks an (item, bin) pair as forbidden.
pub const FORBIDDEN: f64 = f64::INFINITY;

/// A Generalized Assignment Problem instance.
///
/// # Examples
///
/// ```
/// use mec_gap::GapInstance;
///
/// let mut inst = GapInstance::new(2, 2);
/// inst.set_cost(0, 0, 1.0).set_cost(0, 1, 3.0);
/// inst.set_cost(1, 0, 2.0).set_cost(1, 1, 1.0);
/// inst.set_uniform_weights(1.0);
/// inst.set_capacity(0, 1.0);
/// inst.set_capacity(1, 1.0);
/// assert_eq!(inst.items(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GapInstance {
    items: usize,
    bins: usize,
    cost: Vec<f64>,
    weight: Vec<f64>,
    capacity: Vec<f64>,
}

impl GapInstance {
    /// Creates an instance with all costs/weights zero and capacities zero.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or `bins == 0`.
    pub fn new(items: usize, bins: usize) -> Self {
        assert!(items > 0, "GAP needs at least one item");
        assert!(bins > 0, "GAP needs at least one bin");
        GapInstance {
            items,
            bins,
            cost: vec![0.0; items * bins],
            weight: vec![0.0; items * bins],
            capacity: vec![0.0; bins],
        }
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Cost of assigning `item` to `bin` ([`FORBIDDEN`] if disallowed).
    #[inline]
    pub fn cost(&self, item: usize, bin: usize) -> f64 {
        self.cost[item * self.bins + bin]
    }

    /// Weight `item` puts on `bin`.
    #[inline]
    pub fn weight(&self, item: usize, bin: usize) -> f64 {
        self.weight[item * self.bins + bin]
    }

    /// Capacity of `bin`.
    #[inline]
    pub fn capacity(&self, bin: usize) -> f64 {
        self.capacity[bin]
    }

    /// Sets the assignment cost. Use [`FORBIDDEN`] to disallow the pair.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices, NaN, or negative cost.
    pub fn set_cost(&mut self, item: usize, bin: usize, cost: f64) -> &mut Self {
        assert!(item < self.items && bin < self.bins, "index out of range");
        assert!(
            !cost.is_nan() && cost >= 0.0,
            "cost must be >= 0, got {cost}"
        );
        self.cost[item * self.bins + bin] = cost;
        self
    }

    /// Sets the weight of `item` in `bin`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or a non-finite / negative weight.
    pub fn set_weight(&mut self, item: usize, bin: usize, weight: f64) -> &mut Self {
        assert!(item < self.items && bin < self.bins, "index out of range");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and >= 0, got {weight}"
        );
        self.weight[item * self.bins + bin] = weight;
        self
    }

    /// Sets every (item, bin) weight to `w` (bin-independent items of equal size).
    pub fn set_uniform_weights(&mut self, w: f64) -> &mut Self {
        assert!(w.is_finite() && w >= 0.0);
        self.weight.fill(w);
        self
    }

    /// Sets the weight of `item` to `w` in every bin (bin-independent weight).
    pub fn set_item_weight(&mut self, item: usize, w: f64) -> &mut Self {
        assert!(item < self.items, "index out of range");
        assert!(w.is_finite() && w >= 0.0);
        for bin in 0..self.bins {
            self.weight[item * self.bins + bin] = w;
        }
        self
    }

    /// Sets the capacity of `bin`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index or a non-finite / negative capacity.
    pub fn set_capacity(&mut self, bin: usize, cap: f64) -> &mut Self {
        assert!(bin < self.bins, "bin out of range");
        assert!(cap.is_finite() && cap >= 0.0, "capacity must be >= 0");
        self.capacity[bin] = cap;
        self
    }

    /// Returns `true` if item weights do not depend on the bin
    /// (the transportation special case used by the paper's reduction).
    pub fn has_bin_independent_weights(&self) -> bool {
        (0..self.items).all(|i| {
            let w0 = self.weight(i, 0);
            (1..self.bins).all(|j| (self.weight(i, j) - w0).abs() < 1e-12)
        })
    }

    /// Returns whether `(item, bin)` is an admissible pair: the cost is not
    /// [`FORBIDDEN`] and the item fits the bin on its own. This is the
    /// single admissibility predicate shared by every relaxation path.
    #[inline]
    pub fn is_allowed(&self, item: usize, bin: usize) -> bool {
        self.cost(item, bin).is_finite() && self.weight(item, bin) <= self.capacity(bin) + 1e-12
    }

    /// Returns `true` if every item's weight is identical across all of its
    /// *admissible* bins (see [`GapInstance::is_allowed`]).
    ///
    /// This is a strict superset of [`has_bin_independent_weights`]: pairs
    /// ruled out by [`FORBIDDEN`] costs or per-bin fit may carry arbitrary
    /// weights without affecting the relaxation, which only ever routes
    /// flow over admissible arcs. It is exactly the class of instances the
    /// paper's virtual-cloudlet reduction produces — uniform per-item slot
    /// demand with per-item forbidden arcs — and the trigger for the
    /// transportation fast path.
    ///
    /// [`has_bin_independent_weights`]: GapInstance::has_bin_independent_weights
    pub fn has_uniform_allowed_weights(&self) -> bool {
        (0..self.items).all(|i| {
            let mut first = None;
            (0..self.bins)
                .filter(|&j| self.is_allowed(i, j))
                .all(|j| match first {
                    None => {
                        first = Some(self.weight(i, j));
                        true
                    }
                    Some(w) => (self.weight(i, j) - w).abs() < 1e-12,
                })
        })
    }

    /// A simple lower bound: every item at its cheapest allowed bin,
    /// capacities ignored.
    pub fn relaxed_lower_bound(&self) -> f64 {
        (0..self.items)
            .map(|i| {
                (0..self.bins)
                    .map(|j| self.cost(i, j))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    }
}

/// An integral assignment of every item to one bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    of: Vec<usize>,
}

impl Assignment {
    /// Wraps a raw `item -> bin` vector.
    ///
    /// # Panics
    ///
    /// Panics if `of` is empty.
    pub fn new(of: Vec<usize>) -> Self {
        assert!(!of.is_empty(), "assignment must cover at least one item");
        Assignment { of }
    }

    /// Bin assigned to `item`.
    ///
    /// # Panics
    ///
    /// Panics if `item` is out of range.
    pub fn bin_of(&self, item: usize) -> usize {
        self.of[item]
    }

    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.of.len()
    }

    /// `false` — assignments always cover at least one item.
    pub fn is_empty(&self) -> bool {
        self.of.is_empty()
    }

    /// Iterates over `(item, bin)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.of.iter().copied().enumerate()
    }

    /// Total assignment cost on `inst`.
    ///
    /// # Panics
    ///
    /// Panics if this assignment does not match the instance dimensions.
    pub fn total_cost(&self, inst: &GapInstance) -> f64 {
        assert_eq!(self.of.len(), inst.items(), "assignment/instance mismatch");
        self.iter().map(|(i, j)| inst.cost(i, j)).sum()
    }

    /// Load each bin carries under this assignment.
    pub fn loads(&self, inst: &GapInstance) -> Vec<f64> {
        assert_eq!(self.of.len(), inst.items(), "assignment/instance mismatch");
        let mut loads = vec![0.0; inst.bins()];
        for (i, j) in self.iter() {
            loads[j] += inst.weight(i, j);
        }
        loads
    }

    /// `true` if every bin load is within its capacity (tolerance 1e-9).
    pub fn is_capacity_feasible(&self, inst: &GapInstance) -> bool {
        self.max_overflow(inst) <= 1e-9
    }

    /// Largest capacity violation over all bins (0 if none).
    pub fn max_overflow(&self, inst: &GapInstance) -> f64 {
        self.loads(inst)
            .iter()
            .zip(0..inst.bins())
            .map(|(load, j)| (load - inst.capacity(j)).max(0.0))
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, j) in self.iter() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}->{j}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_num::assert_approx_eq;

    fn small() -> GapInstance {
        let mut inst = GapInstance::new(3, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 4.0);
        inst.set_cost(1, 0, 2.0).set_cost(1, 1, 1.0);
        inst.set_cost(2, 0, 3.0).set_cost(2, 1, 2.0);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 2.0);
        inst.set_capacity(1, 2.0);
        inst
    }

    #[test]
    fn accessors() {
        let inst = small();
        assert_eq!(inst.items(), 3);
        assert_eq!(inst.bins(), 2);
        assert_approx_eq!(inst.cost(0, 1), 4.0, 0.0);
        assert_approx_eq!(inst.weight(2, 0), 1.0, 0.0);
        assert_approx_eq!(inst.capacity(1), 2.0, 1e-12);
    }

    #[test]
    fn assignment_cost_and_loads() {
        let inst = small();
        let a = Assignment::new(vec![0, 1, 1]);
        assert_approx_eq!(a.total_cost(&inst), 1.0 + 1.0 + 2.0, 0.0);
        assert_eq!(a.loads(&inst), vec![1.0, 2.0]);
        assert!(a.is_capacity_feasible(&inst));
    }

    #[test]
    fn overflow_detection() {
        let inst = small();
        let a = Assignment::new(vec![0, 0, 0]);
        assert!(!a.is_capacity_feasible(&inst));
        assert!((a.max_overflow(&inst) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_independent_weight_detection() {
        let mut inst = small();
        assert!(inst.has_bin_independent_weights());
        inst.set_weight(0, 1, 2.0);
        assert!(!inst.has_bin_independent_weights());
    }

    #[test]
    fn relaxed_lower_bound_sums_row_minima() {
        let inst = small();
        assert_approx_eq!(inst.relaxed_lower_bound(), 1.0 + 1.0 + 2.0, 0.0);
    }

    #[test]
    fn item_weight_setter() {
        let mut inst = small();
        inst.set_item_weight(1, 5.0);
        assert_approx_eq!(inst.weight(1, 0), 5.0, 0.0);
        assert_approx_eq!(inst.weight(1, 1), 5.0, 0.0);
        assert_approx_eq!(inst.weight(0, 0), 1.0, 0.0);
    }

    #[test]
    fn display_assignment() {
        let a = Assignment::new(vec![1, 0]);
        assert_eq!(a.to_string(), "[0->1, 1->0]");
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn rejects_empty_instances() {
        let _ = GapInstance::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "cost must be >= 0")]
    fn rejects_negative_cost() {
        GapInstance::new(1, 1).set_cost(0, 0, -1.0);
    }

    #[test]
    fn forbidden_cost_allowed() {
        let mut inst = GapInstance::new(1, 2);
        inst.set_cost(0, 0, FORBIDDEN);
        assert!(inst.cost(0, 0).is_infinite());
    }
}
