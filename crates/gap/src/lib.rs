//! Generalized Assignment Problem solvers.
//!
//! The paper's `Appro` algorithm reduces service caching to GAP and invokes
//! the Shmoys–Tardos approximation \[34\]. This crate implements:
//!
//! * [`instance`] — GAP instances and assignments,
//! * [`flow`] — a min-cost-flow substrate (successive shortest paths),
//! * [`lp_relax`] — the LP relaxation (general simplex path — revised or
//!   dense — plus a transportation fast path for per-item uniform weights
//!   over admissible bins; select via [`LpBackend`]),
//! * [`shmoys_tardos`] — the LP rounding with its cost / augmented-capacity
//!   guarantees,
//! * [`greedy`] — a regret heuristic (ablation baseline),
//! * [`exact`] — branch-and-bound optimum for small instances (testing).
//!
//! # Examples
//!
//! ```
//! use mec_gap::{GapInstance, shmoys_tardos};
//!
//! let mut inst = GapInstance::new(3, 2);
//! for i in 0..3 {
//!     inst.set_cost(i, 0, 1.0 + i as f64);
//!     inst.set_cost(i, 1, 2.0);
//!     inst.set_item_weight(i, 1.0);
//! }
//! inst.set_capacity(0, 2.0);
//! inst.set_capacity(1, 2.0);
//! let sol = shmoys_tardos::solve(&inst)?;
//! assert!(sol.assignment_cost <= sol.lp_objective + 1e-6);
//! # Ok::<(), mec_gap::GapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod flow;
pub mod greedy;
pub mod instance;
pub mod lp_relax;
pub mod shmoys_tardos;
pub mod swap;
pub mod verify;

pub use instance::{Assignment, GapInstance, FORBIDDEN};
pub use lp_relax::{capacity_shadow_prices, FractionalSolution, GapError, LpBackend};
pub use shmoys_tardos::StSolution;
pub use swap::{improve, SwapResult};
pub use verify::{check_assignment, GapViolation};
