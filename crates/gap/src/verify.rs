//! Validity checking for GAP assignments.
//!
//! [`check_assignment`] certifies the Shmoys–Tardos guarantee from first
//! principles: every item is assigned to an in-range bin it is actually
//! allowed in (finite cost), and no bin's load exceeds its *augmented*
//! capacity `CAP_j + max_i w_ij` — the rounding's Lemma-2 bound. It reads
//! only the raw instance data, sharing no code with the rounding itself.
//!
//! With the `verify` cargo feature enabled,
//! [`crate::shmoys_tardos::solve`] certifies its own output before
//! returning and panics with a full report on any violation.

use crate::instance::{Assignment, GapInstance};
use crate::shmoys_tardos::augmented_capacity;
use mec_num::approx_le;

/// A single broken invariant found in a GAP [`Assignment`].
#[derive(Debug, Clone, PartialEq)]
pub enum GapViolation {
    /// An item points at a bin index `>= inst.bins()`.
    BinOutOfRange {
        /// The item.
        item: usize,
        /// The out-of-range bin index.
        bin: usize,
    },
    /// An item was assigned to a bin its cost marks as forbidden.
    ForbiddenAssignment {
        /// The item.
        item: usize,
        /// The forbidden bin.
        bin: usize,
    },
    /// A bin's load exceeds its augmented capacity.
    BinOverloaded {
        /// The bin.
        bin: usize,
        /// Load the assignment puts on it.
        load: f64,
        /// `CAP_j + max_i w_ij`, the Shmoys–Tardos bound.
        augmented_capacity: f64,
    },
    /// The assignment covers a different number of items than the instance.
    ItemCountMismatch {
        /// Items in the assignment.
        assigned: usize,
        /// Items in the instance.
        expected: usize,
    },
}

impl std::fmt::Display for GapViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GapViolation::BinOutOfRange { item, bin } => {
                write!(f, "item {item} assigned to out-of-range bin {bin}")
            }
            GapViolation::ForbiddenAssignment { item, bin } => {
                write!(f, "item {item} assigned to forbidden bin {bin}")
            }
            GapViolation::BinOverloaded {
                bin,
                load,
                augmented_capacity,
            } => write!(
                f,
                "bin {bin} load {load} exceeds augmented capacity {augmented_capacity}"
            ),
            GapViolation::ItemCountMismatch { assigned, expected } => {
                write!(
                    f,
                    "assignment covers {assigned} items, instance has {expected}"
                )
            }
        }
    }
}

/// Certifies `assignment` against `inst`; returns every violation found
/// (empty = valid under the Shmoys–Tardos augmented-capacity guarantee).
///
/// `tol` is the absolute slack allowed on each bin's augmented capacity.
pub fn check_assignment(
    inst: &GapInstance,
    assignment: &Assignment,
    tol: f64,
) -> Vec<GapViolation> {
    let mut out = Vec::new();
    if assignment.len() != inst.items() {
        out.push(GapViolation::ItemCountMismatch {
            assigned: assignment.len(),
            expected: inst.items(),
        });
        return out; // Loads below would index out of bounds.
    }

    let mut loads = vec![0.0; inst.bins()];
    for (item, bin) in assignment.iter() {
        if bin >= inst.bins() {
            out.push(GapViolation::BinOutOfRange { item, bin });
            continue;
        }
        if !inst.cost(item, bin).is_finite() {
            out.push(GapViolation::ForbiddenAssignment { item, bin });
        }
        loads[bin] += inst.weight(item, bin);
    }

    for (bin, &load) in loads.iter().enumerate() {
        let cap = augmented_capacity(inst, bin);
        if !approx_le(load, cap, tol) {
            out.push(GapViolation::BinOverloaded {
                bin,
                load,
                augmented_capacity: cap,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::FORBIDDEN;

    fn inst() -> GapInstance {
        let mut inst = GapInstance::new(3, 2);
        inst.set_cost(0, 0, 1.0).set_cost(0, 1, 2.0);
        inst.set_cost(1, 0, 2.0).set_cost(1, 1, 1.0);
        inst.set_cost(2, 0, 3.0).set_cost(2, 1, FORBIDDEN);
        inst.set_uniform_weights(1.0);
        inst.set_capacity(0, 2.0);
        inst.set_capacity(1, 1.0);
        inst
    }

    #[test]
    fn valid_assignment_is_clean() {
        let i = inst();
        let a = Assignment::new(vec![0, 1, 0]);
        assert_eq!(check_assignment(&i, &a, 1e-9), vec![]);
    }

    #[test]
    fn flags_forbidden_pair() {
        let i = inst();
        let a = Assignment::new(vec![0, 1, 1]);
        let v = check_assignment(&i, &a, 1e-9);
        assert!(v
            .iter()
            .any(|v| matches!(v, GapViolation::ForbiddenAssignment { item: 2, bin: 1 })));
    }

    #[test]
    fn flags_overload_beyond_augmentation() {
        // Bin 1: capacity 1, max allowed weight 1 -> augmented cap 2.
        // Three unit items overflow even the augmented bound.
        let mut i = inst();
        i.set_cost(2, 1, 5.0); // make it allowed so overload is the only issue
        let a = Assignment::new(vec![1, 1, 1]);
        let v = check_assignment(&i, &a, 1e-9);
        assert!(v
            .iter()
            .any(|v| matches!(v, GapViolation::BinOverloaded { bin: 1, .. })));
    }

    #[test]
    fn allows_overflow_within_augmentation() {
        // Two unit items in bin 1 (cap 1, augmented 2): exactly the
        // Shmoys–Tardos worst case, which must certify as valid.
        let mut i = inst();
        i.set_cost(2, 1, 5.0);
        let a = Assignment::new(vec![0, 1, 1]);
        assert_eq!(check_assignment(&i, &a, 1e-9), vec![]);
    }

    #[test]
    fn flags_out_of_range_bin_and_count_mismatch() {
        let i = inst();
        let a = Assignment::new(vec![0, 1, 7]);
        let v = check_assignment(&i, &a, 1e-9);
        assert!(v
            .iter()
            .any(|v| matches!(v, GapViolation::BinOutOfRange { item: 2, bin: 7 })));
        let short = Assignment::new(vec![0]);
        let v = check_assignment(&i, &short, 1e-9);
        assert_eq!(
            v,
            vec![GapViolation::ItemCountMismatch {
                assigned: 1,
                expected: 3
            }]
        );
    }

    #[test]
    fn violations_render() {
        let i = inst();
        let a = Assignment::new(vec![0, 1, 1]);
        for v in check_assignment(&i, &a, 1e-9) {
            assert!(!v.to_string().is_empty());
        }
    }
}
