//! Dynamic-popularity trace engine for the service-caching market.
//!
//! Every workload elsewhere in the workspace is a stationary churn
//! script; this crate generates the *non-stationary* request traffic
//! the cache-or-not question actually turns on (the multi-time-scale
//! popularity setting of Chen et al. and the unknown-arrivals online
//! setting of Fan & Hou): Zipf-popularity request streams with diurnal
//! volume cycles, flash crowds, and gradual popularity drift.
//!
//! The output is a replayable event schedule — [`Trace`] — that three
//! consumers drive against identical bytes:
//!
//! * the offline eviction harness in `mec-baselines` (LRU / LFU / GDSF
//!   vs the game placement);
//! * `sweepbench scenarios` (the `BENCH_scenarios.json` comparison);
//! * `marketload --scenario` (the same trace replayed against the live
//!   `mec-serve` daemon's demand-observation layer).
//!
//! Determinism is a hard contract: the crate is std-only, all
//! randomness flows from one splitmix64 stream, and the same
//! [`TraceConfig`] yields a byte-identical [`Trace::schedule_text`]
//! forever. See `crates/scenario/tests/determinism.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod popularity;
pub mod trace;

pub use popularity::{Mix, PopularityModel, Sampler};
pub use trace::{standard_traces, validate_trace, Diurnal, Drift, FlashCrowd, Trace, TraceConfig};
